//! Error diagnostics: type errors carry usable spans and render with
//! carets pointing at the offending source.

use nml_syntax::{parse_program, SourceMap};
use nml_types::{infer_program, TypeErrorKind};

fn error_render(src: &str) -> (TypeErrorKind, String) {
    let map = SourceMap::new(src);
    let p = parse_program(src).expect("parse");
    let err = infer_program(&p).expect_err("ill-typed");
    let rendered = err.render(&map);
    (err.kind, rendered)
}

#[test]
fn mismatch_points_at_the_bad_branch() {
    let (kind, rendered) = error_render("if true then 1 else false");
    assert!(matches!(kind, TypeErrorKind::Mismatch { .. }));
    assert!(
        rendered.contains("expected `int`, found `bool`"),
        "{rendered}"
    );
    assert!(rendered.contains("^"), "{rendered}");
    assert!(rendered.contains("-->"), "{rendered}");
}

#[test]
fn unbound_identifier_names_it() {
    let (kind, rendered) = error_render("missing 1");
    assert!(matches!(kind, TypeErrorKind::Unbound { .. }));
    assert!(
        rendered.contains("unbound identifier `missing`"),
        "{rendered}"
    );
}

#[test]
fn occurs_check_renders_infinite_type() {
    let (kind, rendered) = error_render("lambda(x). x x");
    assert!(matches!(kind, TypeErrorKind::Occurs { .. }));
    assert!(rendered.contains("infinite type"), "{rendered}");
}

#[test]
fn condition_type_error_points_at_condition() {
    let src = "letrec f l = if l then 1 else 2 in f [1]";
    let map = SourceMap::new(src);
    let p = parse_program(src).expect("parse");
    let err = infer_program(&p).expect_err("ill-typed");
    let lc = map.line_col(err.span.start);
    // The condition `l` is in the first (only) line, after `if `.
    assert_eq!(lc.line, 1);
    assert!(lc.col >= 17, "span points into the condition: {lc}");
}

#[test]
fn error_spans_work_across_lines() {
    let src = "letrec f x =\n  x + true\nin f 1";
    let map = SourceMap::new(src);
    let p = parse_program(src).expect("parse");
    let err = infer_program(&p).expect_err("ill-typed");
    let lc = map.line_col(err.span.start);
    assert_eq!(lc.line, 2, "error on the second line");
    let rendered = err.render(&map);
    assert!(
        rendered.contains("x + true"),
        "snippet shows the line: {rendered}"
    );
}

#[test]
fn ascription_conflicts_render() {
    let (kind, rendered) = error_render("([1] : bool list)");
    assert!(matches!(kind, TypeErrorKind::Mismatch { .. }));
    assert!(
        rendered.contains("int") && rendered.contains("bool"),
        "{rendered}"
    );
}

#[test]
fn product_mismatch_mentions_product_type() {
    let (_, rendered) = error_render("fst [1]");
    assert!(
        rendered.contains("*"),
        "product type in message: {rendered}"
    );
}
