//! Property tests over the type algebra.

use nml_types::{Ty, TyVar};
use proptest::prelude::*;
use std::collections::HashMap;

fn ty_strategy() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(Ty::Int),
        Just(Ty::Bool),
        (0u32..6).prop_map(|v| Ty::Var(TyVar(v))),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Ty::list),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::prod(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Ty::fun(a, b)),
        ]
    })
}

proptest! {
    /// Defaulting removes every variable and is idempotent.
    #[test]
    fn defaulting_grounds_and_is_idempotent(t in ty_strategy()) {
        let d = t.default_vars();
        prop_assert!(!d.has_vars());
        prop_assert_eq!(d.default_vars(), d);
    }

    /// Applying the empty substitution is the identity.
    #[test]
    fn empty_substitution_is_identity(t in ty_strategy()) {
        let empty: HashMap<TyVar, Ty> = HashMap::new();
        prop_assert_eq!(t.apply(&empty), t);
    }

    /// `fun_n` and `uncurry` are inverse on ground return types.
    #[test]
    fn fun_n_uncurry_roundtrip(
        params in proptest::collection::vec(ty_strategy(), 0..4),
        ret in prop_oneof![Just(Ty::Int), Just(Ty::Bool), ty_strategy().prop_map(Ty::list)],
    ) {
        // `uncurry` splits at every arrow, so the return type must not
        // itself be a function for the roundtrip to hold exactly.
        prop_assume!(!matches!(ret, Ty::Fun(..)));
        let mut all_params = params.clone();
        // Parameters that are functions are fine; a *return* that is a
        // list of functions is also fine (uncurry stops at non-arrows).
        let t = Ty::fun_n(params, ret.clone());
        let (got_params, got_ret) = t.uncurry();
        // Drop trailing arrows hidden in ret (excluded by prop_assume).
        prop_assert_eq!(&got_ret, &ret);
        prop_assert_eq!(got_params.len(), all_params.len());
        all_params.reverse();
        for (a, b) in got_params.iter().zip(all_params.iter().rev()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Spine counts: lists add one; functions and products contribute 0.
    #[test]
    fn spines_only_count_list_layers(t in ty_strategy()) {
        let mut expected = 0;
        let mut cur = t.clone();
        while let Ty::List(inner) = cur {
            expected += 1;
            cur = (*inner).clone();
        }
        prop_assert_eq!(t.spines(), expected);
    }

    /// Substitution commutes with the `vars` listing: after substituting
    /// every free variable with a ground type, nothing is free.
    #[test]
    fn substituting_all_vars_grounds(t in ty_strategy()) {
        let map: HashMap<TyVar, Ty> =
            t.vars().into_iter().map(|v| (v, Ty::Int)).collect();
        prop_assert!(!t.apply(&map).has_vars());
    }

    /// Display output re-parses as the same surface type for ground types.
    #[test]
    fn ground_display_roundtrips_through_surface_syntax(t in ty_strategy()) {
        let g = t.default_vars();
        let surface = g.to_ty_expr();
        prop_assert_eq!(surface.to_string(), g.to_string());
    }
}
