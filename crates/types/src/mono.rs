//! Monomorphization by specialization.
//!
//! The escape analysis operates on monomorphically typed programs (paper
//! §3.1). For polymorphic programs the paper offers two routes:
//!
//! 1. analyze only the **simplest monotype instance** of each polymorphic
//!    function and transfer results by polymorphic invariance (§5), or
//! 2. analyze each monotype instance separately.
//!
//! This module implements route 2 as a program transformation: each
//! polymorphic top-level binding is cloned once per distinct ground
//! instantiation demanded by the program, the clone's body is pinned to its
//! instance with a type ascription, and use sites are rewritten to refer to
//! the matching clone. The result re-infers with no defaulting in reachable
//! code, so every `car^s` annotation is exact for its instance. Route 1 is
//! what you get by *not* monomorphizing (the inferencer defaults residual
//! variables to `int`), and the two routes are compared in the test suite —
//! they must agree modulo the spine offset of Theorem 1.
//!
//! Scope: only *singleton* (non-mutually-recursive) polymorphic top-level
//! bindings are specialized. Mutually recursive polymorphic groups and
//! polymorphic bindings of nested `letrec`s are left to route 1; this
//! covers every program in the paper and the benchmark corpus.

use crate::infer::{infer_program, scc_order, TypeInfo};
use crate::ty::{Ty, TyVar};
use nml_syntax::ast::{Binding, Expr, ExprKind, NodeId, Program};
use nml_syntax::Symbol;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// The output of monomorphization.
#[derive(Debug, Clone)]
pub struct MonoProgram {
    /// The specialized program.
    pub program: Program,
    /// Fresh type information for the specialized program.
    pub info: TypeInfo,
    /// Map from (original name, instance tuple) to the specialized name.
    /// Singleton-tuple of the original name means it was kept as-is.
    pub copies: BTreeMap<(Symbol, Vec<Ty>), Symbol>,
}

/// Monomorphizes `program`, given the `info` from a prior inference run.
///
/// # Errors
///
/// Returns a [`crate::error::TypeError`] if the specialized program fails
/// to re-infer. This indicates a bug in the specializer rather than in the
/// input (the input already type-checked), so it is surfaced rather than
/// panicked to keep the driver robust.
pub fn monomorphize(
    program: &Program,
    info: &TypeInfo,
) -> Result<MonoProgram, crate::error::TypeError> {
    let mut m = Mono::new(program, info);
    let new_program = m.run();
    let new_info = infer_program(&new_program)?;
    Ok(MonoProgram {
        program: new_program,
        info: new_info,
        copies: m.copies,
    })
}

/// Encodes a ground type as an identifier-safe string: `int` ↦ `i`,
/// `bool` ↦ `b`, `τ list` ↦ `enc(τ) + "L"`, `τ1 -> τ2` ↦
/// `"F" + enc(τ1) + enc(τ2) + "E"`. The encoding is injective.
pub fn encode_ty(t: &Ty) -> String {
    match t {
        Ty::Int => "i".to_owned(),
        Ty::Bool => "b".to_owned(),
        Ty::Var(_) => "i".to_owned(), // defaulted simplest instance
        Ty::List(e) => format!("{}L", encode_ty(e)),
        Ty::Prod(a, b) => format!("P{}{}E", encode_ty(a), encode_ty(b)),
        Ty::Fun(a, b) => format!("F{}{}E", encode_ty(a), encode_ty(b)),
    }
}

fn mangle(name: Symbol, tuple: &[Ty]) -> Symbol {
    let mut s = format!("{name}_");
    for t in tuple {
        s.push('_');
        s.push_str(&encode_ty(t));
    }
    Symbol::intern(&s)
}

struct Mono<'a> {
    program: &'a Program,
    info: &'a TypeInfo,
    /// Top-level poly bindings eligible for specialization.
    specializable: HashSet<Symbol>,
    /// (name, ground tuple) -> specialized name.
    copies: BTreeMap<(Symbol, Vec<Ty>), Symbol>,
    /// Instances not yet cloned.
    queue: VecDeque<(Symbol, Vec<Ty>)>,
    next_id: u32,
}

impl<'a> Mono<'a> {
    fn new(program: &'a Program, info: &'a TypeInfo) -> Self {
        let mut specializable = HashSet::new();
        for comp in scc_order(&program.bindings) {
            if comp.len() == 1 {
                let b = &program.bindings[comp[0]];
                if info.top_schemes.get(&b.name).is_some_and(|s| s.is_poly()) {
                    specializable.insert(b.name);
                }
            }
        }
        Mono {
            program,
            info,
            specializable,
            copies: BTreeMap::new(),
            queue: VecDeque::new(),
            next_id: program.next_node_id,
        }
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Demands the instance `(name, tuple)`; returns the specialized name.
    fn demand(&mut self, name: Symbol, tuple: Vec<Ty>) -> Symbol {
        if let Some(&n) = self.copies.get(&(name, tuple.clone())) {
            return n;
        }
        let mangled = mangle(name, &tuple);
        self.copies.insert((name, tuple.clone()), mangled);
        self.queue.push_back((name, tuple));
        mangled
    }

    fn run(&mut self) -> Program {
        // Rewrite the body and every non-specializable binding first; their
        // instantiation sites seed the demand queue. Instantiation vectors
        // at these sites may still contain variables (dead or
        // underdetermined code); they default to int.
        let empty: HashMap<TyVar, Ty> = HashMap::new();
        let body = self.clone_expr(&self.program.body, &empty, None, &mut Vec::new());

        let mut kept: Vec<Binding> = Vec::new();
        for b in &self.program.bindings {
            if !self.specializable.contains(&b.name) {
                let expr = self.clone_expr(&b.expr, &empty, None, &mut Vec::new());
                kept.push(Binding {
                    name: b.name,
                    span: b.span,
                    expr,
                });
            }
        }

        // Process demanded instances to a fixpoint.
        let mut specialized: Vec<Binding> = Vec::new();
        while let Some((name, tuple)) = self.queue.pop_front() {
            let new_name = self.copies[&(name, tuple.clone())];
            let orig = self
                .program
                .binding(name)
                .expect("demanded instance of unknown binding");
            let orig_vars = &self.info.top_scheme_orig_vars[&name];
            let subst: HashMap<TyVar, Ty> = orig_vars
                .iter()
                .copied()
                .zip(tuple.iter().cloned())
                .collect();
            let mut bound = Vec::new();
            let expr = self.clone_expr(&orig.expr, &subst, Some((name, new_name)), &mut bound);
            // Pin the clone to its instance so re-inference cannot
            // re-generalize it.
            let scheme = &self.info.top_schemes[&name];
            let instance_ty = scheme.instantiate_with(&tuple).default_vars();
            let id = self.fresh_id();
            let expr = Expr {
                id,
                span: orig.expr.span,
                kind: ExprKind::Annot(Box::new(expr), instance_ty.to_ty_expr()),
            };
            specialized.push(Binding {
                name: new_name,
                span: orig.span,
                expr,
            });
        }

        kept.extend(specialized);
        Program {
            bindings: kept,
            body,
            span: self.program.span,
            next_node_id: self.next_id,
        }
    }

    /// Clones `e` with fresh node ids, applying `subst` to recorded
    /// instantiation vectors, redirecting instantiated uses of
    /// specializable bindings to their demanded copies, and renaming free
    /// recursive occurrences per `self_rename`.
    fn clone_expr(
        &mut self,
        e: &Expr,
        subst: &HashMap<TyVar, Ty>,
        self_rename: Option<(Symbol, Symbol)>,
        bound: &mut Vec<Symbol>,
    ) -> Expr {
        let id = self.fresh_id();
        let kind = match &e.kind {
            ExprKind::Const(c) => ExprKind::Const(*c),
            ExprKind::Var(x) => {
                let shadowed = bound.contains(x);
                if !shadowed {
                    if let Some((name, args)) = self.info.instantiations.get(&e.id) {
                        if self.specializable.contains(name) {
                            let tuple: Vec<Ty> =
                                args.iter().map(|t| t.apply(subst).default_vars()).collect();
                            let new = self.demand(*name, tuple);
                            return Expr {
                                id,
                                span: e.span,
                                kind: ExprKind::Var(new),
                            };
                        }
                    }
                    if let Some((from, to)) = self_rename {
                        if *x == from {
                            return Expr {
                                id,
                                span: e.span,
                                kind: ExprKind::Var(to),
                            };
                        }
                    }
                }
                ExprKind::Var(*x)
            }
            ExprKind::App(f, a) => ExprKind::App(
                Box::new(self.clone_expr(f, subst, self_rename, bound)),
                Box::new(self.clone_expr(a, subst, self_rename, bound)),
            ),
            ExprKind::Lambda(x, body) => {
                bound.push(*x);
                let b = self.clone_expr(body, subst, self_rename, bound);
                bound.pop();
                ExprKind::Lambda(*x, Box::new(b))
            }
            ExprKind::If(c, t, f) => ExprKind::If(
                Box::new(self.clone_expr(c, subst, self_rename, bound)),
                Box::new(self.clone_expr(t, subst, self_rename, bound)),
                Box::new(self.clone_expr(f, subst, self_rename, bound)),
            ),
            ExprKind::Letrec(bs, body) => {
                let names: Vec<Symbol> = bs.iter().map(|b| b.name).collect();
                bound.extend(names.iter().copied());
                let new_bs: Vec<Binding> = bs
                    .iter()
                    .map(|b| Binding {
                        name: b.name,
                        span: b.span,
                        expr: self.clone_expr(&b.expr, subst, self_rename, bound),
                    })
                    .collect();
                let new_body = self.clone_expr(body, subst, self_rename, bound);
                bound.truncate(bound.len() - names.len());
                ExprKind::Letrec(new_bs, Box::new(new_body))
            }
            ExprKind::Annot(inner, ty) => ExprKind::Annot(
                Box::new(self.clone_expr(inner, subst, self_rename, bound)),
                ty.clone(),
            ),
        };
        Expr {
            id,
            span: e.span,
            kind,
        }
    }
}

/// Convenience: infer + monomorphize in one step.
///
/// # Errors
///
/// Propagates inference errors from either pass.
pub fn infer_and_monomorphize(program: &Program) -> Result<MonoProgram, crate::error::TypeError> {
    let info = infer_program(program)?;
    monomorphize(program, &info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::{parse_program, pretty_program};

    fn mono(src: &str) -> MonoProgram {
        let p = parse_program(src).expect("parse");
        infer_and_monomorphize(&p).expect("mono")
    }

    #[test]
    fn encode_ty_injective_examples() {
        assert_eq!(encode_ty(&Ty::list(Ty::list(Ty::Int))), "iLL");
        assert_eq!(encode_ty(&Ty::fun(Ty::Int, Ty::list(Ty::Bool))), "FibLE");
        assert_ne!(
            encode_ty(&Ty::fun(Ty::list(Ty::Int), Ty::Int)),
            encode_ty(&Ty::fun(Ty::Int, Ty::list(Ty::Int)))
        );
    }

    #[test]
    fn monomorphic_program_is_unchanged_in_shape() {
        let m = mono("letrec inc x = x + 1 in inc 2");
        assert_eq!(m.program.bindings.len(), 1);
        assert_eq!(m.program.bindings[0].name.as_str(), "inc");
        assert!(m.copies.is_empty());
    }

    #[test]
    fn two_instances_two_copies() {
        let m = mono(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l)
             in len [1] + len [[2]]",
        );
        assert_eq!(
            m.program.bindings.len(),
            2,
            "{}",
            pretty_program(&m.program)
        );
        let names: Vec<&str> = m.program.bindings.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"len__i"), "names: {names:?}");
        assert!(names.contains(&"len__iL"), "names: {names:?}");
        // Signatures are the two instances.
        let s1 = m.info.top_sigs[&Symbol::intern("len__i")].to_string();
        let s2 = m.info.top_sigs[&Symbol::intern("len__iL")].to_string();
        assert_eq!(s1, "int list -> int");
        assert_eq!(s2, "int list list -> int");
    }

    #[test]
    fn recursive_use_points_at_copy() {
        let m = mono(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l)
             in len [[1]]",
        );
        let printed = pretty_program(&m.program);
        // The clone's recursion must call the clone, not the dead original.
        assert!(printed.contains("len__iL (cdr l)"), "{printed}");
    }

    #[test]
    fn chained_demand_through_poly_callers() {
        // concat uses append at the element type of its own instance; a
        // bool-list use of concat must demand a bool-instance append.
        let m = mono(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y);
                    concat ll = if (null ll) then nil
                                else append (car ll) (concat (cdr ll))
             in concat [[true]]",
        );
        let names: Vec<&str> = m.program.bindings.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"append__b"), "names: {names:?}");
        assert!(names.contains(&"concat__b"), "names: {names:?}");
        // append's car inside the bool instance is still car^1.
        let info = &m.info;
        assert!(info.car_spines.values().all(|&s| s >= 1));
    }

    #[test]
    fn specialized_program_has_no_reachable_defaulting() {
        let m = mono("letrec id x = x in cons (id 1) (id [2])");
        // Two copies of id at int and int list.
        assert_eq!(m.program.bindings.len(), 2);
        for b in &m.program.bindings {
            let sig = &m.info.top_sigs[&b.name];
            assert!(!sig.has_vars());
        }
    }

    #[test]
    fn car_spines_differ_across_instances() {
        let m = mono(
            "letrec first l = car l
             in cons (first [[1]]) (cons (car (first [[[2]]])) nil)",
        );
        // first at int list list (car^2) and at int list list list (car^3).
        let mut spines: Vec<u32> = m.info.car_spines.values().copied().collect();
        spines.sort_unstable();
        assert!(
            spines.contains(&2) && spines.contains(&3),
            "spines: {spines:?}"
        );
    }

    #[test]
    fn mutually_recursive_poly_group_left_alone() {
        let m = mono(
            "letrec pingpong l n = if n = 0 then l else pong l (n - 1);
                    pong l n = if n = 0 then l else pingpong l (n - 1)
             in pingpong [1] 3",
        );
        let names: Vec<&str> = m.program.bindings.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"pingpong"));
        assert!(names.contains(&"pong"));
    }

    #[test]
    fn shadowing_not_rewritten() {
        let m = mono("letrec id x = x in (lambda(id). id) 5 + id 1");
        let printed = pretty_program(&m.program);
        assert!(printed.contains("lambda(id). id"), "{printed}");
    }

    #[test]
    fn map_specializes_with_function_argument() {
        let m = mono(
            "letrec map f l = if (null l) then nil
                              else cons (f (car l)) (map f (cdr l))
             in map (lambda(x). cons x nil) [1, 2]",
        );
        let names: Vec<&str> = m.program.bindings.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["map__i_iL"]);
        let sig = m.info.top_sigs[&Symbol::intern("map__i_iL")].to_string();
        assert_eq!(sig, "(int -> int list) -> int list -> int list list");
    }
}
