//! Type errors.

use crate::ty::{Ty, TyVar};
use nml_syntax::{SourceMap, Span};
use std::fmt;

/// A type-inference failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeErrorKind {
    /// Two types failed to unify.
    Mismatch {
        /// The type required by context.
        expected: Ty,
        /// The type found.
        found: Ty,
    },
    /// The occurs check failed (infinite type).
    Occurs {
        /// The variable being solved.
        var: TyVar,
        /// The type it would have to contain itself in.
        ty: Ty,
    },
    /// An unbound identifier.
    Unbound {
        /// The identifier.
        name: String,
    },
}

impl fmt::Display for TypeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeErrorKind::Mismatch { expected, found } => {
                write!(f, "type mismatch: expected `{expected}`, found `{found}`")
            }
            TypeErrorKind::Occurs { var, ty } => {
                write!(f, "cannot construct the infinite type `{var} = {ty}`")
            }
            TypeErrorKind::Unbound { name } => write!(f, "unbound identifier `{name}`"),
        }
    }
}

/// A type error with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// What went wrong.
    pub kind: TypeErrorKind,
    /// Where.
    pub span: Span,
}

impl TypeError {
    /// Creates an error.
    pub fn new(kind: TypeErrorKind, span: Span) -> Self {
        TypeError { kind, span }
    }

    /// Renders the error with a caret snippet.
    pub fn render(&self, map: &SourceMap) -> String {
        map.render(self.span, &self.kind.to_string())
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl std::error::Error for TypeError {}
