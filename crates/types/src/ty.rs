//! Monotypes, type schemes, and spine counting.
//!
//! The number of *spines* of a type (paper, Definition 1) drives the whole
//! escape analysis: a value of type `int list list` has 2 spines, `int` has
//! 0, and a function type has 0 (a closure is an indivisible object for the
//! purposes of the basic escape domain).

use nml_syntax::TyExpr;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An inference type variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as 'a, 'b, ..., 'z, 't26, 't27, ...
        let n = self.0;
        if n < 26 {
            write!(f, "'{}", (b'a' + n as u8) as char)
        } else {
            write!(f, "'t{n}")
        }
    }
}

/// A monotype (possibly containing inference variables).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// An inference or scheme-bound type variable.
    Var(TyVar),
    /// `τ list`
    List(Arc<Ty>),
    /// `τ1 * τ2` — the paper's suggested tuple extension (§1).
    Prod(Arc<Ty>, Arc<Ty>),
    /// `τ1 -> τ2`
    Fun(Arc<Ty>, Arc<Ty>),
}

impl Ty {
    /// Builds `τ list`.
    pub fn list(elem: Ty) -> Ty {
        Ty::List(Arc::new(elem))
    }

    /// Builds `τ1 -> τ2`.
    pub fn fun(dom: Ty, cod: Ty) -> Ty {
        Ty::Fun(Arc::new(dom), Arc::new(cod))
    }

    /// Builds `τ1 * τ2`.
    pub fn prod(a: Ty, b: Ty) -> Ty {
        Ty::Prod(Arc::new(a), Arc::new(b))
    }

    /// Builds the curried function type `t1 -> t2 -> ... -> ret`.
    pub fn fun_n(params: impl IntoIterator<Item = Ty>, ret: Ty) -> Ty {
        let params: Vec<Ty> = params.into_iter().collect();
        params.into_iter().rev().fold(ret, |acc, p| Ty::fun(p, acc))
    }

    /// The number of spines of this type (Definition 1): `0` for non-list
    /// types, `1 + spines(τ)` for `τ list`.
    pub fn spines(&self) -> u32 {
        match self {
            Ty::List(elem) => 1 + elem.spines(),
            _ => 0,
        }
    }

    /// Whether the type is a list type.
    pub fn is_list(&self) -> bool {
        matches!(self, Ty::List(_))
    }

    /// Whether the type contains any type variable.
    pub fn has_vars(&self) -> bool {
        match self {
            Ty::Int | Ty::Bool => false,
            Ty::Var(_) => true,
            Ty::List(t) => t.has_vars(),
            Ty::Prod(a, b) | Ty::Fun(a, b) => a.has_vars() || b.has_vars(),
        }
    }

    /// Collects the free type variables in order of first occurrence.
    pub fn vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<TyVar>) {
        match self {
            Ty::Int | Ty::Bool => {}
            Ty::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Ty::List(t) => t.collect_vars(out),
            Ty::Prod(a, b) | Ty::Fun(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Replaces every type variable according to `map`; variables absent
    /// from `map` are left in place.
    #[must_use]
    pub fn apply(&self, map: &HashMap<TyVar, Ty>) -> Ty {
        match self {
            Ty::Int => Ty::Int,
            Ty::Bool => Ty::Bool,
            Ty::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Ty::List(t) => Ty::list(t.apply(map)),
            Ty::Prod(a, b) => Ty::prod(a.apply(map), b.apply(map)),
            Ty::Fun(a, b) => Ty::fun(a.apply(map), b.apply(map)),
        }
    }

    /// Replaces every remaining type variable by `int` — the *simplest
    /// monotype instance* used by the polymorphic-invariance argument
    /// (paper §5).
    #[must_use]
    pub fn default_vars(&self) -> Ty {
        match self {
            Ty::Int | Ty::Bool => self.clone(),
            Ty::Var(_) => Ty::Int,
            Ty::List(t) => Ty::list(t.default_vars()),
            Ty::Prod(a, b) => Ty::prod(a.default_vars(), b.default_vars()),
            Ty::Fun(a, b) => Ty::fun(a.default_vars(), b.default_vars()),
        }
    }

    /// Splits a curried function type into parameter types and the final
    /// non-function result: `a -> b -> c` gives `([a, b], c)`.
    pub fn uncurry(&self) -> (Vec<Ty>, Ty) {
        let mut params = Vec::new();
        let mut cur = self.clone();
        while let Ty::Fun(a, b) = cur {
            params.push((*a).clone());
            cur = (*b).clone();
        }
        (params, cur)
    }

    /// The number of arguments a value of this type can take before
    /// returning a primitive (non-function) value, looking *through* list
    /// constructors as the worst-case function `W^τ` does (paper Def. 2:
    /// `W^{τ list} = W^τ`).
    pub fn worst_case_arity(&self) -> usize {
        match self {
            Ty::Fun(_, cod) => 1 + cod.worst_case_arity(),
            Ty::List(elem) => elem.worst_case_arity(),
            // A pair may hold functions in either slot; the worst case
            // must be applicable as the longer of the two.
            Ty::Prod(a, b) => a.worst_case_arity().max(b.worst_case_arity()),
            Ty::Int | Ty::Bool | Ty::Var(_) => 0,
        }
    }

    /// Converts a ground type into surface syntax.
    ///
    /// # Panics
    ///
    /// Panics if the type contains variables (they have no stable surface
    /// spelling after inference).
    pub fn to_ty_expr(&self) -> TyExpr {
        match self {
            Ty::Int => TyExpr::Int,
            Ty::Bool => TyExpr::Bool,
            Ty::Var(v) => panic!("cannot convert open type (contains {v}) to surface syntax"),
            Ty::List(t) => TyExpr::List(Box::new(t.to_ty_expr())),
            Ty::Prod(a, b) => TyExpr::Prod(Box::new(a.to_ty_expr()), Box::new(b.to_ty_expr())),
            Ty::Fun(a, b) => TyExpr::Fun(Box::new(a.to_ty_expr()), Box::new(b.to_ty_expr())),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => f.write_str("int"),
            Ty::Bool => f.write_str("bool"),
            Ty::Var(v) => write!(f, "{v}"),
            Ty::List(t) => match **t {
                Ty::Fun(..) | Ty::Prod(..) => write!(f, "({t}) list"),
                _ => write!(f, "{t} list"),
            },
            Ty::Prod(a, b) => {
                match **a {
                    Ty::Fun(..) | Ty::Prod(..) => write!(f, "({a})")?,
                    _ => write!(f, "{a}")?,
                }
                f.write_str(" * ")?;
                match **b {
                    Ty::Fun(..) => write!(f, "({b})"),
                    _ => write!(f, "{b}"),
                }
            }
            Ty::Fun(a, b) => match **a {
                Ty::Fun(..) => write!(f, "({a}) -> {b}"),
                _ => write!(f, "{a} -> {b}"),
            },
        }
    }
}

/// A type scheme `∀ vars. ty`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// Universally quantified variables.
    pub vars: Vec<TyVar>,
    /// The scheme body.
    pub ty: Ty,
}

impl Scheme {
    /// A scheme with no quantified variables.
    pub fn mono(ty: Ty) -> Scheme {
        Scheme {
            vars: Vec::new(),
            ty,
        }
    }

    /// Whether the scheme quantifies at least one variable.
    pub fn is_poly(&self) -> bool {
        !self.vars.is_empty()
    }

    /// Instantiates the scheme with the given argument types.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.vars.len()`.
    pub fn instantiate_with(&self, args: &[Ty]) -> Ty {
        assert_eq!(
            args.len(),
            self.vars.len(),
            "scheme arity mismatch: {} vars, {} args",
            self.vars.len(),
            args.len()
        );
        let map: HashMap<TyVar, Ty> = self
            .vars
            .iter()
            .copied()
            .zip(args.iter().cloned())
            .collect();
        self.ty.apply(&map)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vars.is_empty() {
            write!(f, "{}", self.ty)
        } else {
            f.write_str("forall")?;
            for v in &self.vars {
                write!(f, " {v}")?;
            }
            write!(f, ". {}", self.ty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_counts() {
        assert_eq!(Ty::Int.spines(), 0);
        assert_eq!(Ty::Bool.spines(), 0);
        assert_eq!(Ty::list(Ty::Int).spines(), 1);
        assert_eq!(Ty::list(Ty::list(Ty::Int)).spines(), 2);
        assert_eq!(Ty::fun(Ty::Int, Ty::list(Ty::Int)).spines(), 0);
        assert_eq!(Ty::list(Ty::fun(Ty::Int, Ty::Int)).spines(), 1);
    }

    #[test]
    fn worst_case_arity_looks_through_lists() {
        // int -> int -> int: 2 args
        assert_eq!(Ty::fun_n([Ty::Int, Ty::Int], Ty::Int).worst_case_arity(), 2);
        // (int -> int) list: W^{τ list} = W^τ, so arity 1
        assert_eq!(Ty::list(Ty::fun(Ty::Int, Ty::Int)).worst_case_arity(), 1);
        // int list: 0
        assert_eq!(Ty::list(Ty::Int).worst_case_arity(), 0);
        // int -> (int -> int): 2
        assert_eq!(
            Ty::fun(Ty::Int, Ty::fun(Ty::Int, Ty::Int)).worst_case_arity(),
            2
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ty::list(Ty::list(Ty::Int)).to_string(), "int list list");
        assert_eq!(
            Ty::fun(Ty::fun(Ty::Int, Ty::Bool), Ty::Int).to_string(),
            "(int -> bool) -> int"
        );
        assert_eq!(
            Ty::list(Ty::fun(Ty::Int, Ty::Int)).to_string(),
            "(int -> int) list"
        );
        assert_eq!(TyVar(0).to_string(), "'a");
        assert_eq!(TyVar(30).to_string(), "'t30");
    }

    #[test]
    fn defaulting_replaces_vars_with_int() {
        let t = Ty::fun(Ty::Var(TyVar(0)), Ty::list(Ty::Var(TyVar(1))));
        assert_eq!(t.default_vars(), Ty::fun(Ty::Int, Ty::list(Ty::Int)));
        assert!(!t.default_vars().has_vars());
    }

    #[test]
    fn uncurry_splits_params() {
        let t = Ty::fun_n([Ty::Int, Ty::Bool], Ty::list(Ty::Int));
        let (params, ret) = t.uncurry();
        assert_eq!(params, vec![Ty::Int, Ty::Bool]);
        assert_eq!(ret, Ty::list(Ty::Int));
    }

    #[test]
    fn scheme_instantiation() {
        // forall 'a. 'a list -> 'a
        let s = Scheme {
            vars: vec![TyVar(0)],
            ty: Ty::fun(Ty::list(Ty::Var(TyVar(0))), Ty::Var(TyVar(0))),
        };
        let t = s.instantiate_with(&[Ty::list(Ty::Int)]);
        assert_eq!(t, Ty::fun(Ty::list(Ty::list(Ty::Int)), Ty::list(Ty::Int)));
        assert_eq!(s.to_string(), "forall 'a. 'a list -> 'a");
    }

    #[test]
    fn vars_in_order_of_occurrence() {
        let t = Ty::fun(
            Ty::Var(TyVar(3)),
            Ty::fun(Ty::Var(TyVar(1)), Ty::Var(TyVar(3))),
        );
        assert_eq!(t.vars(), vec![TyVar(3), TyVar(1)]);
    }

    #[test]
    fn to_ty_expr_ground() {
        let t = Ty::fun(Ty::list(Ty::Int), Ty::Bool);
        assert_eq!(t.to_ty_expr().to_string(), "int list -> bool");
    }

    #[test]
    #[should_panic(expected = "open type")]
    fn to_ty_expr_rejects_vars() {
        let _ = Ty::Var(TyVar(0)).to_ty_expr();
    }
}
