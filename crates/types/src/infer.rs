//! Hindley–Milner type inference for nml, with `letrec` SCC decomposition
//! and `car^s` spine annotation.
//!
//! The paper assumes type inference "has already been performed" (§3.1) and
//! that each `car` is annotated as `car^s`, where `s` is the number of
//! spines of its list argument — statically determined by the types. This
//! module performs exactly that: Algorithm W with let-polymorphism, where a
//! `letrec` group is split into strongly connected components so that
//! non-mutually-recursive bindings generalize before their users (the
//! standard ML treatment; without it, a single top-level `letrec` would
//! force every function to be monomorphic).
//!
//! After constraint solving, every node type is *defaulted*: residual type
//! variables are replaced by `int`, producing the **simplest monotype
//! instance** of each polymorphic function. By the paper's polymorphic
//! invariance theorem (§5, Theorem 1) analyzing that instance suffices.

use crate::error::{TypeError, TypeErrorKind};
use crate::ty::{Scheme, Ty, TyVar};
use crate::unify::InferCtx;
use nml_syntax::ast::{Binding, Const, Expr, ExprKind, NodeId, Prim, Program, TyExpr};
use nml_syntax::visit::free_vars;
use nml_syntax::{Span, Symbol};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The result of type inference over a program.
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// Ground (defaulted) type of every expression node.
    pub node_ty: HashMap<NodeId, Ty>,
    /// For every `car` constant node, the spine count `s` of its list
    /// argument type: the node is `car^s`.
    pub car_spines: HashMap<NodeId, u32>,
    /// Schemes of top-level bindings, before defaulting.
    pub top_schemes: BTreeMap<Symbol, Scheme>,
    /// Ground simplest-instance signatures of top-level bindings.
    pub top_sigs: BTreeMap<Symbol, Ty>,
    /// `d`: the maximum spine count of any type in the program (the bound
    /// of the basic escape domain `B_e`).
    pub max_spines: u32,
    /// Nodes whose type contained residual variables and was defaulted.
    pub defaulted_nodes: Vec<NodeId>,
    /// For each variable node that instantiated a polymorphic binding, the
    /// binding's name and the types chosen for its scheme variables, in
    /// scheme-variable order. The types are resolved but **not** defaulted:
    /// when the use site sits inside another polymorphic binding `g`, they
    /// may mention `g`'s scheme variables (see
    /// [`top_scheme_orig_vars`](Self::top_scheme_orig_vars)), which is what
    /// lets the monomorphizer chain instantiations. Drives the
    /// monomorphizer.
    pub instantiations: HashMap<NodeId, (Symbol, Vec<Ty>)>,
    /// For each top-level binding, the *original* inference variable ids of
    /// its scheme, positionally matching `top_schemes[name].vars` (which
    /// are normalized to `'a, 'b, ...`). Instantiation argument vectors are
    /// expressed over these original ids.
    pub top_scheme_orig_vars: BTreeMap<Symbol, Vec<TyVar>>,
}

impl TypeInfo {
    /// The ground type of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was not part of the inferred program.
    pub fn ty(&self, id: NodeId) -> &Ty {
        self.node_ty
            .get(&id)
            .unwrap_or_else(|| panic!("no type recorded for node {id}"))
    }

    /// The `s` annotation of a `car` node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a `car` constant node.
    pub fn car_spine(&self, id: NodeId) -> u32 {
        *self
            .car_spines
            .get(&id)
            .unwrap_or_else(|| panic!("node {id} is not an annotated car"))
    }

    /// Ground signature of a top-level binding.
    pub fn sig(&self, name: Symbol) -> Option<&Ty> {
        self.top_sigs.get(&name)
    }
}

/// Infers types for a whole program.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered (unbound identifier,
/// unification failure, or occurs-check violation).
pub fn infer_program(program: &Program) -> Result<TypeInfo, TypeError> {
    let mut inf = Inferencer::new();
    let mut env = Env::new();
    let top = inf.letrec_group(&program.bindings, &mut env, program.span)?;
    let body_ty = inf.infer(&program.body, &mut env)?;
    inf.finish(program, top, body_ty)
}

/// Re-infers only the `dirty` top-level bindings of `program`, updating
/// `info` in place. The schemes of every clean binding are *pinned*: they
/// are installed in the environment verbatim from the previous inference,
/// so the dirty subset is checked against exactly the types the rest of
/// the program was checked against. This is sound because top-level
/// schemes are closed (their bodies mention no type variables outside
/// `vars`), so pinning cannot leak inference state across runs.
///
/// The program body is re-inferred when `reinfer_body` is set (the caller
/// edited it) or when any dirty binding's scheme changed — either way its
/// node types are refreshed in place (body node ids are stable across
/// binding edits).
///
/// On success, `info` is updated for the dirty bindings and (possibly) the
/// body: `node_ty`, `car_spines`, `instantiations`, `defaulted_nodes`,
/// `top_schemes`, `top_sigs`, `top_scheme_orig_vars`, and `max_spines`.
/// The domain bound stays *exact* — it can decrease when an edit removes
/// the deepest list type — but only the re-inferred expressions are
/// re-walked: `spines` caches every other binding's deepest spine count,
/// so restoring the bound costs a scan of one `u32` per binding instead
/// of a whole-program walk. `spines` must be positionally in sync with
/// `program.bindings` (kept bindings keep their entries; entries of
/// re-inferred bindings are overwritten here). Entries for node ids that
/// no longer occur in the program are left behind as harmless garbage —
/// node ids are never reused by the grafting caller, so stale entries are
/// never looked up. Returns whether any dirty binding's scheme changed.
///
/// On error, `info` and `spines` are untouched: all inference happens
/// before any merge.
///
/// # Errors
///
/// Returns the first [`TypeError`] in the dirty subset or re-inferred body.
pub fn reinfer_program(
    program: &Program,
    info: &mut TypeInfo,
    dirty: &BTreeSet<Symbol>,
    reinfer_body: bool,
    spines: &mut SpineTable,
) -> Result<bool, TypeError> {
    debug_assert_eq!(spines.bindings.len(), program.bindings.len());
    let mut inf = Inferencer::new();
    let mut env = Env::new();
    // Clean schemes are closed, so they contribute no free type variables
    // to generalization — only the ones the re-inferred expressions
    // actually mention need to be in scope (keeping the environment
    // proportional to the edit, not the program).
    let mut needed: HashSet<Symbol> = HashSet::new();
    for b in &program.bindings {
        if dirty.contains(&b.name) {
            needed.extend(nml_syntax::visit::free_vars(&b.expr));
        }
    }
    let pinned = |name: Symbol| {
        info.top_schemes
            .get(&name)
            .cloned()
            .unwrap_or_else(|| panic!("reinfer: clean binding {name} has no pinned scheme"))
    };
    for b in &program.bindings {
        if !dirty.contains(&b.name) && needed.contains(&b.name) {
            env.push(b.name, pinned(b.name));
        }
    }
    let dirty_bindings: Vec<Binding> = program
        .bindings
        .iter()
        .filter(|b| dirty.contains(&b.name))
        .cloned()
        .collect();
    inf.letrec_group(&dirty_bindings, &mut env, program.span)?;

    // Normalize the fresh schemes exactly as `finish` does, so they are
    // comparable with (and can replace) the pinned ones.
    let mut fresh: Vec<(Symbol, Scheme, Ty, Vec<TyVar>)> = Vec::new();
    let mut schemes_changed = false;
    for b in &dirty_bindings {
        let body_ty = inf.cx.resolve(&inf.node_ty[&b.expr.id]);
        let vars = body_ty.vars();
        let renaming: HashMap<TyVar, Ty> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, Ty::Var(TyVar(i as u32))))
            .collect();
        let scheme = Scheme {
            vars: (0..vars.len() as u32).map(TyVar).collect(),
            ty: body_ty.apply(&renaming),
        };
        if info.top_schemes.get(&b.name) != Some(&scheme) {
            schemes_changed = true;
        }
        fresh.push((b.name, scheme, body_ty.default_vars(), vars));
    }

    let body_reinferred = reinfer_body || schemes_changed;
    if body_reinferred {
        let body_needs = nml_syntax::visit::free_vars(&program.body);
        for b in &program.bindings {
            if !dirty.contains(&b.name) && !needed.contains(&b.name) && body_needs.contains(&b.name)
            {
                env.push(b.name, pinned(b.name));
            }
        }
        inf.infer(&program.body, &mut env)?;
    }

    // All inference succeeded — merge into `info`.
    let cx = &inf.cx;
    let mut defaulted_any = false;
    for (&id, ty) in &inf.node_ty {
        let resolved = cx.resolve(ty);
        let ground = if resolved.has_vars() {
            info.defaulted_nodes.push(id);
            defaulted_any = true;
            resolved.default_vars()
        } else {
            resolved
        };
        info.node_ty.insert(id, ground);
    }
    if defaulted_any {
        info.defaulted_nodes.sort();
        info.defaulted_nodes.dedup();
    }
    for id in &inf.car_nodes {
        match &info.node_ty[id] {
            Ty::Fun(dom, _) => {
                info.car_spines.insert(*id, dom.spines());
            }
            other => unreachable!("car node {id} has non-function type {other}"),
        }
    }
    for (id, (name, args)) in inf.inst {
        let resolved: Vec<Ty> = args.iter().map(|a| cx.resolve(a)).collect();
        info.instantiations.insert(id, (name, resolved));
    }
    for (name, scheme, sig, orig_vars) in fresh {
        info.top_schemes.insert(name, scheme);
        info.top_sigs.insert(name, sig);
        info.top_scheme_orig_vars.insert(name, orig_vars);
    }
    for (i, b) in program.bindings.iter().enumerate() {
        if dirty.contains(&b.name) {
            spines.bindings[i] = expr_max_spines(info, &b.expr);
        }
    }
    if body_reinferred {
        spines.body = expr_max_spines(info, &program.body);
    }
    info.max_spines = spines.max();
    Ok(schemes_changed)
}

/// Maximum spine count over every *live* node of `program` — the exact
/// domain bound `d`, immune to stale `node_ty` entries left behind by
/// [`reinfer_program`].
pub fn program_max_spines(info: &TypeInfo, program: &Program) -> u32 {
    SpineTable::build(info, program).max()
}

/// Maximum spine count over the live nodes of one expression.
pub fn expr_max_spines(info: &TypeInfo, expr: &Expr) -> u32 {
    let mut d = 0;
    nml_syntax::visit::walk_exprs(expr, &mut |e: &Expr| {
        if let Some(t) = info.node_ty.get(&e.id) {
            d = d.max(deep_max_spines(t));
        }
    });
    d
}

/// Per-binding cache of the deepest spine count, letting
/// [`reinfer_program`] restore the exact domain bound `d` after an edit
/// without walking the whole program: only the re-inferred expressions
/// are re-walked, and the global bound is a scan of one `u32` per
/// binding. The caller keeps the table positionally in sync with
/// `Program::bindings` across graft/remove/reorder edits.
#[derive(Debug, Clone)]
pub struct SpineTable {
    /// Deepest spine count per binding, by position in `Program::bindings`.
    pub bindings: Vec<u32>,
    /// Deepest spine count over the program body.
    pub body: u32,
}

impl SpineTable {
    /// Builds the table with one full program walk (cold start).
    pub fn build(info: &TypeInfo, program: &Program) -> SpineTable {
        SpineTable {
            bindings: program
                .bindings
                .iter()
                .map(|b| expr_max_spines(info, &b.expr))
                .collect(),
            body: expr_max_spines(info, &program.body),
        }
    }

    /// The exact domain bound `d` for the current program.
    pub fn max(&self) -> u32 {
        self.bindings.iter().copied().fold(self.body, u32::max)
    }
}

/// A lexical type environment.
#[derive(Debug, Clone, Default)]
struct Env {
    scopes: Vec<(Symbol, Scheme)>,
}

impl Env {
    fn new() -> Self {
        Env::default()
    }

    fn push(&mut self, name: Symbol, scheme: Scheme) {
        self.scopes.push((name, scheme));
    }

    fn pop_n(&mut self, n: usize) {
        self.scopes.truncate(self.scopes.len() - n);
    }

    fn lookup(&self, name: Symbol) -> Option<&Scheme> {
        self.scopes
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    /// Type variables free in the environment (after resolution), used to
    /// decide what may be generalized.
    fn free_ty_vars(&self, cx: &InferCtx) -> HashSet<TyVar> {
        let mut out = HashSet::new();
        for (_, scheme) in &self.scopes {
            let resolved = cx.resolve(&scheme.ty);
            for v in resolved.vars() {
                if !scheme.vars.contains(&v) {
                    out.insert(v);
                }
            }
        }
        out
    }
}

struct Inferencer {
    cx: InferCtx,
    node_ty: HashMap<NodeId, Ty>, // pre-resolution types
    /// Var node -> (binding name, fresh vars standing for scheme vars).
    inst: HashMap<NodeId, (Symbol, Vec<Ty>)>,
    car_nodes: Vec<NodeId>,
}

impl Inferencer {
    fn new() -> Self {
        Inferencer {
            cx: InferCtx::new(),
            node_ty: HashMap::new(),
            inst: HashMap::new(),
            car_nodes: Vec::new(),
        }
    }

    fn record(&mut self, id: NodeId, ty: Ty) -> Ty {
        self.node_ty.insert(id, ty.clone());
        ty
    }

    fn prim_scheme(&mut self, p: Prim) -> Ty {
        use Prim::*;
        match p {
            Add | Sub | Mul | Div => Ty::fun_n([Ty::Int, Ty::Int], Ty::Int),
            Eq | Ne | Lt | Le | Gt | Ge => Ty::fun_n([Ty::Int, Ty::Int], Ty::Bool),
            Cons => {
                let a = self.cx.fresh();
                Ty::fun_n([a.clone(), Ty::list(a.clone())], Ty::list(a))
            }
            Car => {
                let a = self.cx.fresh();
                Ty::fun(Ty::list(a.clone()), a)
            }
            Cdr => {
                let a = self.cx.fresh();
                Ty::fun(Ty::list(a.clone()), Ty::list(a))
            }
            Null => {
                let a = self.cx.fresh();
                Ty::fun(Ty::list(a), Ty::Bool)
            }
            MkPair => {
                let a = self.cx.fresh();
                let b = self.cx.fresh();
                Ty::fun_n([a.clone(), b.clone()], Ty::prod(a, b))
            }
            Fst => {
                let a = self.cx.fresh();
                let b = self.cx.fresh();
                Ty::fun(Ty::prod(a.clone(), b), a)
            }
            Snd => {
                let a = self.cx.fresh();
                let b = self.cx.fresh();
                Ty::fun(Ty::prod(a, b.clone()), b)
            }
        }
    }

    fn infer(&mut self, e: &Expr, env: &mut Env) -> Result<Ty, TypeError> {
        let ty = match &e.kind {
            ExprKind::Const(c) => match c {
                Const::Int(_) => Ty::Int,
                Const::Bool(_) => Ty::Bool,
                Const::Nil => Ty::list(self.cx.fresh()),
                Const::Prim(p) => {
                    if *p == Prim::Car {
                        self.car_nodes.push(e.id);
                    }
                    self.prim_scheme(*p)
                }
            },
            ExprKind::Var(x) => {
                let scheme = env
                    .lookup(*x)
                    .ok_or_else(|| {
                        TypeError::new(
                            TypeErrorKind::Unbound {
                                name: x.to_string(),
                            },
                            e.span,
                        )
                    })?
                    .clone();
                if scheme.is_poly() {
                    let args: Vec<Ty> = scheme.vars.iter().map(|_| self.cx.fresh()).collect();
                    self.inst.insert(e.id, (*x, args.clone()));
                    scheme.instantiate_with(&args)
                } else {
                    scheme.ty
                }
            }
            ExprKind::App(f, a) => {
                let fty = self.infer(f, env)?;
                let aty = self.infer(a, env)?;
                let res = self.cx.fresh();
                self.cx.unify(&fty, &Ty::fun(aty, res.clone()), e.span)?;
                res
            }
            ExprKind::Lambda(x, body) => {
                let pty = self.cx.fresh();
                env.push(*x, Scheme::mono(pty.clone()));
                let bty = self.infer(body, env)?;
                env.pop_n(1);
                Ty::fun(pty, bty)
            }
            ExprKind::If(c, t, f) => {
                let cty = self.infer(c, env)?;
                self.cx.unify(&cty, &Ty::Bool, c.span)?;
                let tty = self.infer(t, env)?;
                let fty = self.infer(f, env)?;
                self.cx.unify(&tty, &fty, e.span)?;
                tty
            }
            ExprKind::Letrec(bindings, body) => {
                let n = self.letrec_group(bindings, env, e.span)?;
                let bty = self.infer(body, env)?;
                env.pop_n(n);
                bty
            }
            ExprKind::Annot(inner, surface) => {
                let ity = self.infer(inner, env)?;
                let mut var_map = HashMap::new();
                let want = self.surface_ty(surface, &mut var_map);
                self.cx.unify(&ity, &want, e.span)?;
                ity
            }
        };
        Ok(self.record(e.id, ty))
    }

    fn surface_ty(&mut self, t: &TyExpr, vars: &mut HashMap<Symbol, Ty>) -> Ty {
        match t {
            TyExpr::Int => Ty::Int,
            TyExpr::Bool => Ty::Bool,
            TyExpr::Var(s) => vars.entry(*s).or_insert_with(|| self.cx.fresh()).clone(),
            TyExpr::List(e) => Ty::list(self.surface_ty(e, vars)),
            TyExpr::Prod(a, b) => {
                let a = self.surface_ty(a, vars);
                let b = self.surface_ty(b, vars);
                Ty::prod(a, b)
            }
            TyExpr::Fun(a, b) => {
                let a = self.surface_ty(a, vars);
                let b = self.surface_ty(b, vars);
                Ty::fun(a, b)
            }
        }
    }

    /// Infers a `letrec` group: splits the bindings into strongly connected
    /// components, infers each SCC monomorphically, then generalizes.
    /// Pushes one scheme per binding onto `env` and returns how many.
    fn letrec_group(
        &mut self,
        bindings: &[Binding],
        env: &mut Env,
        _span: Span,
    ) -> Result<usize, TypeError> {
        let sccs = scc_order(bindings);
        for component in &sccs {
            // Monomorphic placeholders for the whole component.
            let placeholders: Vec<Ty> = component.iter().map(|_| self.cx.fresh()).collect();
            for (&idx, ph) in component.iter().zip(&placeholders) {
                env.push(bindings[idx].name, Scheme::mono(ph.clone()));
            }
            for (&idx, ph) in component.iter().zip(&placeholders) {
                let t = self.infer(&bindings[idx].expr, env)?;
                self.cx.unify(ph, &t, bindings[idx].expr.span)?;
            }
            // Replace the monomorphic entries with generalized schemes.
            env.pop_n(component.len());
            let env_vars = env.free_ty_vars(&self.cx);
            for (&idx, ph) in component.iter().zip(&placeholders) {
                let resolved = self.cx.resolve(ph);
                let gen_vars: Vec<TyVar> = resolved
                    .vars()
                    .into_iter()
                    .filter(|v| !env_vars.contains(v))
                    .collect();
                env.push(
                    bindings[idx].name,
                    Scheme {
                        vars: gen_vars,
                        ty: resolved,
                    },
                );
            }
        }
        Ok(bindings.len())
    }

    fn finish(
        self,
        program: &Program,
        _top_count: usize,
        _body_ty: Ty,
    ) -> Result<TypeInfo, TypeError> {
        let cx = &self.cx;
        let mut node_ty = HashMap::with_capacity(self.node_ty.len());
        let mut defaulted_nodes = Vec::new();
        let mut max_spines = 0;
        for (&id, ty) in &self.node_ty {
            let resolved = cx.resolve(ty);
            let ground = if resolved.has_vars() {
                defaulted_nodes.push(id);
                resolved.default_vars()
            } else {
                resolved
            };
            max_spines = max_spines.max(deep_max_spines(&ground));
            node_ty.insert(id, ground);
        }
        defaulted_nodes.sort();

        let mut car_spines = HashMap::new();
        for id in &self.car_nodes {
            let ty = &node_ty[id];
            match ty {
                Ty::Fun(dom, _) => {
                    car_spines.insert(*id, dom.spines());
                }
                other => {
                    unreachable!("car node {id} has non-function type {other}")
                }
            }
        }

        let mut instantiations = HashMap::new();
        for (id, (name, args)) in self.inst {
            let resolved: Vec<Ty> = args.iter().map(|a| cx.resolve(a)).collect();
            instantiations.insert(id, (name, resolved));
        }

        // Top-level schemes and ground signatures. The binding expression's
        // recorded type is the scheme body (pre-instantiation).
        let mut top_schemes = BTreeMap::new();
        let mut top_sigs = BTreeMap::new();
        let mut top_scheme_orig_vars = BTreeMap::new();
        for b in &program.bindings {
            let body_ty = cx.resolve(&self.node_ty[&b.expr.id]);
            // Normalize scheme variables to 'a, 'b, ... in occurrence order.
            // This is purely a renaming: positions are preserved, so the
            // per-use `instantiations` argument vectors still line up.
            let vars = body_ty.vars();
            let renaming: HashMap<TyVar, Ty> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, Ty::Var(TyVar(i as u32))))
                .collect();
            let scheme = Scheme {
                vars: (0..vars.len() as u32).map(TyVar).collect(),
                ty: body_ty.apply(&renaming),
            };
            top_sigs.insert(b.name, body_ty.default_vars());
            top_schemes.insert(b.name, scheme);
            top_scheme_orig_vars.insert(b.name, vars);
        }

        Ok(TypeInfo {
            node_ty,
            car_spines,
            top_schemes,
            top_sigs,
            max_spines,
            defaulted_nodes,
            instantiations,
            top_scheme_orig_vars,
        })
    }
}

/// Maximum spine count of any sub-type of `t` (parameter and result types
/// of functions contribute: the analysis manipulates values of those types
/// too).
fn deep_max_spines(t: &Ty) -> u32 {
    match t {
        Ty::Int | Ty::Bool | Ty::Var(_) => 0,
        Ty::List(e) => t.spines().max(deep_max_spines(e)),
        Ty::Prod(a, b) | Ty::Fun(a, b) => deep_max_spines(a).max(deep_max_spines(b)),
    }
}

/// Orders the bindings of a `letrec` into strongly connected components,
/// dependencies first (Tarjan's algorithm). Each element of the result is a
/// set of indices into `bindings` forming one mutually recursive group.
pub fn scc_order(bindings: &[Binding]) -> Vec<Vec<usize>> {
    let name_to_idx: HashMap<Symbol, usize> = bindings
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name, i))
        .collect();
    let deps: Vec<Vec<usize>> = bindings
        .iter()
        .map(|b| {
            free_vars(&b.expr)
                .into_iter()
                .filter_map(|v| name_to_idx.get(&v).copied())
                .collect()
        })
        .collect();

    // Iterative Tarjan.
    struct State {
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        out: Vec<Vec<usize>>,
    }
    let n = bindings.len();
    let mut st = State {
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };

    fn strongconnect(v: usize, deps: &[Vec<usize>], st: &mut State) {
        // Explicit work stack to avoid Rust-stack recursion on deep graphs.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        let mut work = vec![Frame::Enter(v)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    if st.index[v].is_some() {
                        continue;
                    }
                    st.index[v] = Some(st.next);
                    st.low[v] = st.next;
                    st.next += 1;
                    st.stack.push(v);
                    st.on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < deps[v].len() {
                        let w = deps[v][i];
                        i += 1;
                        match st.index[w] {
                            None => {
                                work.push(Frame::Resume(v, i));
                                work.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(widx) => {
                                if st.on_stack[w] {
                                    st.low[v] = st.low[v].min(widx);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors visited: fold lowlinks of tree children.
                    for &w in &deps[v] {
                        if st.on_stack[w] {
                            st.low[v] = st.low[v].min(st.low[w]);
                        }
                    }
                    if Some(st.low[v]) == st.index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = st.stack.pop().expect("tarjan stack underflow");
                            st.on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        st.out.push(comp);
                    }
                }
            }
        }
    }

    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(v, &deps, &mut st);
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::parse_program;

    fn infer(src: &str) -> TypeInfo {
        let p = parse_program(src).expect("parse");
        infer_program(&p).expect("infer")
    }

    fn sig(info: &TypeInfo, name: &str) -> String {
        info.top_sigs[&Symbol::intern(name)].to_string()
    }

    fn scheme(info: &TypeInfo, name: &str) -> String {
        info.top_schemes[&Symbol::intern(name)].to_string()
    }

    #[test]
    fn monomorphic_function() {
        let info = infer("letrec inc x = x + 1 in inc 2");
        assert_eq!(sig(&info, "inc"), "int -> int");
    }

    #[test]
    fn polymorphic_identity_generalizes() {
        let info = infer("letrec id x = x in id 1");
        assert_eq!(scheme(&info, "id"), "forall 'a. 'a -> 'a");
        assert_eq!(sig(&info, "id"), "int -> int");
    }

    #[test]
    fn append_has_list_scheme() {
        let info = infer(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
        );
        let s = scheme(&info, "append");
        assert!(s.contains("list ->"), "got {s}");
        assert_eq!(sig(&info, "append"), "int list -> int list -> int list");
    }

    #[test]
    fn scc_allows_polymorphic_use_across_bindings() {
        // `len` must generalize before `use` sees it, even in one letrec.
        let info = infer(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l);
                    use x = len [1] + len [[2]]
             in use 0",
        );
        assert_eq!(scheme(&info, "len"), "forall 'a. 'a list -> int");
    }

    #[test]
    fn mutual_recursion_in_one_scc() {
        let info = infer(
            "letrec even n = if n = 0 then true else odd (n - 1);
                    odd n = if n = 0 then false else even (n - 1)
             in even 4",
        );
        assert_eq!(sig(&info, "even"), "int -> bool");
        assert_eq!(sig(&info, "odd"), "int -> bool");
    }

    #[test]
    fn car_spines_recorded() {
        let p = parse_program("car [[1, 2], [3]]").unwrap();
        let info = infer_program(&p).unwrap();
        // Exactly one car node, annotated car^2 (argument is int list list).
        assert_eq!(info.car_spines.len(), 1);
        assert_eq!(*info.car_spines.values().next().unwrap(), 2);
    }

    #[test]
    fn car_spines_default_to_simplest_instance() {
        // In `first l = car l` at its simplest instance, l : int list, so car^1.
        let info = infer("letrec first l = car l in first [1]");
        assert_eq!(info.car_spines.len(), 1);
        assert_eq!(*info.car_spines.values().next().unwrap(), 1);
    }

    #[test]
    fn max_spines_is_domain_bound() {
        let info = infer("car [[1, 2], [3]]");
        assert_eq!(info.max_spines, 2);
        let info1 = infer("cons 1 nil");
        assert_eq!(info1.max_spines, 1);
        let info0 = infer("1 + 2");
        assert_eq!(info0.max_spines, 0);
    }

    #[test]
    fn unbound_variable_errors() {
        let p = parse_program("foo 1").unwrap();
        let err = infer_program(&p).unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::Unbound { .. }));
    }

    #[test]
    fn branch_type_mismatch_errors() {
        let p = parse_program("if true then 1 else false").unwrap();
        assert!(infer_program(&p).is_err());
    }

    #[test]
    fn condition_must_be_bool() {
        let p = parse_program("if 1 then 2 else 3").unwrap();
        assert!(infer_program(&p).is_err());
    }

    #[test]
    fn occurs_check_self_application() {
        let p = parse_program("lambda(x). x x").unwrap();
        let err = infer_program(&p).unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::Occurs { .. }));
    }

    #[test]
    fn ascription_constrains() {
        let info = infer("(nil : int list list)");
        assert_eq!(info.max_spines, 2);
        let p = parse_program("(1 : bool)").unwrap();
        assert!(infer_program(&p).is_err());
    }

    #[test]
    fn instantiations_recorded_for_poly_uses() {
        let src = "letrec id x = x in id [1]";
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        let insts: Vec<_> = info.instantiations.values().collect();
        assert_eq!(insts.len(), 1);
        let (name, args) = insts[0];
        assert_eq!(name.as_str(), "id");
        assert_eq!(args, &vec![Ty::list(Ty::Int)]);
    }

    #[test]
    fn paper_partition_sort_types() {
        let info = infer(
            r#"
            letrec
              append x y = if (null x) then y
                           else cons (car x) (append (cdr x) y);
              split p x l h =
                if (null x) then (cons l (cons h nil))
                else if (car x) < p
                     then split p (cdr x) (cons (car x) l) h
                     else split p (cdr x) l (cons (car x) h);
              ps x = if (null x) then nil
                     else append (ps (car (split (car x) (cdr x) nil nil)))
                                 (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
            in ps [5, 2, 7, 1, 3, 4]
            "#,
        );
        // PS : int list -> int list (paper appendix A)
        assert_eq!(sig(&info, "ps"), "int list -> int list");
        // SPLIT : int -> int list -> int list -> int list -> int list list
        assert_eq!(
            sig(&info, "split"),
            "int -> int list -> int list -> int list -> int list list"
        );
        assert_eq!(info.max_spines, 2);
    }

    #[test]
    fn scc_order_dependencies_first() {
        let p = parse_program("letrec f x = g x; g x = x; h x = f (g x) in h 1").unwrap();
        let order = scc_order(&p.bindings);
        // g (idx 1) must come before f (idx 0); h (idx 2) last.
        let pos = |i: usize| order.iter().position(|c| c.contains(&i)).unwrap();
        assert!(pos(1) < pos(0));
        assert!(pos(0) < pos(2));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn scc_order_mutual_group() {
        let p = parse_program("letrec even n = odd n; odd n = even n; main x = even x in main 1")
            .unwrap();
        let order = scc_order(&p.bindings);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], vec![0, 1]);
        assert_eq!(order[1], vec![2]);
    }

    #[test]
    fn tuple_primitives_infer() {
        let info = infer("letrec swap p = (snd p, fst p) in swap (1, [2])");
        assert_eq!(scheme(&info, "swap"), "forall 'a 'b. 'a * 'b -> 'b * 'a");
        assert_eq!(sig(&info, "swap"), "int * int -> int * int");
    }

    #[test]
    fn tuples_of_lists_have_zero_spines_but_components_count() {
        // A pair is not a spine; but its components' spines bound d.
        let info = infer("(fst ([1], [[2]]))");
        assert_eq!(info.max_spines, 2);
    }

    #[test]
    fn tuple_type_mismatch_errors() {
        let p = parse_program("fst [1]").unwrap();
        assert!(infer_program(&p).is_err(), "fst of a list is ill-typed");
    }

    #[test]
    fn higher_order_map_scheme() {
        let info = infer(
            "letrec map f l = if (null l) then nil
                              else cons (f (car l)) (map f (cdr l))
             in map (lambda(x). x + 1) [1, 2]",
        );
        let s = scheme(&info, "map");
        assert_eq!(s, "forall 'a 'b. ('a -> 'b) -> 'a list -> 'b list");
    }
}
