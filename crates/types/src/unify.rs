//! The unification engine: a mutable substitution with occurs check.

use crate::error::{TypeError, TypeErrorKind};
use crate::ty::{Ty, TyVar};
use nml_syntax::Span;

/// A mutable inference context: fresh-variable supply plus substitution.
#[derive(Debug, Default)]
pub struct InferCtx {
    subst: Vec<Option<Ty>>,
}

impl InferCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        InferCtx::default()
    }

    /// Allocates a fresh type variable.
    pub fn fresh(&mut self) -> Ty {
        let v = TyVar(self.subst.len() as u32);
        self.subst.push(None);
        Ty::Var(v)
    }

    /// Allocates a fresh variable and returns it as a [`TyVar`].
    pub fn fresh_var(&mut self) -> TyVar {
        match self.fresh() {
            Ty::Var(v) => v,
            _ => unreachable!("fresh always returns a variable"),
        }
    }

    /// Number of variables allocated so far.
    pub fn var_count(&self) -> usize {
        self.subst.len()
    }

    /// Follows the substitution one level: resolves a variable to its
    /// binding's head, without rewriting sub-terms.
    fn shallow(&self, t: &Ty) -> Ty {
        let mut cur = t.clone();
        while let Ty::Var(v) = cur {
            match &self.subst[v.0 as usize] {
                Some(bound) => cur = bound.clone(),
                None => return cur,
            }
        }
        cur
    }

    /// Fully applies the substitution to `t`.
    pub fn resolve(&self, t: &Ty) -> Ty {
        match self.shallow(t) {
            Ty::Int => Ty::Int,
            Ty::Bool => Ty::Bool,
            Ty::Var(v) => Ty::Var(v),
            Ty::List(e) => Ty::list(self.resolve(&e)),
            Ty::Prod(a, b) => Ty::prod(self.resolve(&a), self.resolve(&b)),
            Ty::Fun(a, b) => Ty::fun(self.resolve(&a), self.resolve(&b)),
        }
    }

    fn occurs(&self, v: TyVar, t: &Ty) -> bool {
        match self.shallow(t) {
            Ty::Int | Ty::Bool => false,
            Ty::Var(w) => v == w,
            Ty::List(e) => self.occurs(v, &e),
            Ty::Prod(a, b) | Ty::Fun(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
        }
    }

    /// Unifies `a` with `b`, extending the substitution.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] at `span` on constructor mismatch or a
    /// failed occurs check.
    pub fn unify(&mut self, a: &Ty, b: &Ty, span: Span) -> Result<(), TypeError> {
        let a = self.shallow(a);
        let b = self.shallow(b);
        match (&a, &b) {
            (Ty::Int, Ty::Int) | (Ty::Bool, Ty::Bool) => Ok(()),
            (Ty::Var(v), Ty::Var(w)) if v == w => Ok(()),
            (Ty::Var(v), other) | (other, Ty::Var(v)) => {
                if self.occurs(*v, other) {
                    return Err(TypeError::new(
                        TypeErrorKind::Occurs {
                            var: *v,
                            ty: self.resolve(other),
                        },
                        span,
                    ));
                }
                self.subst[v.0 as usize] = Some(other.clone());
                Ok(())
            }
            (Ty::List(x), Ty::List(y)) => self.unify(x, y, span),
            (Ty::Prod(a1, b1), Ty::Prod(a2, b2)) => {
                self.unify(a1, a2, span)?;
                self.unify(b1, b2, span)
            }
            (Ty::Fun(a1, r1), Ty::Fun(a2, r2)) => {
                self.unify(a1, a2, span)?;
                self.unify(r1, r2, span)
            }
            _ => Err(TypeError::new(
                TypeErrorKind::Mismatch {
                    expected: self.resolve(&a),
                    found: self.resolve(&b),
                },
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::DUMMY
    }

    #[test]
    fn unify_identical_bases() {
        let mut cx = InferCtx::new();
        assert!(cx.unify(&Ty::Int, &Ty::Int, sp()).is_ok());
        assert!(cx.unify(&Ty::Int, &Ty::Bool, sp()).is_err());
    }

    #[test]
    fn unify_var_binds() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        cx.unify(&a, &Ty::list(Ty::Int), sp()).unwrap();
        assert_eq!(cx.resolve(&a), Ty::list(Ty::Int));
    }

    #[test]
    fn unify_through_chains() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let b = cx.fresh();
        cx.unify(&a, &b, sp()).unwrap();
        cx.unify(&b, &Ty::Bool, sp()).unwrap();
        assert_eq!(cx.resolve(&a), Ty::Bool);
    }

    #[test]
    fn occurs_check_fires() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let err = cx.unify(&a, &Ty::list(a.clone()), sp()).unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::Occurs { .. }));
    }

    #[test]
    fn unify_functions_componentwise() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let b = cx.fresh();
        let f1 = Ty::fun(a.clone(), b.clone());
        let f2 = Ty::fun(Ty::Int, Ty::list(Ty::Bool));
        cx.unify(&f1, &f2, sp()).unwrap();
        assert_eq!(cx.resolve(&a), Ty::Int);
        assert_eq!(cx.resolve(&b), Ty::list(Ty::Bool));
    }

    #[test]
    fn mismatch_reports_resolved_types() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        cx.unify(&a, &Ty::Int, sp()).unwrap();
        let err = cx.unify(&a, &Ty::Bool, sp()).unwrap_err();
        match err.kind {
            TypeErrorKind::Mismatch { expected, found } => {
                assert_eq!(expected, Ty::Int);
                assert_eq!(found, Ty::Bool);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
