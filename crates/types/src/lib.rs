//! # nml-types
//!
//! Type inference and monomorphization for nml, supporting *Escape
//! Analysis on Lists* (Park & Goldberg, PLDI 1992).
//!
//! The paper assumes programs are monomorphically typed and every `car` is
//! annotated `car^s` with the spine count of its argument (§3.4). This
//! crate provides:
//!
//! - Hindley–Milner inference with let-polymorphism over `letrec` strongly
//!   connected components ([`infer::infer_program`]);
//! - spine counting on types ([`ty::Ty::spines`], Definition 1);
//! - `car^s` annotation ([`infer::TypeInfo::car_spines`]);
//! - the basic-escape-domain bound `d` ([`infer::TypeInfo::max_spines`]);
//! - the *simplest monotype instance* of polymorphic functions (defaulting
//!   residual variables to `int`), which the polymorphic-invariance theorem
//!   (§5) makes sufficient for the analysis;
//! - full monomorphization by specialization ([`mono::monomorphize`]) for
//!   exact per-instance results.
//!
//! ## Example
//!
//! ```
//! use nml_syntax::parse_program;
//! use nml_types::infer_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program("car [[1, 2], [3]]")?;
//! let info = infer_program(&program)?;
//! // The single `car` is annotated car^2: its argument has two spines.
//! assert_eq!(info.car_spines.values().copied().collect::<Vec<_>>(), vec![2]);
//! assert_eq!(info.max_spines, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod infer;
pub mod mono;
pub mod ty;
pub mod unify;

pub use error::{TypeError, TypeErrorKind};
pub use infer::{
    expr_max_spines, infer_program, program_max_spines, reinfer_program, scc_order, SpineTable,
    TypeInfo,
};
pub use mono::{infer_and_monomorphize, monomorphize, MonoProgram};
pub use ty::{Scheme, Ty, TyVar};
pub use unify::InferCtx;
