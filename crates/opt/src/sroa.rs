//! Scalar replacement of aggregates (SROA) for cons cells: the first
//! pass that *eliminates* allocations instead of relocating them.
//!
//! The paper's optimizations move a cell (stack region, block region,
//! old space) or reuse it in place; the cell still exists. When a cell
//! provably **never escapes** and is **never aliased**, nothing in the
//! program can observe its identity — every access is a syntactically
//! visible `car`/`cdr`/`null` of the one binding that names it — so the
//! cell need not exist at all: the bytecode compiler scalarizes its head
//! and tail into plain frame slots and the allocation disappears.
//!
//! The pass has two halves with an explicit soundness split:
//!
//! 1. **This module** computes a per-site [`SiteFact`] — the joined
//!    [`EscapeState`] of each `cons` site plus an aliasing bit from
//!    union-find over the bindings that may name the cell
//!    ([`nml_escape::AliasClasses`]) — and marks qualifying heap sites
//!    [`AllocMode::Elided`]. The walk is conservative: any flow it does
//!    not understand joins to [`EscapeState::GlobalEscape`].
//! 2. **The bytecode compiler** (`nml-runtime`) independently
//!    re-verifies, at slot level, that an `Elided` binding is used only
//!    under projections before scalarizing; anything else falls back to
//!    an ordinary heap `cons`. The mark is therefore a *license*, never
//!    an obligation — a wrong (or sabotaged) `Elided` mark degrades to a
//!    heap allocation, it cannot change program meaning. The tree-walker
//!    ignores the mark entirely and stays the differential oracle.
//!
//! Call arguments are escalated through the paper-level summaries: a
//! callee whose parameter verdict is `⟨0,0⟩` retains nothing, so the
//! argument joins only [`EscapeState::ArgEscape`] (the cell must still
//! exist for the call); any escaping verdict, an unknown callee, or a
//! degraded summary joins [`EscapeState::GlobalEscape`].

use crate::ir::{AllocMode, IrExpr, IrProgram, SiteId};
use crate::quarantine::walk_ir_mut;
use nml_escape::{state_of_param, AliasClasses, Analysis, EscapeState};
use nml_syntax::{Prim, Symbol};
use std::collections::BTreeMap;

/// What the lattice walk established about one `cons` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteFact {
    /// The joined escape state over every path the cell's value takes.
    pub state: EscapeState,
    /// Whether any binding beyond the defining one may name the cell.
    pub aliased: bool,
}

impl SiteFact {
    /// Whether the site qualifies for scalar replacement.
    pub fn elidable(&self) -> bool {
        self.state.allows_elision() && !self.aliased
    }
}

/// Computes the escape lattice fact for every `cons` site in `ir`.
pub fn analyze_sites(ir: &IrProgram, analysis: &Analysis) -> BTreeMap<SiteId, SiteFact> {
    let mut az = SiteAnalyzer {
        analysis,
        states: BTreeMap::new(),
        alias: AliasClasses::new(),
        alias_ids: BTreeMap::new(),
        env: Vec::new(),
    };
    for f in &ir.funcs {
        let base = az.env.len();
        for p in &f.params {
            az.env.push((*p, Vec::new()));
        }
        let result = az.eval(&f.body);
        az.escalate(&result, EscapeState::ReturnEscape);
        az.env.truncate(base);
    }
    let result = az.eval(&ir.body);
    // The program body's value survives to exit (it is printed/read).
    az.escalate(&result, EscapeState::ReturnEscape);
    let mut out = BTreeMap::new();
    for (site, state) in az.states {
        let id = az.alias_ids[&site];
        out.insert(
            site,
            SiteFact {
                state,
                aliased: !az.alias.is_unaliased(id),
            },
        );
    }
    out
}

/// Marks every plain-heap `cons` site whose fact is no-escape and
/// unaliased as [`AllocMode::Elided`]. Returns the number of sites
/// marked. Stronger placement claims (stack/block/pretenure) are never
/// overridden, so this pass composes with the others in any order.
pub fn annotate_sroa(ir: &mut IrProgram, analysis: &Analysis) -> usize {
    let facts = analyze_sites(ir, analysis);
    let mut count = 0;
    let mut mark = |e: &mut IrExpr| {
        if let IrExpr::Cons { alloc, site, .. } = e {
            if *alloc == AllocMode::Heap && facts.get(site).is_some_and(SiteFact::elidable) {
                *alloc = AllocMode::Elided;
                count += 1;
            }
        }
    };
    let mut funcs = std::mem::take(&mut ir.funcs);
    for f in &mut funcs {
        walk_ir_mut(&mut f.body, &mut mark);
    }
    ir.funcs = funcs;
    walk_ir_mut(&mut ir.body, &mut mark);
    count
}

/// Resets every [`AllocMode::Elided`] mark back to plain heap allocation.
/// Used by `--no-sroa` to undo what an earlier pass-manager run licensed.
pub fn strip_sroa(ir: &mut IrProgram) -> usize {
    let mut count = 0;
    let mut strip = |e: &mut IrExpr| {
        if let IrExpr::Cons { alloc, .. } = e {
            if *alloc == AllocMode::Elided {
                *alloc = AllocMode::Heap;
                count += 1;
            }
        }
    };
    let mut funcs = std::mem::take(&mut ir.funcs);
    for f in &mut funcs {
        walk_ir_mut(&mut f.body, &mut strip);
    }
    ir.funcs = funcs;
    walk_ir_mut(&mut ir.body, &mut strip);
    count
}

/// The conservative abstract walk. `env` maps in-scope bindings to the
/// set of sites whose cell the binding may name (innermost last);
/// [`SiteAnalyzer::eval`] returns the site set of an expression's own
/// value.
struct SiteAnalyzer<'a> {
    analysis: &'a Analysis,
    states: BTreeMap<SiteId, EscapeState>,
    alias: AliasClasses,
    alias_ids: BTreeMap<SiteId, u32>,
    env: Vec<(Symbol, Vec<SiteId>)>,
}

impl SiteAnalyzer<'_> {
    fn lookup(&self, x: Symbol) -> Vec<SiteId> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| *n == x)
            .map(|(_, s)| s.clone())
            .unwrap_or_default()
    }

    fn escalate(&mut self, sites: &[SiteId], st: EscapeState) {
        for s in sites {
            let e = self.states.entry(*s).or_default();
            *e = e.join(st);
        }
    }

    /// Records a second name for each site: its alias class stops being
    /// a singleton.
    fn mark_aliased(&mut self, sites: &[SiteId]) {
        for s in sites {
            let id = self.alias_ids[s];
            let second = self.alias.fresh();
            self.alias.union(id, second);
        }
    }

    fn eval(&mut self, e: &IrExpr) -> Vec<SiteId> {
        match e {
            IrExpr::Const(_) => Vec::new(),
            IrExpr::Var(x) => self.lookup(*x),
            IrExpr::App(..) => self.eval_call(e),
            IrExpr::Lambda { body, param, .. } => {
                // Anything the closure can reach outlives this frame's
                // reasoning: escalate every outer binding the body
                // mentions (over-approximate — inner shadowing ignored).
                let mut freed: Vec<SiteId> = Vec::new();
                crate::ir::walk_ir(body, &mut |n| {
                    if let IrExpr::Var(x) = n {
                        freed.extend(self.lookup(*x));
                    }
                });
                self.escalate(&freed, EscapeState::GlobalEscape);
                self.mark_aliased(&freed);
                // The body's own sites live per invocation of the
                // closure: analyze them in a fresh scope.
                let saved = std::mem::take(&mut self.env);
                self.env.push((*param, Vec::new()));
                let result = self.eval(body);
                self.escalate(&result, EscapeState::ReturnEscape);
                self.env = saved;
                Vec::new()
            }
            IrExpr::If(c, t, f) => {
                let cs = self.eval(c);
                // A condition is a bool; a cell flowing *as* the
                // condition would be a type error, but stay conservative.
                self.escalate(&cs, EscapeState::GlobalEscape);
                let mut s = self.eval(t);
                let fs = self.eval(f);
                for x in fs {
                    if !s.contains(&x) {
                        s.push(x);
                    }
                }
                s
            }
            IrExpr::Letrec(bs, body) => {
                let base = self.env.len();
                for (n, rhs) in bs {
                    let sites = self.eval(rhs);
                    // The defining `n = cons …` is the cell's first
                    // name; any other binding shape that yields cells
                    // (a copy, an if-join, a dcons) is an extra name.
                    let defining = matches!(rhs, IrExpr::Cons { .. });
                    if !defining {
                        self.mark_aliased(&sites);
                    }
                    self.env.push((*n, sites));
                }
                let result = self.eval(body);
                self.env.truncate(base);
                result
            }
            IrExpr::Cons {
                head, tail, site, ..
            } => {
                self.states.entry(*site).or_default();
                let id = self.alias.fresh();
                self.alias_ids.insert(*site, id);
                let hs = self.eval(head);
                self.escalate(&hs, EscapeState::GlobalEscape);
                self.mark_aliased(&hs);
                let ts = self.eval(tail);
                self.escalate(&ts, EscapeState::GlobalEscape);
                self.mark_aliased(&ts);
                vec![*site]
            }
            IrExpr::Dcons {
                reused, head, tail, ..
            } => {
                let rs = self.lookup(*reused);
                self.escalate(&rs, EscapeState::GlobalEscape);
                let hs = self.eval(head);
                self.escalate(&hs, EscapeState::GlobalEscape);
                self.mark_aliased(&hs);
                let ts = self.eval(tail);
                self.escalate(&ts, EscapeState::GlobalEscape);
                self.mark_aliased(&ts);
                rs
            }
            IrExpr::Prim1(p, a) => {
                let s = self.eval(a);
                match p {
                    // Projections and the null probe are exactly the
                    // accesses scalarization can serve: no escalation.
                    Prim::Car | Prim::Cdr | Prim::Null | Prim::Fst | Prim::Snd => {}
                    _ => self.escalate(&s, EscapeState::GlobalEscape),
                }
                // `car p` yields an *element* of the cell, not the cell.
                Vec::new()
            }
            IrExpr::Prim2(_, a, b) => {
                // Arithmetic/comparison: a cell in operand position
                // would be a type error; join conservatively anyway.
                let sa = self.eval(a);
                self.escalate(&sa, EscapeState::ArgEscape);
                let sb = self.eval(b);
                self.escalate(&sb, EscapeState::ArgEscape);
                Vec::new()
            }
            IrExpr::Region { inner, .. } => self.eval(inner),
        }
    }

    /// A (possibly curried) application: escalate every argument's sites
    /// through the callee's summary; the result set is unknown (but any
    /// cell it could contain is already ≥ arg-escape, which blocks
    /// elision, so the empty set is sound *for this lattice's use*).
    fn eval_call(&mut self, e: &IrExpr) -> Vec<SiteId> {
        let mut args: Vec<&IrExpr> = Vec::new();
        let mut cur = e;
        while let IrExpr::App(f, a) = cur {
            args.push(a);
            cur = f;
        }
        args.reverse();
        let head = cur;
        // Per-parameter states when the callee is a known, non-degraded,
        // non-shadowed global with matching arity.
        let summary = match head {
            IrExpr::Var(f)
                if !self.env.iter().any(|(n, _)| n == f) && !self.analysis.is_degraded_sym(*f) =>
            {
                self.analysis
                    .summaries
                    .get(f)
                    .filter(|s| s.arity() == args.len())
            }
            _ => None,
        };
        if !matches!(head, IrExpr::Var(_) | IrExpr::Const(_)) {
            let hs = self.eval(head);
            self.escalate(&hs, EscapeState::GlobalEscape);
        }
        for (j, a) in args.iter().enumerate() {
            let s = self.eval(a);
            let st = match summary {
                Some(sum) if state_of_param(sum.param(j)) == EscapeState::NoEscape => {
                    EscapeState::ArgEscape
                }
                _ => EscapeState::GlobalEscape,
            };
            self.escalate(&s, st);
            // The callee holds another name for the cell during the
            // call; with a no-escape verdict it drops that name, so the
            // defining binding stays the only one after the call.
            if st == EscapeState::GlobalEscape {
                self.mark_aliased(&s);
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{lower_program, walk_ir};
    use nml_escape::analyze_source;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    fn elided_sites(ir: &IrProgram) -> usize {
        let mut n = 0;
        let mut count = |e: &IrExpr| {
            if matches!(
                e,
                IrExpr::Cons {
                    alloc: AllocMode::Elided,
                    ..
                }
            ) {
                n += 1;
            }
        };
        for f in &ir.funcs {
            walk_ir(&f.body, &mut count);
        }
        walk_ir(&ir.body, &mut count);
        n
    }

    #[test]
    fn projected_pair_is_elided() {
        let (mut ir, analysis) = prep(
            "letrec f n = letrec p = cons n (cons 1 nil) in car p + car (cdr p)
             in f 3",
        );
        let n = annotate_sroa(&mut ir, &analysis);
        // Outer pair: projected only — elided. Inner `cons 1 nil` is
        // stored into the outer cell: global-escape, not elided.
        assert_eq!(n, 1);
        assert_eq!(elided_sites(&ir), 1);
        let f = ir.func(nml_syntax::Symbol::intern("f")).unwrap();
        assert!(f.body.to_string().contains("cons[elided]"), "{}", f.body);
    }

    #[test]
    fn returned_cons_is_return_escape() {
        let (ir, analysis) = prep("letrec mk n = cons n nil in car (mk 1)");
        let facts = analyze_sites(&ir, &analysis);
        assert_eq!(facts.len(), 1);
        let fact = facts.values().next().unwrap();
        assert_eq!(fact.state, EscapeState::ReturnEscape);
        assert!(!fact.elidable());
    }

    #[test]
    fn copied_binding_is_aliased() {
        let (mut ir, analysis) = prep(
            "letrec f n = letrec p = cons n nil; q = p in car q
             in f 1",
        );
        let facts = analyze_sites(&ir, &analysis);
        assert!(
            facts.values().any(|f| f.aliased),
            "copy must alias: {facts:?}"
        );
        assert_eq!(annotate_sroa(&mut ir, &analysis), 0);
    }

    #[test]
    fn call_argument_is_arg_escape() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in letrec p = cons 1 (cons 2 nil) in sum p",
        );
        let facts = analyze_sites(&ir, &analysis);
        // sum's parameter is ⟨0,0⟩: the argument cells are arg-escape
        // (must exist for the call) but nothing worse.
        assert!(facts
            .values()
            .all(|f| f.state >= EscapeState::ArgEscape || f.state == EscapeState::GlobalEscape));
        assert_eq!(annotate_sroa(&mut ir, &analysis), 0);
    }

    #[test]
    fn unknown_callee_is_global_escape() {
        let (ir, analysis) = prep(
            "letrec apply f x = f x in
             letrec p = cons 1 nil in apply (lambda(l). car l) p",
        );
        let facts = analyze_sites(&ir, &analysis);
        let p_fact = facts
            .values()
            .find(|f| f.state == EscapeState::GlobalEscape);
        assert!(p_fact.is_some(), "{facts:?}");
    }

    #[test]
    fn captured_binding_is_global_escape() {
        let (mut ir, analysis) = prep(
            "letrec call f = f 0 in
             letrec p = cons 1 nil in call (lambda(x). car p + x)",
        );
        let facts = analyze_sites(&ir, &analysis);
        assert!(
            facts
                .values()
                .any(|f| f.state == EscapeState::GlobalEscape && f.aliased),
            "{facts:?}"
        );
        assert_eq!(annotate_sroa(&mut ir, &analysis), 0);
    }

    #[test]
    fn null_probe_does_not_block_elision() {
        let (mut ir, analysis) = prep(
            "letrec f n = letrec p = cons n nil in if (null p) then 0 else car p
             in f 7",
        );
        assert_eq!(annotate_sroa(&mut ir, &analysis), 1);
    }

    #[test]
    fn stronger_claims_are_not_overridden() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum (cons 1 (cons 2 nil))",
        );
        let stacked = crate::stack::annotate_stack(&mut ir, &analysis);
        assert_eq!(stacked, 1);
        annotate_sroa(&mut ir, &analysis);
        let text = ir.body.to_string();
        assert!(text.contains("cons[stack]"), "{text}");
        assert!(!text.contains("cons[elided]"), "{text}");
    }

    #[test]
    fn lambda_local_pair_is_elided_per_invocation() {
        let (mut ir, analysis) = prep(
            "letrec call f = f 4 in
             call (lambda(n). letrec p = cons n (cons n nil) in car p + car (cdr p))",
        );
        assert_eq!(annotate_sroa(&mut ir, &analysis), 1);
    }

    #[test]
    fn facts_agree_with_escape_class_bridge() {
        use nml_escape::class_of_state;
        // Spot-check the lattice→class fold stays consistent with the
        // coarse classifier's exactness contract on the local side.
        let (ir, analysis) = prep(
            "letrec f n = letrec p = cons n nil in car p
             in f 2",
        );
        let facts = analyze_sites(&ir, &analysis);
        for fact in facts.values() {
            if fact.state == EscapeState::NoEscape {
                assert_eq!(
                    class_of_state(fact.state),
                    nml_escape::EscapeClass::ProvablyLocal
                );
            }
        }
    }
}
