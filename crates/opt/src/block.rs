//! Block allocation / reclamation (paper §1, §A.3.3).
//!
//! For `PS (create_list i)`, the list built by `create_list` cannot live
//! in `PS`'s activation record — the record does not exist while the list
//! is being built. The paper's alternative: `create_list` allocates the
//! spine into a *block* of memory (Ruggieri & Murtagh's "local heap");
//! since the spine does not escape `PS`, the whole block goes back on the
//! free list when `PS` returns — without traversing the list.
//!
//! The transformation: given a call `f (g a₁ … aₘ)` where the global
//! escape test says `f`'s parameter's top spine does not escape, create a
//! variant `g_blk` whose **result-spine** `cons` sites allocate into the
//! current block, and rewrite the call to
//! `region[block] (f (g_blk a₁ … aₘ))`.

use crate::error::OptError;
use crate::ir::{AllocMode, IrExpr, IrFunc, IrProgram, RegionKind, SiteId};
use crate::reuse::rewrite_calls;
use nml_escape::Analysis;
use nml_syntax::Symbol;

/// The name of the block-allocating variant of `name`.
pub fn block_name(name: Symbol) -> Symbol {
    Symbol::intern(&format!("{name}_blk"))
}

/// Creates (or reuses) `g_blk`: a copy of `g` whose result-spine `cons`
/// sites are annotated [`AllocMode::Block`], with self-recursion
/// redirected to the variant.
///
/// # Errors
///
/// [`OptError::UnknownFunction`] if `g` is not a top-level function.
pub fn block_producer_variant(ir: &mut IrProgram, g: Symbol) -> Result<Symbol, OptError> {
    let func = ir
        .func(g)
        .filter(|f| f.is_function())
        .ok_or_else(|| OptError::UnknownFunction {
            name: g.to_string(),
        })?
        .clone();
    let new_name = block_name(g);
    if ir.func(new_name).is_some() {
        return Ok(new_name);
    }
    let body = mark_result_spine(func.body);
    let body = rewrite_calls(body, &[(g, new_name)]);
    ir.funcs.push(IrFunc {
        name: new_name,
        params: func.params,
        body,
    });
    Ok(new_name)
}

/// Annotates the `cons` cells that build the expression's result spine:
/// the expression itself, both `if` branches, `letrec` bodies, and the
/// *tails* of result conses (the spine chain). Elements are left on the
/// heap.
fn mark_result_spine(e: IrExpr) -> IrExpr {
    match e {
        IrExpr::Cons {
            head, tail, site, ..
        } => IrExpr::Cons {
            alloc: AllocMode::Block,
            head,
            tail: Box::new(mark_result_spine(*tail)),
            site,
        },
        IrExpr::If(c, t, f) => IrExpr::If(
            c,
            Box::new(mark_result_spine(*t)),
            Box::new(mark_result_spine(*f)),
        ),
        IrExpr::Letrec(bs, body) => IrExpr::Letrec(bs, Box::new(mark_result_spine(*body))),
        IrExpr::Region { kind, inner, site } => IrExpr::Region {
            kind,
            inner: Box::new(mark_result_spine(*inner)),
            site,
        },
        other => other,
    }
}

/// Rewrites every call `f (g …)` in the program — the main body and
/// every function body — to `region[block] (f (g_blk …))`, provided
/// `f`'s corresponding parameter retains its top spine. Returns the
/// number of rewritten calls.
///
/// # Errors
///
/// - [`OptError::UnknownFunction`] if `f` or `g` is unknown;
/// - [`OptError::NoMatchingCall`] if no such call exists or the escape
///   analysis forbids the rewrite everywhere.
pub fn block_call(
    ir: &mut IrProgram,
    analysis: &Analysis,
    f: Symbol,
    g: Symbol,
) -> Result<usize, OptError> {
    if ir.func(f).is_none() {
        return Err(OptError::UnknownFunction {
            name: f.to_string(),
        });
    }
    // A degraded summary is already maximally pessimistic (nothing
    // retained), but refuse explicitly so callers get a typed reason
    // rather than a misleading "no matching call".
    for n in [f, g] {
        if analysis.is_degraded_sym(n) {
            return Err(OptError::DegradedSummary {
                name: n.to_string(),
            });
        }
    }
    let g_blk = block_producer_variant(ir, g)?;
    let summary = analysis
        .summaries
        .get(&f)
        .ok_or_else(|| OptError::UnknownFunction {
            name: f.to_string(),
        })?
        .clone();

    let mut count = 0usize;
    let mut next_site = ir.next_site;
    let funcs = std::mem::take(&mut ir.funcs);
    ir.funcs = funcs
        .into_iter()
        .map(|mut func| {
            // The producer variant itself is left alone: rewriting inside
            // it could nest a region around its own recursion.
            if func.name != g_blk {
                let body = std::mem::replace(&mut func.body, IrExpr::Const(nml_syntax::Const::Nil));
                func.body = rewrite(body, f, g, g_blk, &summary, &mut next_site, &mut count);
            }
            func
        })
        .collect();
    let body = std::mem::replace(&mut ir.body, IrExpr::Const(nml_syntax::Const::Nil));
    ir.body = rewrite(body, f, g, g_blk, &summary, &mut next_site, &mut count);
    ir.next_site = next_site;
    if count == 0 {
        return Err(OptError::NoMatchingCall {
            pattern: format!("{f} ({g} ...)"),
        });
    }
    Ok(count)
}

fn rewrite(
    e: IrExpr,
    f: Symbol,
    g: Symbol,
    g_blk: Symbol,
    summary: &nml_escape::EscapeSummary,
    next_site: &mut u32,
    count: &mut usize,
) -> IrExpr {
    // Recurse first.
    let e = crate::stack::map_children(e, &mut |c| {
        rewrite(c, f, g, g_blk, summary, next_site, count)
    });
    // Match `f a1 .. an` with some `aj = g b1 .. bm`.
    let (head, args) = split(e);
    let is_f = matches!(&head, IrExpr::Var(x) if *x == f);
    if !is_f || args.len() != summary.arity() {
        return join(head, args);
    }
    let mut any = false;
    let args: Vec<IrExpr> = args
        .into_iter()
        .enumerate()
        .map(|(j, a)| {
            if summary.param(j).retained_spines() < 1 {
                return a;
            }
            let (ah, aargs) = split(a);
            if matches!(&ah, IrExpr::Var(x) if *x == g) && !aargs.is_empty() {
                any = true;
                join(IrExpr::Var(g_blk), aargs)
            } else {
                join(ah, aargs)
            }
        })
        .collect();
    let call = join(head, args);
    if any {
        *count += 1;
        let site = SiteId(*next_site);
        *next_site += 1;
        IrExpr::Region {
            kind: RegionKind::Block,
            inner: Box::new(call),
            site,
        }
    } else {
        call
    }
}

fn split(e: IrExpr) -> (IrExpr, Vec<IrExpr>) {
    let mut args = Vec::new();
    let mut cur = e;
    while let IrExpr::App(a, b) = cur {
        args.push(*b);
        cur = *a;
    }
    args.reverse();
    (cur, args)
}

fn join(head: IrExpr, args: Vec<IrExpr>) -> IrExpr {
    args.into_iter()
        .fold(head, |f, a| IrExpr::App(Box::new(f), Box::new(a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_escape::analyze_source;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    const SRC: &str = "letrec sum l = if (null l) then 0 else car l + sum (cdr l);
                              create_list n = if n = 0 then nil
                                              else cons n (create_list (n - 1))
                       in sum (create_list 10)";

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    #[test]
    fn producer_variant_marks_spine() {
        let (mut ir, _analysis) = prep(SRC);
        let name = block_producer_variant(&mut ir, Symbol::intern("create_list")).unwrap();
        assert_eq!(name.as_str(), "create_list_blk");
        let text = ir.func(name).unwrap().body.to_string();
        assert!(text.contains("cons[block] n"), "{text}");
        assert!(
            text.contains("create_list_blk (- n 1)"),
            "recursion redirected: {text}"
        );
    }

    #[test]
    fn call_site_wrapped_in_block_region() {
        let (mut ir, analysis) = prep(SRC);
        let n = block_call(
            &mut ir,
            &analysis,
            Symbol::intern("sum"),
            Symbol::intern("create_list"),
        )
        .unwrap();
        assert_eq!(n, 1);
        let text = ir.body.to_string();
        assert!(
            text.contains("(region[block] ((sum (create_list_blk 10))))")
                || text.contains("(region[block] (sum (create_list_blk 10)))"),
            "{text}"
        );
    }

    #[test]
    fn escaping_consumer_rejects_rewrite() {
        let src = "letrec idl l = cons (car l) (cdr l);
                          create_list n = if n = 0 then nil
                                          else cons n (create_list (n - 1))
                   in idl (create_list 5)";
        let (mut ir, analysis) = prep(src);
        let err = block_call(
            &mut ir,
            &analysis,
            Symbol::intern("idl"),
            Symbol::intern("create_list"),
        )
        .unwrap_err();
        assert!(matches!(err, OptError::NoMatchingCall { .. }), "{err:?}");
    }

    #[test]
    fn unknown_functions_rejected() {
        let (mut ir, analysis) = prep(SRC);
        assert!(matches!(
            block_call(
                &mut ir,
                &analysis,
                Symbol::intern("nope"),
                Symbol::intern("create_list")
            ),
            Err(OptError::UnknownFunction { .. })
        ));
        assert!(matches!(
            block_call(
                &mut ir,
                &analysis,
                Symbol::intern("sum"),
                Symbol::intern("nope")
            ),
            Err(OptError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn producer_variant_is_idempotent() {
        let (mut ir, _a) = prep(SRC);
        let a = block_producer_variant(&mut ir, Symbol::intern("create_list")).unwrap();
        let n = ir.funcs.len();
        let b = block_producer_variant(&mut ir, Symbol::intern("create_list")).unwrap();
        assert_eq!(a, b);
        assert_eq!(n, ir.funcs.len());
    }
}
