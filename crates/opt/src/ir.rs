//! The storage-annotated intermediate representation.
//!
//! The escape analysis itself runs on the AST; its *optimizations* need a
//! lower-level program form in which allocation is explicit:
//!
//! - every saturated `cons` becomes a [`IrExpr::Cons`] node carrying an
//!   [`AllocMode`] (heap / stack region / block);
//! - the destructive [`IrExpr::Dcons`] (`DCONS x e1 e2`, paper §6)
//!   overwrites an existing cell instead of allocating;
//! - [`IrExpr::Region`] introduces a dynamic extent whose cells are freed
//!   wholesale when it exits — the "activation record" of stack
//!   allocation and the "local heap" block of block reclamation
//!   (paper §A.3.1, §A.3.3).
//!
//! Lowering from the AST saturates primitive applications (a bare `car`
//! passed as a function value stays a [`IrExpr::Const`] of the primitive)
//! and flattens the top-level `letrec` into named functions.

use nml_syntax::ast::{Const, Expr, ExprKind, Prim, Program};
use nml_syntax::Symbol;
use nml_types::TypeInfo;
use std::fmt;

/// Where a `cons` cell is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocMode {
    /// Ordinary heap allocation, reclaimed by the garbage collector.
    #[default]
    Heap,
    /// Allocation into the innermost active stack [`Region`](IrExpr::Region):
    /// freed, without GC, when the region exits.
    Stack,
    /// Allocation into the innermost active block region: freed to the
    /// free list in one splice when the region exits.
    Block,
    /// Heap allocation at a site the analysis proves escaping: the cell
    /// will outlive its creation scope, so the generational runtime
    /// allocates it directly in the old space (pretenuring) instead of
    /// wasting a nursery slot and a promotion copy on it. Semantically
    /// identical to [`AllocMode::Heap`]; a pure placement hint.
    Pretenured,
    /// A site the escape lattice proves no-escape *and* unaliased
    /// ([`crate::sroa`]): the bytecode compiler may scalarize the cell
    /// into frame slots and elide the allocation entirely. The
    /// tree-walker and the heap treat it exactly like [`AllocMode::Heap`]
    /// (it is the differential oracle for the elision), and the bytecode
    /// compiler independently re-verifies slot-level eligibility before
    /// scalarizing — an `Elided` mark alone never changes semantics.
    Elided,
}

impl fmt::Display for AllocMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocMode::Heap => f.write_str("heap"),
            AllocMode::Stack => f.write_str("stack"),
            AllocMode::Block => f.write_str("block"),
            AllocMode::Pretenured => f.write_str("pretenure"),
            AllocMode::Elided => f.write_str("elided"),
        }
    }
}

/// The kind of a [`IrExpr::Region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A stack region: models allocation in an activation record.
    Stack,
    /// A block region: models the contiguous "local heap" block.
    Block,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Stack => f.write_str("stack"),
            RegionKind::Block => f.write_str("block"),
        }
    }
}

/// A unique allocation/expression site within one [`IrProgram`], used by
/// the runtime to attribute statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// An IR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExpr {
    /// A constant (integers, booleans, `nil`, or an *unsaturated*
    /// primitive used as a first-class function).
    Const(Const),
    /// Variable reference.
    Var(Symbol),
    /// General application (callee is a computed function value).
    App(Box<IrExpr>, Box<IrExpr>),
    /// `lambda(x). e`
    Lambda {
        /// Parameter.
        param: Symbol,
        /// Body.
        body: Box<IrExpr>,
        /// Site id (for closure-allocation stats).
        site: SiteId,
    },
    /// `if c then t else f`
    If(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>),
    /// Nested `letrec`.
    Letrec(Vec<(Symbol, IrExpr)>, Box<IrExpr>),
    /// Saturated `cons` with an allocation mode.
    Cons {
        /// Where the cell is allocated.
        alloc: AllocMode,
        /// Head expression.
        head: Box<IrExpr>,
        /// Tail expression.
        tail: Box<IrExpr>,
        /// Allocation site.
        site: SiteId,
    },
    /// `DCONS x e1 e2`: evaluate `e1`, `e2`, then overwrite the cell bound
    /// to `x` in place and return it (paper §6). `x` must be bound to a
    /// non-nil list cell.
    Dcons {
        /// Variable bound to the cell being reused.
        reused: Symbol,
        /// New head.
        head: Box<IrExpr>,
        /// New tail.
        tail: Box<IrExpr>,
        /// Site id (for reuse stats).
        site: SiteId,
    },
    /// A saturated unary primitive (`car`, `cdr`, `null`).
    Prim1(Prim, Box<IrExpr>),
    /// A saturated binary primitive (arithmetic / comparison; `cons`
    /// lowers to [`IrExpr::Cons`] instead).
    Prim2(Prim, Box<IrExpr>, Box<IrExpr>),
    /// Dynamic extent for stack/block reclamation: cells allocated into
    /// the region while `inner` evaluates are freed when it finishes.
    Region {
        /// Stack or block semantics (identical lifetimes, different
        /// bookkeeping costs — see `nml-runtime`).
        kind: RegionKind,
        /// The wrapped expression (typically a call).
        inner: Box<IrExpr>,
        /// Site id.
        site: SiteId,
    },
}

/// A top-level function (a flattened `letrec` binding).
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunc {
    /// Name.
    pub name: Symbol,
    /// Curried parameters, outermost first. Empty for value bindings.
    pub params: Vec<Symbol>,
    /// The body (after stripping `params` lambdas).
    pub body: IrExpr,
}

impl IrFunc {
    /// Whether the binding is a function (has parameters).
    pub fn is_function(&self) -> bool {
        !self.params.is_empty()
    }
}

/// A whole lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Top-level bindings in their original order (plus any optimizer-
    /// generated variants appended).
    pub funcs: Vec<IrFunc>,
    /// The program body.
    pub body: IrExpr,
    /// One past the largest [`SiteId`] in use.
    pub next_site: u32,
}

impl IrProgram {
    /// Looks up a function by name.
    pub fn func(&self, name: Symbol) -> Option<&IrFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Allocates a fresh site id.
    pub fn fresh_site(&mut self) -> SiteId {
        let s = SiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// The top-level function whose body contains `site` (`None` for
    /// sites in the program body). Used to attribute allocation profiles.
    pub fn site_owner(&self, site: SiteId) -> Option<Symbol> {
        fn contains(e: &IrExpr, site: SiteId) -> bool {
            let mut found = false;
            walk_ir(e, &mut |n| {
                let s = match n {
                    IrExpr::Cons { site, .. }
                    | IrExpr::Dcons { site, .. }
                    | IrExpr::Lambda { site, .. }
                    | IrExpr::Region { site, .. } => Some(*site),
                    _ => None,
                };
                if s == Some(site) {
                    found = true;
                }
            });
            found
        }
        self.funcs
            .iter()
            .find(|f| contains(&f.body, site))
            .map(|f| f.name)
    }
}

/// Storage directives computed on the AST (by node id) and honoured by
/// lowering. Produced by the local-escape-test-driven planner
/// ([`crate::stack::plan_stack_allocation`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LowerPlan {
    /// Node ids of `cons` applications to allocate on the stack.
    pub stack_cons: std::collections::BTreeSet<nml_syntax::NodeId>,
    /// Node ids of call expressions to wrap in a stack region.
    pub stack_calls: std::collections::BTreeSet<nml_syntax::NodeId>,
}

impl LowerPlan {
    /// An empty plan (all-heap allocation).
    pub fn none() -> Self {
        LowerPlan::default()
    }

    /// Whether the plan directs anything.
    pub fn is_empty(&self) -> bool {
        self.stack_cons.is_empty() && self.stack_calls.is_empty()
    }
}

/// Lowers a parsed and typed program into IR with all-heap allocation.
///
/// `_info` is currently only a witness that the program type-checked
/// (ill-typed programs have no meaningful IR); annotations that depend on
/// types are added by the optimizer passes.
pub fn lower_program(program: &Program, _info: &TypeInfo) -> IrProgram {
    lower_program_with(program, _info, &LowerPlan::none())
}

/// Lowers a program, honouring the storage directives in `plan`.
pub fn lower_program_with(program: &Program, _info: &TypeInfo, plan: &LowerPlan) -> IrProgram {
    let mut next_site = 0u32;
    let mut funcs = Vec::with_capacity(program.bindings.len());
    for b in &program.bindings {
        let mut params = Vec::new();
        let mut cur = &b.expr;
        while let ExprKind::Lambda(p, inner) = &cur.kind {
            params.push(*p);
            cur = inner;
        }
        let body = lower_expr(cur, &mut next_site, plan);
        funcs.push(IrFunc {
            name: b.name,
            params,
            body,
        });
    }
    let body = lower_expr(&program.body, &mut next_site, plan);
    IrProgram {
        funcs,
        body,
        next_site,
    }
}

fn fresh(next: &mut u32) -> SiteId {
    let s = SiteId(*next);
    *next += 1;
    s
}

fn lower_expr(e: &Expr, next: &mut u32, plan: &LowerPlan) -> IrExpr {
    let lowered = match &e.kind {
        ExprKind::Const(c) => IrExpr::Const(*c),
        ExprKind::Var(x) => IrExpr::Var(*x),
        ExprKind::Lambda(p, body) => IrExpr::Lambda {
            param: *p,
            body: Box::new(lower_expr(body, next, plan)),
            site: fresh(next),
        },
        ExprKind::If(c, t, f) => IrExpr::If(
            Box::new(lower_expr(c, next, plan)),
            Box::new(lower_expr(t, next, plan)),
            Box::new(lower_expr(f, next, plan)),
        ),
        ExprKind::Letrec(bs, body) => IrExpr::Letrec(
            bs.iter()
                .map(|b| (b.name, lower_expr(&b.expr, next, plan)))
                .collect(),
            Box::new(lower_expr(body, next, plan)),
        ),
        ExprKind::Annot(inner, _) => lower_expr(inner, next, plan),
        ExprKind::App(..) => {
            let (head, args) = e.uncurry_app();
            if let ExprKind::Const(Const::Prim(p)) = head.kind {
                if args.len() == p.arity() {
                    let alloc = if p == Prim::Cons && plan.stack_cons.contains(&e.id) {
                        AllocMode::Stack
                    } else {
                        AllocMode::Heap
                    };
                    return wrap_region(e, lower_prim(p, alloc, &args, next, plan), next, plan);
                }
            }
            let mut cur = lower_expr(head, next, plan);
            for a in &args {
                cur = IrExpr::App(Box::new(cur), Box::new(lower_expr(a, next, plan)));
            }
            cur
        }
    };
    wrap_region(e, lowered, next, plan)
}

/// Wraps `lowered` in a stack region when the plan marks this call node.
fn wrap_region(e: &Expr, lowered: IrExpr, next: &mut u32, plan: &LowerPlan) -> IrExpr {
    if plan.stack_calls.contains(&e.id) && !matches!(lowered, IrExpr::Region { .. }) {
        IrExpr::Region {
            kind: RegionKind::Stack,
            inner: Box::new(lowered),
            site: fresh(next),
        }
    } else {
        lowered
    }
}

fn lower_prim(
    p: Prim,
    alloc: AllocMode,
    args: &[&Expr],
    next: &mut u32,
    plan: &LowerPlan,
) -> IrExpr {
    match p {
        Prim::Cons => IrExpr::Cons {
            alloc,
            head: Box::new(lower_expr(args[0], next, plan)),
            tail: Box::new(lower_expr(args[1], next, plan)),
            site: fresh(next),
        },
        Prim::Car | Prim::Cdr | Prim::Null | Prim::Fst | Prim::Snd => {
            IrExpr::Prim1(p, Box::new(lower_expr(args[0], next, plan)))
        }
        _ => IrExpr::Prim2(
            p,
            Box::new(lower_expr(args[0], next, plan)),
            Box::new(lower_expr(args[1], next, plan)),
        ),
    }
}

// ---- pretty-printing (for tests, goldens, and the driver) ---------------

impl fmt::Display for IrProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.funcs {
            write!(f, "{}", func.name)?;
            for p in &func.params {
                write!(f, " {p}")?;
            }
            writeln!(f, " =")?;
            writeln!(f, "  {}", func.body)?;
        }
        writeln!(f, "main = {}", self.body)
    }
}

impl fmt::Display for IrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrExpr::Const(c) => write!(f, "{c}"),
            IrExpr::Var(x) => write!(f, "{x}"),
            IrExpr::App(a, b) => write!(f, "({a} {b})"),
            IrExpr::Lambda { param, body, .. } => write!(f, "(lambda({param}). {body})"),
            IrExpr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            IrExpr::Letrec(bs, body) => {
                f.write_str("(letrec ")?;
                for (i, (n, e)) in bs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{n} = {e}")?;
                }
                write!(f, " in {body})")
            }
            IrExpr::Cons {
                alloc, head, tail, ..
            } => match alloc {
                AllocMode::Heap => write!(f, "(cons {head} {tail})"),
                other => write!(f, "(cons[{other}] {head} {tail})"),
            },
            IrExpr::Dcons {
                reused, head, tail, ..
            } => write!(f, "(DCONS {reused} {head} {tail})"),
            IrExpr::Prim1(p, a) => write!(f, "({p} {a})"),
            IrExpr::Prim2(p, a, b) => write!(f, "({p} {a} {b})"),
            IrExpr::Region { kind, inner, .. } => write!(f, "(region[{kind}] {inner})"),
        }
    }
}

/// Walks every sub-expression of `e`, pre-order.
pub fn walk_ir<'a>(e: &'a IrExpr, f: &mut impl FnMut(&'a IrExpr)) {
    f(e);
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) => {}
        IrExpr::App(a, b) => {
            walk_ir(a, f);
            walk_ir(b, f);
        }
        IrExpr::Lambda { body, .. } => walk_ir(body, f),
        IrExpr::If(c, t, e2) => {
            walk_ir(c, f);
            walk_ir(t, f);
            walk_ir(e2, f);
        }
        IrExpr::Letrec(bs, body) => {
            for (_, b) in bs {
                walk_ir(b, f);
            }
            walk_ir(body, f);
        }
        IrExpr::Cons { head, tail, .. } | IrExpr::Dcons { head, tail, .. } => {
            walk_ir(head, f);
            walk_ir(tail, f);
        }
        IrExpr::Prim1(_, a) => walk_ir(a, f),
        IrExpr::Prim2(_, a, b) => {
            walk_ir(a, f);
            walk_ir(b, f);
        }
        IrExpr::Region { inner, .. } => walk_ir(inner, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn lower(src: &str) -> IrProgram {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        lower_program(&p, &info)
    }

    #[test]
    fn saturated_cons_becomes_cons_node() {
        let ir = lower("cons 1 nil");
        assert!(matches!(
            ir.body,
            IrExpr::Cons {
                alloc: AllocMode::Heap,
                ..
            }
        ));
    }

    #[test]
    fn unsaturated_prim_stays_const() {
        let ir = lower("letrec app2 f x = f x in app2 (cons 1) nil");
        // `cons 1` is a partial application: App(Const(cons), 1).
        let mut found_partial = false;
        walk_ir(&ir.body, &mut |e| {
            if let IrExpr::App(head, _) = e {
                if matches!(**head, IrExpr::Const(Const::Prim(Prim::Cons))) {
                    found_partial = true;
                }
            }
        });
        assert!(found_partial, "partial cons kept generic:\n{ir}");
    }

    #[test]
    fn arithmetic_saturates_to_prim2() {
        let ir = lower("1 + 2");
        assert!(matches!(ir.body, IrExpr::Prim2(Prim::Add, _, _)));
    }

    #[test]
    fn car_saturates_to_prim1() {
        let ir = lower("car [1]");
        assert!(matches!(ir.body, IrExpr::Prim1(Prim::Car, _)));
    }

    #[test]
    fn functions_flatten_params() {
        let ir = lower("letrec add x y = x + y in add 1 2");
        let add = ir.func(Symbol::intern("add")).expect("add exists");
        assert_eq!(add.params.len(), 2);
        assert!(add.is_function());
        assert!(matches!(add.body, IrExpr::Prim2(Prim::Add, _, _)));
    }

    #[test]
    fn value_bindings_have_no_params() {
        let ir = lower("letrec k = 42 in k");
        let k = ir.func(Symbol::intern("k")).expect("k exists");
        assert!(!k.is_function());
    }

    #[test]
    fn sites_are_unique() {
        let ir = lower("cons 1 (cons 2 nil)");
        let mut sites = Vec::new();
        walk_ir(&ir.body, &mut |e| {
            if let IrExpr::Cons { site, .. } = e {
                sites.push(*site);
            }
        });
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0], sites[1]);
    }

    #[test]
    fn display_roundtrips_shapes() {
        let ir = lower("letrec f x = if (null x) then nil else cons (car x) (f (cdr x)) in f [1]");
        let text = ir.to_string();
        assert!(text.contains("(cons (car x) (f (cdr x)))"), "{text}");
        assert!(text.contains("(if (null x) then nil else"), "{text}");
    }
}
