//! Site quarantine: persistently disabling the optimization at sites
//! whose escape claims checked execution has disproved.
//!
//! When a `--checked` run hits a [`SoundnessViolation`] the pipeline
//! records the offending [`SiteId`] here and re-plans. Quarantined sites
//! fall back to the unoptimized discipline — plain heap `CONS`, no
//! region, no `DCONS` — exactly the retreat the fault-injection layer
//! already uses, so a wrong claim costs one optimization at one site
//! instead of the whole plan.
//!
//! The set persists across runs in a tiny line-oriented text file
//! (`nml-quarantine v1`), written atomically, so a site disproved once
//! stays disabled on the next compile.
//!
//! This module also hosts the *sabotage* plan: the deliberate injection
//! of wrong stack claims that the differential harness and
//! `--fault-unsound-stack` use to prove the sentinel actually fires.
//!
//! [`SoundnessViolation`]: ../nml_runtime/checked/struct.SoundnessViolation.html

use crate::ir::{walk_ir, AllocMode, IrExpr, IrProgram, RegionKind, SiteId};
use nml_syntax::Const;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// File-format header for persisted quarantine sets.
const HEADER: &str = "nml-quarantine v1";

/// The set of sites whose optimizations are disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineSet {
    sites: BTreeSet<SiteId>,
}

impl QuarantineSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a site; returns `true` if it was newly quarantined.
    pub fn insert(&mut self, site: SiteId) -> bool {
        self.sites.insert(site)
    }

    /// Whether `site` is quarantined.
    pub fn contains(&self, site: SiteId) -> bool {
        self.sites.contains(&site)
    }

    /// Quarantined sites in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.sites.iter().copied()
    }

    /// Number of quarantined sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site is quarantined.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Loads a persisted set. Like the summary cache, corruption is never
    /// fatal: unparsable lines are dropped and reported in the warning
    /// string, and a missing file is an empty set.
    pub fn load(path: &Path) -> (Self, Option<String>) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Self::new(), None);
            }
            Err(e) => return (Self::new(), Some(format!("unreadable: {e}"))),
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return (
                Self::new(),
                Some("unrecognized header; starting empty".into()),
            );
        }
        let mut set = Self::new();
        let mut dropped = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match line
                .strip_prefix("site ")
                .and_then(|n| n.parse::<u32>().ok())
            {
                Some(n) => {
                    set.insert(SiteId(n));
                }
                None => dropped += 1,
            }
        }
        let warn = (dropped > 0).then(|| format!("dropped {dropped} unparsable line(s)"));
        (set, warn)
    }

    /// Persists the set atomically (write to a sibling temp file, then
    /// rename over `path`).
    ///
    /// # Errors
    ///
    /// A human-readable message on any I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut out = String::from(HEADER);
        out.push('\n');
        for s in &self.sites {
            out.push_str(&format!("site {}\n", s.0));
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &out).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("rename to {}: {e}", path.display())
        })
    }
}

impl fmt::Display for QuarantineSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.sites {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{}", s.0)?;
        }
        Ok(())
    }
}

/// Disables the optimization at every quarantined site in `ir`:
/// stack/block `Cons` falls back to the heap, `DCONS` becomes a plain
/// heap `Cons` (same site, so the fallback stays attributable), and
/// quarantined `Region` wrappers are unwrapped. Returns the number of
/// rewrites applied.
pub fn apply_quarantine(ir: &mut IrProgram, set: &QuarantineSet) -> usize {
    if set.is_empty() {
        return 0;
    }
    let mut n = 0;
    for f in &mut ir.funcs {
        rewrite(&mut f.body, set, &mut n);
    }
    rewrite(&mut ir.body, set, &mut n);
    n
}

fn rewrite(e: &mut IrExpr, set: &QuarantineSet, n: &mut usize) {
    // Replace the node itself first (repeatedly: unwrapping a region can
    // expose another quarantined node), then recurse into the children of
    // whatever it became.
    loop {
        match e {
            IrExpr::Region { site, inner, .. } if set.contains(*site) => {
                let inner = std::mem::replace(inner.as_mut(), IrExpr::Const(Const::Nil));
                *e = inner;
                *n += 1;
            }
            IrExpr::Dcons {
                head, tail, site, ..
            } if set.contains(*site) => {
                let site = *site;
                let head = std::mem::replace(head.as_mut(), IrExpr::Const(Const::Nil));
                let tail = std::mem::replace(tail.as_mut(), IrExpr::Const(Const::Nil));
                *e = IrExpr::Cons {
                    alloc: AllocMode::Heap,
                    head: Box::new(head),
                    tail: Box::new(tail),
                    site,
                };
                *n += 1;
            }
            _ => break,
        }
    }
    if let IrExpr::Cons { alloc, site, .. } = e {
        if *alloc != AllocMode::Heap && set.contains(*site) {
            *alloc = AllocMode::Heap;
            *n += 1;
        }
    }
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) => {}
        IrExpr::App(a, b) => {
            rewrite(a, set, n);
            rewrite(b, set, n);
        }
        IrExpr::Lambda { body, .. } => rewrite(body, set, n),
        IrExpr::If(c, t, f) => {
            rewrite(c, set, n);
            rewrite(t, set, n);
            rewrite(f, set, n);
        }
        IrExpr::Letrec(binds, body) => {
            for (_, b) in binds {
                rewrite(b, set, n);
            }
            rewrite(body, set, n);
        }
        IrExpr::Cons { head, tail, .. } | IrExpr::Dcons { head, tail, .. } => {
            rewrite(head, set, n);
            rewrite(tail, set, n);
        }
        IrExpr::Prim1(_, a) => rewrite(a, set, n),
        IrExpr::Prim2(_, a, b) => {
            rewrite(a, set, n);
            rewrite(b, set, n);
        }
        IrExpr::Region { inner, .. } => rewrite(inner, set, n),
    }
}

/// A deliberate *unsound* claim injection for exercising the checked-mode
/// sentinel: every listed `Cons` site is forced to stack allocation
/// (regardless of what the analysis licensed) and the program body is
/// wrapped in one stack region so the forced cells actually die at its
/// exit. If the program's result reaches any such cell, a checked run
/// must report a violation at exactly that site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SabotagePlan {
    /// The `Cons` sites to force onto the stack.
    pub stack_sites: BTreeSet<SiteId>,
    /// The `Cons` sites to force to [`AllocMode::Elided`] regardless of
    /// what the lattice proved. Unlike a stack sabotage, a forced elide
    /// mark cannot corrupt a run: the bytecode compiler re-verifies
    /// slot-level eligibility and an escaping or aliased binding always
    /// fails that check, so the site quietly allocates on the heap. The
    /// sabotage exists to *prove* that refusal (checked mode must stay
    /// silent and results must not change).
    pub elide_sites: BTreeSet<SiteId>,
}

impl SabotagePlan {
    /// A plan forcing the given sites onto the stack.
    pub fn stack(sites: impl IntoIterator<Item = SiteId>) -> Self {
        SabotagePlan {
            stack_sites: sites.into_iter().collect(),
            elide_sites: BTreeSet::new(),
        }
    }

    /// A plan forcing elide marks onto the given sites.
    pub fn elide(sites: impl IntoIterator<Item = SiteId>) -> Self {
        SabotagePlan {
            stack_sites: BTreeSet::new(),
            elide_sites: sites.into_iter().collect(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.stack_sites.is_empty() && self.elide_sites.is_empty()
    }
}

/// Applies `plan` to `ir`; returns the number of sites actually forced.
/// Skips sites already on the stack (no claim would change) and wraps the
/// body in a fresh stack region only when at least one site was forced.
pub fn sabotage_stack(ir: &mut IrProgram, plan: &SabotagePlan) -> usize {
    if plan.is_empty() {
        return 0;
    }
    let mut forced = 0;
    let mut force = |e: &mut IrExpr| {
        if let IrExpr::Cons { alloc, site, .. } = e {
            if plan.stack_sites.contains(site) && *alloc != AllocMode::Stack {
                *alloc = AllocMode::Stack;
                forced += 1;
            }
        }
    };
    for f in &mut ir.funcs {
        walk_ir_mut(&mut f.body, &mut force);
    }
    walk_ir_mut(&mut ir.body, &mut force);
    if forced > 0 {
        let site = ir.fresh_site();
        let body = std::mem::replace(&mut ir.body, IrExpr::Const(Const::Nil));
        ir.body = IrExpr::Region {
            kind: RegionKind::Stack,
            inner: Box::new(body),
            site,
        };
    }
    forced
}

/// Forces [`AllocMode::Elided`] onto every listed heap `Cons` site,
/// bypassing the lattice. Returns the number of sites forced. No region
/// wrapping is needed: a bogus elide mark is defused by the bytecode
/// compiler's independent slot-level check, so the sabotage is (and must
/// be proven) harmless by construction.
pub fn sabotage_elide(ir: &mut IrProgram, plan: &SabotagePlan) -> usize {
    if plan.elide_sites.is_empty() {
        return 0;
    }
    let mut forced = 0;
    let mut force = |e: &mut IrExpr| {
        if let IrExpr::Cons { alloc, site, .. } = e {
            if plan.elide_sites.contains(site) && *alloc == AllocMode::Heap {
                *alloc = AllocMode::Elided;
                forced += 1;
            }
        }
    };
    for f in &mut ir.funcs {
        walk_ir_mut(&mut f.body, &mut force);
    }
    walk_ir_mut(&mut ir.body, &mut force);
    forced
}

/// Pre-order mutable IR walk (the `&mut` twin of [`walk_ir`]).
pub fn walk_ir_mut(e: &mut IrExpr, f: &mut impl FnMut(&mut IrExpr)) {
    f(e);
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) => {}
        IrExpr::App(a, b) => {
            walk_ir_mut(a, f);
            walk_ir_mut(b, f);
        }
        IrExpr::Lambda { body, .. } => walk_ir_mut(body, f),
        IrExpr::If(c, t, e2) => {
            walk_ir_mut(c, f);
            walk_ir_mut(t, f);
            walk_ir_mut(e2, f);
        }
        IrExpr::Letrec(binds, body) => {
            for (_, b) in binds {
                walk_ir_mut(b, f);
            }
            walk_ir_mut(body, f);
        }
        IrExpr::Cons { head, tail, .. } | IrExpr::Dcons { head, tail, .. } => {
            walk_ir_mut(head, f);
            walk_ir_mut(tail, f);
        }
        IrExpr::Prim1(_, a) => walk_ir_mut(a, f),
        IrExpr::Prim2(_, a, b) => {
            walk_ir_mut(a, f);
            walk_ir_mut(b, f);
        }
        IrExpr::Region { inner, .. } => walk_ir_mut(inner, f),
    }
}

/// The literal `Cons` sites of a program's *body* (not its functions),
/// in site order — the natural sabotage targets, since body literals
/// that flow into the result are reachable after any wrapping region
/// pops.
pub fn body_cons_sites(ir: &IrProgram) -> Vec<SiteId> {
    let mut sites = Vec::new();
    walk_ir(&ir.body, &mut |e| {
        if let IrExpr::Cons { site, .. } = e {
            sites.push(*site);
        }
    });
    sites.sort_unstable();
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn lower(src: &str) -> IrProgram {
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        crate::ir::lower_program(&p, &info)
    }

    #[test]
    fn quarantine_set_roundtrips() {
        let dir = std::env::temp_dir().join(format!("nml-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.txt");
        let mut q = QuarantineSet::new();
        assert!(q.insert(SiteId(5)));
        assert!(q.insert(SiteId(2)));
        assert!(!q.insert(SiteId(5)), "duplicate insert reports false");
        q.save(&path).unwrap();
        let (back, warn) = QuarantineSet::load(&path);
        assert_eq!(back, q);
        assert!(warn.is_none());
        assert_eq!(back.to_string(), "2, 5");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_empty_without_warning() {
        let (q, warn) = QuarantineSet::load(Path::new("/nonexistent/nml-quarantine"));
        assert!(q.is_empty());
        assert!(warn.is_none());
    }

    #[test]
    fn corrupt_lines_drop_with_warning() {
        let dir = std::env::temp_dir().join(format!("nml-quar-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.txt");
        std::fs::write(&path, format!("{HEADER}\nsite 3\ngarbage\nsite x\n")).unwrap();
        let (q, warn) = QuarantineSet::load(&path);
        assert!(q.contains(SiteId(3)));
        assert_eq!(q.len(), 1);
        assert!(warn.unwrap().contains("2 unparsable"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sabotage_forces_sites_and_wraps_body() {
        let mut ir = lower("[1, 2]");
        let sites = body_cons_sites(&ir);
        assert_eq!(sites.len(), 2);
        let forced = sabotage_stack(&mut ir, &SabotagePlan::stack(sites.clone()));
        assert_eq!(forced, 2);
        assert!(matches!(
            ir.body,
            IrExpr::Region {
                kind: RegionKind::Stack,
                ..
            }
        ));
        let mut stacked = 0;
        walk_ir(&ir.body, &mut |e| {
            if let IrExpr::Cons {
                alloc: AllocMode::Stack,
                ..
            } = e
            {
                stacked += 1;
            }
        });
        assert_eq!(stacked, 2);
    }

    #[test]
    fn quarantine_undoes_sabotage() {
        let mut ir = lower("[1, 2]");
        let sites = body_cons_sites(&ir);
        sabotage_stack(&mut ir, &SabotagePlan::stack(sites.clone()));
        let mut q = QuarantineSet::new();
        for s in &sites {
            q.insert(*s);
        }
        let n = apply_quarantine(&mut ir, &q);
        assert_eq!(n, 2, "both cons sites fall back to the heap");
        walk_ir(&ir.body, &mut |e| {
            if let IrExpr::Cons { alloc, .. } = e {
                assert_eq!(*alloc, AllocMode::Heap);
            }
        });
    }

    #[test]
    fn quarantined_dcons_becomes_heap_cons() {
        // DCONS is IR-only (the §6 transformation emits it), so turn f's
        // cons into a reuse of its parameter by hand.
        let mut ir = lower("letrec f l = cons 1 nil in f [9]");
        let mut site = SiteId(u32::MAX);
        {
            let f = &mut ir.funcs[0];
            let param = f.params[0];
            walk_ir_mut(&mut f.body, &mut |e| {
                if let IrExpr::Cons {
                    head,
                    tail,
                    site: s,
                    ..
                } = e
                {
                    site = *s;
                    let head = std::mem::replace(head.as_mut(), IrExpr::Const(Const::Nil));
                    let tail = std::mem::replace(tail.as_mut(), IrExpr::Const(Const::Nil));
                    *e = IrExpr::Dcons {
                        reused: param,
                        head: Box::new(head),
                        tail: Box::new(tail),
                        site,
                    };
                }
            });
        }
        assert_ne!(site, SiteId(u32::MAX), "f has a cons site");
        let mut q = QuarantineSet::new();
        q.insert(site);
        let n = apply_quarantine(&mut ir, &q);
        assert_eq!(n, 1);
        let mut found = false;
        for f in &ir.funcs {
            walk_ir(&f.body, &mut |e| {
                if let IrExpr::Cons {
                    alloc: AllocMode::Heap,
                    site: s,
                    ..
                } = e
                {
                    if *s == site {
                        found = true;
                    }
                }
            });
        }
        assert!(found, "DCONS replaced by a heap Cons at the same site");
    }

    #[test]
    fn quarantined_region_unwraps() {
        let mut ir = lower("1 + 1");
        let site = ir.fresh_site();
        let body = std::mem::replace(&mut ir.body, IrExpr::Const(Const::Nil));
        ir.body = IrExpr::Region {
            kind: RegionKind::Stack,
            inner: Box::new(body),
            site,
        };
        let mut q = QuarantineSet::new();
        q.insert(site);
        assert_eq!(apply_quarantine(&mut ir, &q), 1);
        assert!(!matches!(ir.body, IrExpr::Region { .. }));
    }
}
