//! Stack allocation of non-escaping list arguments (paper §1, §A.3.1).
//!
//! When a call `f … [literal list] …` passes a freshly constructed list
//! whose top spines do not escape `f` (global escape test), those spines
//! can be allocated "in `f`'s activation record": the cells die when the
//! call returns. The IR models the activation record as a stack
//! [`Region`](crate::ir::IrExpr::Region) wrapped around the call; the
//! qualifying `cons` sites are annotated [`AllocMode::Stack`] and
//! allocate into the innermost region, which frees them — without any
//! garbage collection — when the call finishes.

use crate::ir::{AllocMode, IrExpr, IrProgram, LowerPlan, RegionKind};
use nml_escape::{local_escape, Analysis, Engine, EscapeError};
use nml_syntax::ast::{Const, Expr, ExprKind, Prim, Program};
use nml_syntax::visit::free_vars;
use nml_types::TypeInfo;

/// Computes a stack-allocation plan using the **local** escape test
/// (paper §4.2) at every closed, fully applied call to a top-level
/// function: argument spines the call provably retains are marked for
/// stack allocation, and the call for a region. This is strictly more
/// precise than the global-summary-based [`annotate_stack`] — the
/// introduction's `map pair [[1,2],[3,4],[5,6]]` stacks *both* spines
/// here, while the global test only licenses the top one.
///
/// Call sites with free identifiers beyond top-level bindings are left
/// to the global annotation: the local test would have to guess the
/// behaviour of unknown lexical values.
///
/// Run it on a monomorphized program for full per-call precision.
///
/// # Errors
///
/// [`EscapeError::FixpointDiverged`] if an engine run exceeds its pass
/// budget.
pub fn plan_stack_allocation(program: &Program, info: &TypeInfo) -> Result<LowerPlan, EscapeError> {
    let mut plan = LowerPlan::none();
    let top_names: std::collections::BTreeSet<nml_syntax::Symbol> =
        program.bindings.iter().map(|b| b.name).collect();
    let mut engine = Engine::new(program, info);

    // Candidate calls: every application root in the program.
    let mut candidates: Vec<&Expr> = Vec::new();
    for b in &program.bindings {
        collect_call_roots(&b.expr, &mut candidates);
    }
    collect_call_roots(&program.body, &mut candidates);

    for call in candidates {
        let (head, args) = call.uncurry_app();
        let ExprKind::Var(f) = head.kind else {
            continue;
        };
        if !top_names.contains(&f) {
            continue;
        }
        let Some(sig) = info.sig(f) else { continue };
        if sig.uncurry().0.len() != args.len() || args.is_empty() {
            continue;
        }
        // Soundness guard: the local test evaluates the argument
        // expressions under the top-level environment only; a free
        // lexical identifier would be under-approximated as ⊥.
        if !free_vars(call).iter().all(|v| top_names.contains(v)) {
            continue;
        }
        if !args.iter().any(|a| is_cons_chain(a)) {
            continue;
        }
        let local = local_escape(&mut engine, call)?;
        let mut any = false;
        for (j, arg) in args.iter().enumerate() {
            let retained = local.retained_spines(j);
            if retained >= 1 && is_cons_chain(arg) {
                any = true;
                mark_ast_spines(arg, 1, retained, &mut plan);
            }
        }
        if any {
            plan.stack_calls.insert(call.id);
        }
    }
    Ok(plan)
}

/// Collects application roots (pre-order; arguments of a call are
/// themselves scanned for nested calls).
fn collect_call_roots<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match &e.kind {
        ExprKind::App(..) => {
            out.push(e);
            let (head, args) = e.uncurry_app();
            collect_call_roots(head, out);
            for a in args {
                collect_call_roots(a, out);
            }
        }
        ExprKind::Const(_) | ExprKind::Var(_) => {}
        ExprKind::Lambda(_, b) => collect_call_roots(b, out),
        ExprKind::If(c, t, f) => {
            collect_call_roots(c, out);
            collect_call_roots(t, out);
            collect_call_roots(f, out);
        }
        ExprKind::Letrec(bs, b) => {
            for binding in bs {
                collect_call_roots(&binding.expr, out);
            }
            collect_call_roots(b, out);
        }
        ExprKind::Annot(inner, _) => collect_call_roots(inner, out),
    }
}

/// Is `e` a direct list construction (`cons h t` / list literal)?
fn is_cons_chain(e: &Expr) -> bool {
    let (head, args) = e.uncurry_app();
    matches!(head.kind, ExprKind::Const(Const::Prim(Prim::Cons))) && args.len() == 2
}

/// Marks the cons node ids of the top `max_level` spines of an AST-level
/// list construction.
fn mark_ast_spines(e: &Expr, level: u32, max_level: u32, plan: &mut LowerPlan) {
    if level > max_level || !is_cons_chain(e) {
        return;
    }
    plan.stack_cons.insert(e.id);
    let (_, args) = e.uncurry_app();
    mark_ast_spines(args[0], level + 1, max_level, plan);
    mark_ast_spines(args[1], level, max_level, plan);
}

/// Annotates every qualifying call site in the program (function bodies
/// and main body). Returns the number of calls wrapped in a stack region.
pub fn annotate_stack(ir: &mut IrProgram, analysis: &Analysis) -> usize {
    let mut count = 0;
    let mut next_site = ir.next_site;
    let funcs = std::mem::take(&mut ir.funcs);
    ir.funcs = funcs
        .into_iter()
        .map(|mut f| {
            f.body = annotate_expr(f.body, analysis, &mut next_site, &mut count);
            f
        })
        .collect();
    let body = std::mem::replace(&mut ir.body, IrExpr::Const(nml_syntax::Const::Nil));
    ir.body = annotate_expr(body, analysis, &mut next_site, &mut count);
    ir.next_site = next_site;
    count
}

/// Decomposes `e` as a full application `g a1 .. an` of a top-level
/// function, returning the callee and owned argument expressions.
fn split_call(e: IrExpr) -> (IrExpr, Vec<IrExpr>) {
    let mut args = Vec::new();
    let mut cur = e;
    while let IrExpr::App(f, a) = cur {
        args.push(*a);
        cur = *f;
    }
    args.reverse();
    (cur, args)
}

fn rebuild_call(head: IrExpr, args: Vec<IrExpr>) -> IrExpr {
    args.into_iter()
        .fold(head, |f, a| IrExpr::App(Box::new(f), Box::new(a)))
}

fn annotate_expr(e: IrExpr, analysis: &Analysis, next_site: &mut u32, count: &mut usize) -> IrExpr {
    // First recurse structurally, then try to match a call at this node.
    let e = map_children(e, &mut |c| annotate_expr(c, analysis, next_site, count));
    try_annotate_call(e, analysis, next_site, count)
}

fn try_annotate_call(
    e: IrExpr,
    analysis: &Analysis,
    next_site: &mut u32,
    count: &mut usize,
) -> IrExpr {
    if !matches!(e, IrExpr::App(..)) {
        return e;
    }
    let (head, args) = split_call(e);
    let name = match &head {
        IrExpr::Var(x) => *x,
        _ => return rebuild_call(head, args),
    };
    let Some(summary) = analysis.summaries.get(&name) else {
        return rebuild_call(head, args);
    };
    // Degraded summaries claim every spine escapes, so they would never
    // qualify below anyway; the explicit check keeps the pass safe even
    // if degradation ever becomes partial.
    if summary.arity() != args.len() || analysis.is_degraded_sym(name) {
        return rebuild_call(head, args);
    }
    let mut any = false;
    let args: Vec<IrExpr> = args
        .into_iter()
        .enumerate()
        .map(|(j, a)| {
            let retained = summary.param(j).retained_spines();
            if retained >= 1 && matches!(a, IrExpr::Cons { .. }) {
                any = true;
                mark_spines(a, 1, retained)
            } else {
                a
            }
        })
        .collect();
    let call = rebuild_call(head, args);
    if any {
        *count += 1;
        let site = crate::ir::SiteId(*next_site);
        *next_site += 1;
        IrExpr::Region {
            kind: RegionKind::Stack,
            inner: Box::new(call),
            site,
        }
    } else {
        call
    }
}

/// Marks the `cons` cells of the top `max_level` spines of a directly
/// constructed list as stack-allocated. `level` is the current spine
/// depth (1 = top spine).
fn mark_spines(e: IrExpr, level: u32, max_level: u32) -> IrExpr {
    if level > max_level {
        return e;
    }
    match e {
        IrExpr::Cons {
            head, tail, site, ..
        } => IrExpr::Cons {
            alloc: AllocMode::Stack,
            head: Box::new(mark_spines(*head, level + 1, max_level)),
            tail: Box::new(mark_spines(*tail, level, max_level)),
            site,
        },
        other => other,
    }
}

/// Applies `f` to each direct child expression.
pub(crate) fn map_children(e: IrExpr, f: &mut impl FnMut(IrExpr) -> IrExpr) -> IrExpr {
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) => e,
        IrExpr::App(a, b) => IrExpr::App(Box::new(f(*a)), Box::new(f(*b))),
        IrExpr::Lambda { param, body, site } => IrExpr::Lambda {
            param,
            body: Box::new(f(*body)),
            site,
        },
        IrExpr::If(c, t, el) => IrExpr::If(Box::new(f(*c)), Box::new(f(*t)), Box::new(f(*el))),
        IrExpr::Letrec(bs, body) => IrExpr::Letrec(
            bs.into_iter().map(|(n, e)| (n, f(e))).collect(),
            Box::new(f(*body)),
        ),
        IrExpr::Cons {
            alloc,
            head,
            tail,
            site,
        } => IrExpr::Cons {
            alloc,
            head: Box::new(f(*head)),
            tail: Box::new(f(*tail)),
            site,
        },
        IrExpr::Dcons {
            reused,
            head,
            tail,
            site,
        } => IrExpr::Dcons {
            reused,
            head: Box::new(f(*head)),
            tail: Box::new(f(*tail)),
            site,
        },
        IrExpr::Prim1(p, a) => IrExpr::Prim1(p, Box::new(f(*a))),
        IrExpr::Prim2(p, a, b) => IrExpr::Prim2(p, Box::new(f(*a)), Box::new(f(*b))),
        IrExpr::Region { kind, inner, site } => IrExpr::Region {
            kind,
            inner: Box::new(f(*inner)),
            site,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_escape::analyze_source;
    use nml_syntax::{parse_program, Symbol};
    use nml_types::infer_program;

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    #[test]
    fn sum_literal_argument_is_stack_allocated() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum [1, 2, 3]",
        );
        let n = annotate_stack(&mut ir, &analysis);
        assert_eq!(n, 1);
        let text = ir.body.to_string();
        assert!(text.starts_with("(region[stack]"), "{text}");
        assert!(text.contains("cons[stack] 1"), "{text}");
        assert!(text.contains("cons[stack] 3"), "{text}");
    }

    #[test]
    fn escaping_argument_is_not_stack_allocated() {
        let (mut ir, analysis) = prep("letrec idl l = l in idl [1, 2]");
        // idl at simplest instance has a non-list param... use a list-
        // returning identity instead:
        let n = annotate_stack(&mut ir, &analysis);
        // idl's param fully escapes, so nothing may be annotated.
        assert_eq!(ir.body.to_string().contains("stack"), n > 0);
    }

    #[test]
    fn tail_of_non_literal_stays_heap() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l);
                    make n = if n = 0 then nil else cons n (make (n - 1))
             in sum (cons 0 (make 3))",
        );
        let n = annotate_stack(&mut ir, &analysis);
        assert_eq!(n, 1);
        let text = ir.body.to_string();
        // The literal outer cons is stack; make's conses stay heap.
        assert!(text.contains("cons[stack] 0"), "{text}");
        let make = ir.func(Symbol::intern("make")).unwrap();
        assert!(!make.body.to_string().contains("stack"), "{}", make.body);
    }

    #[test]
    fn nested_spines_marked_to_retained_depth() {
        // len does not return any part of its argument: both spines of a
        // list-of-lists literal are stack-allocatable.
        let (mut ir, analysis) = prep(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l)
             in len [[1, 2], [3]]",
        );
        // len's simplest instance takes int list (1 spine)... use the
        // call: argument type is int list list but parameter is 'a list.
        let n = annotate_stack(&mut ir, &analysis);
        assert_eq!(n, 1);
        let text = ir.body.to_string();
        assert!(text.contains("cons[stack]"), "{text}");
    }

    #[test]
    fn local_plan_marks_both_spines_of_map_pair_literal() {
        // The paper's intro claim: the top TWO spines of the literal can
        // be stack allocated — only the local test sees this.
        use crate::ir::lower_program_with;
        use nml_types::infer_and_monomorphize;

        let src = "letrec
          pair x = cons (car x) (cons (car (cdr x)) nil);
          map f l = if (null l) then nil
                    else cons (f (car l)) (map f (cdr l))
        in map pair [[1,2],[3,4],[5,6]]";
        let parsed = parse_program(src).unwrap();
        let mono = infer_and_monomorphize(&parsed).unwrap();
        let plan = plan_stack_allocation(&mono.program, &mono.info).unwrap();
        // Top spine: 3 cons cells; second spine: 2 cells per element = 6.
        assert_eq!(plan.stack_cons.len(), 9, "both spines marked: {plan:?}");
        assert_eq!(plan.stack_calls.len(), 1);

        let ir = lower_program_with(&mono.program, &mono.info, &plan);
        let text = ir.body.to_string();
        assert!(text.starts_with("(region[stack]"), "{text}");
        assert!(
            text.contains("(cons[stack] 1"),
            "inner spine stacked: {text}"
        );
    }

    #[test]
    fn local_plan_skips_open_call_sites() {
        // Inside `go`, the argument mentions the lambda-bound x: the
        // local planner must not trust an under-approximated environment.
        let src = "letrec
          sum l = if (null l) then 0 else car l + sum (cdr l);
          go x = sum (cons x nil)
        in go 5";
        let parsed = parse_program(src).unwrap();
        let info = nml_types::infer_program(&parsed).unwrap();
        let plan = plan_stack_allocation(&parsed, &info).unwrap();
        assert!(plan.is_empty(), "open call site must be skipped: {plan:?}");
    }

    #[test]
    fn local_plan_handles_escaping_argument() {
        let src = "letrec idl l = cons (car l) (cdr l) in idl [1, 2]";
        let parsed = parse_program(src).unwrap();
        let info = nml_types::infer_program(&parsed).unwrap();
        let plan = plan_stack_allocation(&parsed, &info).unwrap();
        assert!(plan.stack_cons.is_empty(), "escaping spine not stacked");
    }

    #[test]
    fn calls_inside_functions_are_annotated() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l);
                    go x = sum [x, x]
             in go 5",
        );
        let n = annotate_stack(&mut ir, &analysis);
        assert_eq!(n, 1);
        let go = ir.func(Symbol::intern("go")).unwrap();
        assert!(go.body.to_string().contains("region[stack]"), "{}", go.body);
    }
}
