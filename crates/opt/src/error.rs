//! Optimizer errors.

use std::fmt;

/// Why a requested optimization could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The named top-level function does not exist (or is a value
    /// binding).
    UnknownFunction {
        /// The requested name.
        name: String,
    },
    /// No parameter of the function is a list whose top spine is retained
    /// (escape analysis found nothing to exploit).
    NoEligibleParam {
        /// The function.
        name: String,
    },
    /// No `cons` site satisfies the guardedness and last-use conditions
    /// for `DCONS`.
    NoEligibleSite {
        /// The function.
        name: String,
    },
    /// No call site matching the requested pattern was found.
    NoMatchingCall {
        /// Description of the pattern.
        pattern: String,
    },
    /// The function's escape summary is a worst-case degradation stand-in
    /// (analysis budget exhausted or fault quarantined), so no storage
    /// optimization may rely on it.
    DegradedSummary {
        /// The function.
        name: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::UnknownFunction { name } => {
                write!(f, "`{name}` is not a top-level function")
            }
            OptError::NoEligibleParam { name } => write!(
                f,
                "no parameter of `{name}` is a list with a non-escaping top spine"
            ),
            OptError::NoEligibleSite { name } => write!(
                f,
                "no cons in `{name}` satisfies the DCONS guardedness/last-use conditions"
            ),
            OptError::NoMatchingCall { pattern } => {
                write!(f, "no call site matches `{pattern}`")
            }
            OptError::DegradedSummary { name } => {
                write!(f, "`{name}`'s summary is a worst-case degradation")
            }
        }
    }
}

impl std::error::Error for OptError {}
