//! The in-place reuse transformation (paper §6, §A.3.2).
//!
//! Given global escape information saying that the top spine of a list
//! parameter does not escape, and last-use information saying the
//! parameter is dead after a `cons`, the transformation produces a new
//! version `f_r` of `f` in which that `cons` destructively reuses the
//! parameter's first spine cell:
//!
//! ```text
//! APPEND' x y = if (null x) then y
//!               else DCONS x (car x) (APPEND' (cdr x) y)
//! ```
//!
//! Applying `f_r` is only safe when the actual argument's top spine is
//! **unshared** — which the sharing analysis (Theorem 2) establishes for
//! results of functions like `PS`; that obligation stays with the caller,
//! exactly as in the paper.

use crate::error::OptError;
use crate::ir::{IrExpr, IrFunc, IrProgram, SiteId};
use crate::lastuse::{eligible_sites, select_sites};
use nml_escape::Analysis;
use nml_syntax::Symbol;
use std::collections::BTreeSet;

/// Options controlling [`reuse_variant`].
#[derive(Debug, Clone, Default)]
pub struct ReuseOptions {
    /// Which parameter (0-based) to reuse. `None` picks the first
    /// eligible list parameter.
    pub param: Option<usize>,
    /// Additional call rewrites to apply inside the new body, e.g.
    /// `append -> append_r` when building the paper's `PS'` whose
    /// intermediate lists are known unshared. The self-recursion rewrite
    /// `f -> f_r` is always applied.
    pub extra_rewrites: Vec<(Symbol, Symbol)>,
    /// If `false`, no `DCONS` is introduced — only the rewrites are
    /// applied (the paper's `PS'`, which merely calls `APPEND'`).
    pub dcons: bool,
}

impl ReuseOptions {
    /// The default full transformation: auto-select a parameter and
    /// introduce `DCONS`.
    pub fn dcons() -> Self {
        ReuseOptions {
            dcons: true,
            ..ReuseOptions::default()
        }
    }
}

/// The name used for the reuse variant of `name` (the paper writes
/// `APPEND'`; apostrophes are not identifiers, so this is `append_r`).
pub fn reuse_name(name: Symbol) -> Symbol {
    Symbol::intern(&format!("{name}_r"))
}

/// Creates the in-place-reuse variant of top-level function `name`,
/// appends it to `ir`, and returns its name.
///
/// # Errors
///
/// - [`OptError::UnknownFunction`] if `name` is not a top-level function;
/// - [`OptError::NoEligibleParam`] if no (selected) parameter is a list
///   whose top spine is retained per the analysis;
/// - [`OptError::NoEligibleSite`] if `dcons` was requested but no `cons`
///   satisfies the guardedness/last-use conditions;
/// - [`OptError::DegradedSummary`] if the function's summary is a
///   worst-case degradation stand-in.
pub fn reuse_variant(
    ir: &mut IrProgram,
    analysis: &Analysis,
    name: Symbol,
    options: &ReuseOptions,
) -> Result<Symbol, OptError> {
    if analysis.is_degraded_sym(name) {
        return Err(OptError::DegradedSummary {
            name: name.to_string(),
        });
    }
    let func = ir
        .func(name)
        .filter(|f| f.is_function())
        .ok_or_else(|| OptError::UnknownFunction {
            name: name.to_string(),
        })?
        .clone();
    let new_name = reuse_name(name);
    if ir.func(new_name).is_some() {
        return Ok(new_name); // already generated
    }

    let mut rewrites = vec![(name, new_name)];
    rewrites.extend(options.extra_rewrites.iter().copied());

    let mut body = func.body.clone();

    if options.dcons {
        let summary = analysis
            .summaries
            .get(&name)
            .ok_or_else(|| OptError::UnknownFunction {
                name: name.to_string(),
            })?;
        // Pick the reuse parameter.
        let param_idx = match options.param {
            Some(i) => {
                let p = summary.params.get(i).ok_or(OptError::NoEligibleParam {
                    name: name.to_string(),
                })?;
                if !(p.ty.is_list() && p.retained_spines() >= 1) {
                    return Err(OptError::NoEligibleParam {
                        name: name.to_string(),
                    });
                }
                i
            }
            None => summary
                .params
                .iter()
                .position(|p| p.ty.is_list() && p.retained_spines() >= 1)
                .ok_or(OptError::NoEligibleParam {
                    name: name.to_string(),
                })?,
        };
        let x = func.params[param_idx];
        let eligible = eligible_sites(&body, x);
        let chosen = select_sites(&body, &eligible);
        if chosen.is_empty() {
            return Err(OptError::NoEligibleSite {
                name: name.to_string(),
            });
        }
        body = to_dcons(body, x, &chosen);
    }

    body = rewrite_calls(body, &rewrites);

    ir.funcs.push(IrFunc {
        name: new_name,
        params: func.params,
        body,
    });
    Ok(new_name)
}

/// Replaces the chosen `cons` sites by `DCONS x …`.
fn to_dcons(e: IrExpr, x: Symbol, chosen: &BTreeSet<SiteId>) -> IrExpr {
    match e {
        IrExpr::Cons {
            alloc,
            head,
            tail,
            site,
        } => {
            let head = Box::new(to_dcons(*head, x, chosen));
            let tail = Box::new(to_dcons(*tail, x, chosen));
            if chosen.contains(&site) {
                IrExpr::Dcons {
                    reused: x,
                    head,
                    tail,
                    site,
                }
            } else {
                IrExpr::Cons {
                    alloc,
                    head,
                    tail,
                    site,
                }
            }
        }
        IrExpr::App(a, b) => IrExpr::App(
            Box::new(to_dcons(*a, x, chosen)),
            Box::new(to_dcons(*b, x, chosen)),
        ),
        IrExpr::Lambda { param, body, site } => IrExpr::Lambda {
            param,
            body: Box::new(to_dcons(*body, x, chosen)),
            site,
        },
        IrExpr::If(c, t, f) => IrExpr::If(
            Box::new(to_dcons(*c, x, chosen)),
            Box::new(to_dcons(*t, x, chosen)),
            Box::new(to_dcons(*f, x, chosen)),
        ),
        IrExpr::Letrec(bs, body) => IrExpr::Letrec(
            bs.into_iter()
                .map(|(n, e)| (n, to_dcons(e, x, chosen)))
                .collect(),
            Box::new(to_dcons(*body, x, chosen)),
        ),
        IrExpr::Dcons {
            reused,
            head,
            tail,
            site,
        } => IrExpr::Dcons {
            reused,
            head: Box::new(to_dcons(*head, x, chosen)),
            tail: Box::new(to_dcons(*tail, x, chosen)),
            site,
        },
        IrExpr::Prim1(p, a) => IrExpr::Prim1(p, Box::new(to_dcons(*a, x, chosen))),
        IrExpr::Prim2(p, a, b) => IrExpr::Prim2(
            p,
            Box::new(to_dcons(*a, x, chosen)),
            Box::new(to_dcons(*b, x, chosen)),
        ),
        IrExpr::Region { kind, inner, site } => IrExpr::Region {
            kind,
            inner: Box::new(to_dcons(*inner, x, chosen)),
            site,
        },
        other @ (IrExpr::Const(_) | IrExpr::Var(_)) => other,
    }
}

/// Renames free variable references per `rewrites` (used to redirect
/// recursive and helper calls into the optimized variants). Respects
/// shadowing by lambda parameters and `letrec` binders.
pub fn rewrite_calls(e: IrExpr, rewrites: &[(Symbol, Symbol)]) -> IrExpr {
    fn go(e: IrExpr, rw: &[(Symbol, Symbol)], bound: &mut Vec<Symbol>) -> IrExpr {
        match e {
            IrExpr::Var(x) => {
                if !bound.contains(&x) {
                    if let Some((_, to)) = rw.iter().find(|(from, _)| *from == x) {
                        return IrExpr::Var(*to);
                    }
                }
                IrExpr::Var(x)
            }
            IrExpr::Const(c) => IrExpr::Const(c),
            IrExpr::App(a, b) => {
                IrExpr::App(Box::new(go(*a, rw, bound)), Box::new(go(*b, rw, bound)))
            }
            IrExpr::Lambda { param, body, site } => {
                bound.push(param);
                let body = Box::new(go(*body, rw, bound));
                bound.pop();
                IrExpr::Lambda { param, body, site }
            }
            IrExpr::If(c, t, f) => IrExpr::If(
                Box::new(go(*c, rw, bound)),
                Box::new(go(*t, rw, bound)),
                Box::new(go(*f, rw, bound)),
            ),
            IrExpr::Letrec(bs, body) => {
                let names: Vec<Symbol> = bs.iter().map(|(n, _)| *n).collect();
                bound.extend(names.iter().copied());
                let bs = bs.into_iter().map(|(n, e)| (n, go(e, rw, bound))).collect();
                let body = Box::new(go(*body, rw, bound));
                bound.truncate(bound.len() - names.len());
                IrExpr::Letrec(bs, body)
            }
            IrExpr::Cons {
                alloc,
                head,
                tail,
                site,
            } => IrExpr::Cons {
                alloc,
                head: Box::new(go(*head, rw, bound)),
                tail: Box::new(go(*tail, rw, bound)),
                site,
            },
            IrExpr::Dcons {
                reused,
                head,
                tail,
                site,
            } => IrExpr::Dcons {
                reused,
                head: Box::new(go(*head, rw, bound)),
                tail: Box::new(go(*tail, rw, bound)),
                site,
            },
            IrExpr::Prim1(p, a) => IrExpr::Prim1(p, Box::new(go(*a, rw, bound))),
            IrExpr::Prim2(p, a, b) => {
                IrExpr::Prim2(p, Box::new(go(*a, rw, bound)), Box::new(go(*b, rw, bound)))
            }
            IrExpr::Region { kind, inner, site } => IrExpr::Region {
                kind,
                inner: Box::new(go(*inner, rw, bound)),
                site,
            },
        }
    }
    go(e, rewrites, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_escape::analyze_source;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    const APPEND_SRC: &str = "letrec append x y = if (null x) then y
                                                  else cons (car x) (append (cdr x) y)
                              in append [1] [2]";

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    #[test]
    fn append_prime_matches_paper() {
        let (mut ir, analysis) = prep(APPEND_SRC);
        let new = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("append"),
            &ReuseOptions::dcons(),
        )
        .expect("transform");
        assert_eq!(new.as_str(), "append_r");
        let f = ir.func(new).expect("variant exists");
        let text = f.body.to_string();
        // APPEND' x y = if (null x) then y else DCONS x (car x) (APPEND' (cdr x) y)
        assert!(
            text.contains("(DCONS x (car x) ((append_r (cdr x)) y))"),
            "{text}"
        );
    }

    #[test]
    fn rev_prime_matches_paper() {
        let src = "letrec append x y = if (null x) then y
                                       else cons (car x) (append (cdr x) y);
                          rev l = if (null l) then nil
                                  else append (rev (cdr l)) (cons (car l) nil)
                   in rev [1, 2]";
        let (mut ir, analysis) = prep(src);
        let append_r = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("append"),
            &ReuseOptions::dcons(),
        )
        .unwrap();
        let rev_r = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("rev"),
            &ReuseOptions {
                extra_rewrites: vec![(Symbol::intern("append"), append_r)],
                dcons: true,
                ..Default::default()
            },
        )
        .unwrap();
        let text = ir.func(rev_r).unwrap().body.to_string();
        // REV' l = if (null l) then nil
        //          else APPEND' (REV' (cdr l)) (DCONS l (car l) nil)
        assert!(
            text.contains("((append_r (rev_r (cdr l))) (DCONS l (car l) nil))"),
            "{text}"
        );
    }

    #[test]
    fn ps_prime_without_dcons_only_rewrites() {
        let src = "letrec append x y = if (null x) then y
                                       else cons (car x) (append (cdr x) y);
                          ps x = if (null x) then nil
                                 else append (ps (cdr x)) (cons (car x) nil)
                   in ps [2, 1]";
        let (mut ir, analysis) = prep(src);
        let append_r = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("append"),
            &ReuseOptions::dcons(),
        )
        .unwrap();
        let ps_r = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("ps"),
            &ReuseOptions {
                extra_rewrites: vec![(Symbol::intern("append"), append_r)],
                dcons: false,
                ..Default::default()
            },
        )
        .unwrap();
        let text = ir.func(ps_r).unwrap().body.to_string();
        assert!(text.contains("append_r"), "{text}");
        assert!(!text.contains("DCONS"), "PS' introduces no DCONS: {text}");
        assert!(
            text.contains("ps_r (cdr x)"),
            "recursion redirected: {text}"
        );
    }

    #[test]
    fn ineligible_parameter_is_rejected() {
        // sum's parameter does not escape but IS eligible (list, retained).
        // A non-list parameter must be rejected.
        let (mut ir, analysis) = prep("letrec inc x = x + 1 in inc 1");
        let err = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("inc"),
            &ReuseOptions::dcons(),
        )
        .unwrap_err();
        assert!(matches!(err, OptError::NoEligibleParam { .. }));
    }

    #[test]
    fn escaping_spine_is_rejected() {
        // id returns its whole argument: top spine escapes, no reuse.
        let (mut ir, analysis) = prep("letrec idl l = cons (car l) (cdr l) in idl [1]");
        let err = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("idl"),
            &ReuseOptions::dcons(),
        )
        .unwrap_err();
        // The whole spine of l escapes (cdr l is the result tail):
        // retained = 0.
        assert!(matches!(err, OptError::NoEligibleParam { .. }), "{err:?}");
    }

    #[test]
    fn unknown_function_is_rejected() {
        let (mut ir, analysis) = prep(APPEND_SRC);
        let err = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("nope"),
            &ReuseOptions::dcons(),
        )
        .unwrap_err();
        assert!(matches!(err, OptError::UnknownFunction { .. }));
    }

    #[test]
    fn idempotent_generation() {
        let (mut ir, analysis) = prep(APPEND_SRC);
        let a = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("append"),
            &ReuseOptions::dcons(),
        )
        .unwrap();
        let n = ir.funcs.len();
        let b = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("append"),
            &ReuseOptions::dcons(),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(ir.funcs.len(), n, "no duplicate variant");
    }
}
