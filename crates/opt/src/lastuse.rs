//! Last-use analysis for `DCONS` legality.
//!
//! The paper's in-place-reuse rule (§6): in `f x₁ … xₙ = … (cons e₁ e₂) …`,
//! if there is **no further use of `x_i` after the evaluation of
//! `(cons e₁ e₂)`**, the cons may become `DCONS x_i e₁ e₂`. Uses of `x_i`
//! *inside* `e₁`/`e₂` are fine — `DCONS` evaluates both before
//! overwriting.
//!
//! This module computes, for a fixed strict left-to-right evaluation
//! order, which `cons` sites have no subsequent use of the variable, and
//! additionally which sites are *guarded*: dominated by the `else` branch
//! of an `if (null x) …`, so the cell to overwrite certainly exists.
//!
//! If the variable occurs free under any `lambda`, no site is eligible:
//! the closure may run (and read the variable's cells) at any later time.

use crate::ir::{IrExpr, SiteId};
use nml_syntax::Symbol;
use std::collections::BTreeSet;

/// A `cons` site eligible for `DCONS` reuse of a given variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EligibleSite {
    /// The site id of the `cons`.
    pub site: SiteId,
}

/// Returns the `cons` sites of `body` that may be rewritten to
/// `DCONS x …`: guarded by a null test on `x` and with no use of `x`
/// after the cell is allocated.
pub fn eligible_sites(body: &IrExpr, x: Symbol) -> Vec<EligibleSite> {
    if occurs_under_lambda(body, x) {
        return Vec::new();
    }
    let mut out = Vec::new();
    collect(body, x, false, false, &mut out);
    out
}

/// Whether `x` occurs free under a `lambda` within `e` (which defers uses
/// to an unknown time).
pub fn occurs_under_lambda(e: &IrExpr, x: Symbol) -> bool {
    fn go(e: &IrExpr, x: Symbol, under: bool, bound: &mut Vec<Symbol>) -> bool {
        match e {
            IrExpr::Const(_) => false,
            IrExpr::Var(y) => under && *y == x && !bound.contains(&x),
            IrExpr::App(a, b) => go(a, x, under, bound) || go(b, x, under, bound),
            IrExpr::Lambda { param, body, .. } => {
                if *param == x {
                    return false;
                }
                bound.push(*param);
                let r = go(body, x, true, bound);
                bound.pop();
                r
            }
            IrExpr::If(c, t, f) => {
                go(c, x, under, bound) || go(t, x, under, bound) || go(f, x, under, bound)
            }
            IrExpr::Letrec(bs, b) => {
                if bs.iter().any(|(n, _)| *n == x) {
                    return false;
                }
                bs.iter().any(|(_, e)| go(e, x, under, bound)) || go(b, x, under, bound)
            }
            IrExpr::Cons { head, tail, .. } | IrExpr::Dcons { head, tail, .. } => {
                go(head, x, under, bound) || go(tail, x, under, bound)
            }
            IrExpr::Prim1(_, a) => go(a, x, under, bound),
            IrExpr::Prim2(_, a, b) => go(a, x, under, bound) || go(b, x, under, bound),
            IrExpr::Region { inner, .. } => go(inner, x, under, bound),
        }
    }
    go(e, x, false, &mut Vec::new())
}

/// Whether `x` is used anywhere in `e` (free occurrences only).
pub fn uses(e: &IrExpr, x: Symbol) -> bool {
    match e {
        IrExpr::Const(_) => false,
        IrExpr::Var(y) => *y == x,
        IrExpr::App(a, b) => uses(a, x) || uses(b, x),
        IrExpr::Lambda { param, body, .. } => *param != x && uses(body, x),
        IrExpr::If(c, t, f) => uses(c, x) || uses(t, x) || uses(f, x),
        IrExpr::Letrec(bs, b) => {
            !bs.iter().any(|(n, _)| *n == x) && (bs.iter().any(|(_, e)| uses(e, x)) || uses(b, x))
        }
        IrExpr::Cons { head, tail, .. } | IrExpr::Dcons { head, tail, .. } => {
            uses(head, x) || uses(tail, x)
        }
        IrExpr::Prim1(_, a) => uses(a, x),
        IrExpr::Prim2(_, a, b) => uses(a, x) || uses(b, x),
        IrExpr::Region { inner, .. } => uses(inner, x),
    }
}

/// Is `c` the expression `null x`?
fn is_null_test(c: &IrExpr, x: Symbol) -> bool {
    matches!(c, IrExpr::Prim1(nml_syntax::Prim::Null, a)
        if matches!(**a, IrExpr::Var(y) if y == x))
}

/// Walks `e` in evaluation order. `after` = "x is used by code that runs
/// after `e` finishes"; `guarded` = "x is known non-nil here".
fn collect(e: &IrExpr, x: Symbol, after: bool, guarded: bool, out: &mut Vec<EligibleSite>) {
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) => {}
        IrExpr::App(a, b) => {
            collect(a, x, after || uses(b, x), guarded, out);
            collect(b, x, after, guarded, out);
        }
        // Uses under lambda were excluded wholesale by `eligible_sites`;
        // conses inside a lambda body run at unknown times relative to
        // other uses, so they are never eligible.
        IrExpr::Lambda { .. } => {}
        IrExpr::If(c, t, f) => {
            collect(c, x, after || uses(t, x) || uses(f, x), guarded, out);
            let else_guarded = guarded || is_null_test(c, x);
            collect(t, x, after, guarded, out);
            collect(f, x, after, else_guarded, out);
        }
        IrExpr::Letrec(bs, body) => {
            if bs.iter().any(|(n, _)| *n == x) {
                return;
            }
            for (i, (_, be)) in bs.iter().enumerate() {
                let later = bs[i + 1..].iter().any(|(_, e2)| uses(e2, x)) || uses(body, x);
                collect(be, x, after || later, guarded, out);
            }
            collect(body, x, after, guarded, out);
        }
        IrExpr::Cons {
            head, tail, site, ..
        } => {
            // The allocation is the last event of this node: eligible iff
            // nothing after the node uses x and the cell is guaranteed to
            // exist.
            if !after && guarded {
                out.push(EligibleSite { site: *site });
            }
            collect(head, x, after || uses(tail, x), guarded, out);
            collect(tail, x, after, guarded, out);
        }
        IrExpr::Dcons { head, tail, .. } => {
            collect(head, x, after || uses(tail, x), guarded, out);
            collect(tail, x, after, guarded, out);
        }
        IrExpr::Prim1(_, a) => collect(a, x, after, guarded, out),
        IrExpr::Prim2(_, a, b) => {
            collect(a, x, after || uses(b, x), guarded, out);
            collect(b, x, after, guarded, out);
        }
        IrExpr::Region { inner, .. } => collect(inner, x, after, guarded, out),
    }
}

/// From the eligible sites, selects a non-conflicting subset: at most one
/// reuse may happen per execution of the function body (each execution
/// has only one first cell of `x` to overwrite). Sites in the two arms of
/// an `if` are mutually exclusive; everything else conflicts. The
/// *latest* site in evaluation order is preferred in each arm (it is the
/// one building the result).
pub fn select_sites(body: &IrExpr, eligible: &[EligibleSite]) -> BTreeSet<SiteId> {
    let set: BTreeSet<SiteId> = eligible.iter().map(|s| s.site).collect();
    let mut chosen = BTreeSet::new();
    choose(body, &set, &mut chosen);
    chosen
}

/// Returns true if a site was chosen within `e`.
fn choose(e: &IrExpr, eligible: &BTreeSet<SiteId>, chosen: &mut BTreeSet<SiteId>) -> bool {
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) | IrExpr::Lambda { .. } => false,
        // Branches are exclusive: choose in each independently.
        IrExpr::If(_c, t, f) => {
            let a = choose(t, eligible, chosen);
            let b = choose(f, eligible, chosen);
            a || b
        }
        IrExpr::Cons {
            head, tail, site, ..
        } => {
            // Prefer the cons itself (the last event); otherwise try the
            // children, latest first.
            if eligible.contains(site) {
                chosen.insert(*site);
                return true;
            }
            choose(tail, eligible, chosen) || choose(head, eligible, chosen)
        }
        IrExpr::Dcons { head, tail, .. } => {
            choose(tail, eligible, chosen) || choose(head, eligible, chosen)
        }
        IrExpr::App(a, b) => choose(b, eligible, chosen) || choose(a, eligible, chosen),
        IrExpr::Prim1(_, a) => choose(a, eligible, chosen),
        IrExpr::Prim2(_, a, b) => choose(b, eligible, chosen) || choose(a, eligible, chosen),
        IrExpr::Letrec(_, body) => choose(body, eligible, chosen),
        IrExpr::Region { inner, .. } => choose(inner, eligible, chosen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_syntax::{parse_program, Symbol};
    use nml_types::infer_program;

    fn body_of(src: &str, f: &str) -> IrExpr {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        ir.func(Symbol::intern(f)).expect("func").body.clone()
    }

    #[test]
    fn append_tail_cons_is_eligible() {
        let body = body_of(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
            "append",
        );
        let sites = eligible_sites(&body, Symbol::intern("x"));
        assert_eq!(sites.len(), 1, "exactly the tail cons");
        let chosen = select_sites(&body, &sites);
        assert_eq!(chosen.len(), 1);
        // y has no eligible sites: the only cons is not guarded by null y.
        assert!(eligible_sites(&body, Symbol::intern("y")).is_empty());
    }

    #[test]
    fn rev_argument_cons_is_eligible() {
        // The paper's REV: cons (car l) nil appears in argument position
        // but l is dead afterwards.
        let body = body_of(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y);
                    rev l = if (null l) then nil
                            else append (rev (cdr l)) (cons (car l) nil)
             in rev [1]",
            "rev",
        );
        let sites = eligible_sites(&body, Symbol::intern("l"));
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn use_after_cons_blocks_eligibility() {
        // l is used (car l) *after* the cons (argument order), so the cons
        // may not overwrite l's cell.
        let body = body_of(
            "letrec f l = if (null l) then nil
                          else cons (car (cons 9 l)) (cons (car l) nil)
             in f [1]",
            "f",
        );
        let sites = eligible_sites(&body, Symbol::intern("l"));
        // The inner `cons 9 l` runs before `(cons (car l) nil)` reads l:
        // not eligible. The final cons has no later use: eligible. The
        // outer cons is the very last event: eligible too.
        for s in &sites {
            assert!(sites.iter().filter(|t| t.site == s.site).count() == 1);
        }
        // At minimum, the early cons must NOT be eligible; find it by
        // checking count is at most 2 (outer + last argument cons).
        assert!(sites.len() <= 2, "early cons leaked in: {sites:?}");
    }

    #[test]
    fn unguarded_cons_is_not_eligible() {
        let body = body_of("letrec f l = cons 1 l in f [1]", "f");
        assert!(eligible_sites(&body, Symbol::intern("l")).is_empty());
    }

    #[test]
    fn capture_under_lambda_disables_everything() {
        let body = body_of(
            "letrec f l = if (null l) then nil
                          else (lambda(z). cons (car l) nil) (cons 1 nil)
             in f [1]",
            "f",
        );
        assert!(eligible_sites(&body, Symbol::intern("l")).is_empty());
    }

    #[test]
    fn branches_select_independently() {
        let body = body_of(
            "letrec f l b = if (null l) then nil
                            else if b then cons (car l) nil
                                 else cons 9 nil
             in f [1] true",
            "f",
        );
        let sites = eligible_sites(&body, Symbol::intern("l"));
        assert_eq!(sites.len(), 2, "one per arm");
        let chosen = select_sites(&body, &sites);
        assert_eq!(chosen.len(), 2, "arms are exclusive paths");
    }

    #[test]
    fn uses_respects_shadowing() {
        let body = body_of("letrec f x = (lambda(x). x) 1 in f 2", "f");
        assert!(!uses(&body, Symbol::intern("zzz")));
        // x under the lambda is the lambda's own x.
        assert!(!occurs_under_lambda(&body, Symbol::intern("x")));
    }
}
