//! The automatic in-place-reuse driver (paper §6, first transformation
//! rule):
//!
//! > If the bottom `esc_i` spines of the i-th parameter of `f` escape `f`
//! > globally then the expression can safely be transformed into
//! > `(f' e₁ … eₙ)` where `f'` … directly reuses cons cells of the i-th
//! > argument — *provided the argument's top spine is unshared*.
//!
//! [`reuse_variant`] builds the `f'`; this module decides **where calling
//! it is safe**, using the sharing analysis: an argument is known
//! unshared when it is a fresh direct construction (a literal `cons`
//! chain), or the result of a call whose own result is unshared by
//! Theorem 2 case 2 ([`unshared_from_summary`]). Only the program's main
//! body is rewritten — inside function bodies an argument's sharing
//! depends on the caller, which is exactly why the paper keeps the
//! obligation at the call site.

use crate::ir::{IrExpr, IrProgram};
use crate::reuse::{reuse_variant, ReuseOptions};
use nml_escape::{unshared_from_summary, Analysis};
use nml_syntax::Symbol;
use std::collections::BTreeMap;

/// What the driver did.
#[derive(Debug, Clone, Default)]
pub struct AutoReuse {
    /// Generated variants: original name → (variant name, reuse parameter
    /// index).
    pub variants: BTreeMap<Symbol, (Symbol, usize)>,
    /// Number of main-body call sites redirected to a variant.
    pub rewritten_calls: usize,
}

/// The parameter [`reuse_variant`] would pick for `name` (the first list
/// parameter whose top spine is retained), if any.
pub fn default_reuse_param(analysis: &Analysis, name: Symbol) -> Option<usize> {
    analysis
        .summaries
        .get(&name)?
        .params
        .iter()
        .position(|p| p.ty.is_list() && p.retained_spines() >= 1)
}

/// Generates a reuse variant for every eligible top-level function and
/// redirects every main-body call whose reuse argument is provably
/// unshared.
pub fn auto_reuse(ir: &mut IrProgram, analysis: &Analysis) -> AutoReuse {
    let mut result = AutoReuse::default();

    // 1. Build every variant that the analysis and the last-use/guard
    //    conditions license.
    let names: Vec<Symbol> = analysis.summaries.keys().copied().collect();
    for name in names {
        // Never build reuse variants from degraded (worst-case) summaries.
        if analysis.is_degraded_sym(name) {
            continue;
        }
        let Some(param) = default_reuse_param(analysis, name) else {
            continue;
        };
        if let Ok(variant) = reuse_variant(ir, analysis, name, &ReuseOptions::dcons()) {
            result.variants.insert(name, (variant, param));
        }
    }
    if result.variants.is_empty() {
        return result;
    }

    // 2. Redirect safe main-body calls.
    let body = std::mem::replace(&mut ir.body, IrExpr::Const(nml_syntax::Const::Nil));
    ir.body = rewrite(
        body,
        analysis,
        &result.variants,
        &mut result.rewritten_calls,
    );
    result
}

/// Is the value of `e` certainly unshared in its **whole top spine**?
///
/// - `nil` has no cells;
/// - a direct `cons` is fresh, but only the first cell — its *tail* must
///   be unshared too (a `cons 0 shared_list` has a shared spine suffix,
///   and the reuse variant walks the whole spine);
/// - a *full* call of a top-level function `g` is unshared in its top
///   `unshared_from_summary(g)` spines (Theorem 2, case 2) — variants
///   inherit their original's summary.
fn is_unshared(
    e: &IrExpr,
    analysis: &Analysis,
    variants: &BTreeMap<Symbol, (Symbol, usize)>,
) -> bool {
    match e {
        IrExpr::Const(nml_syntax::Const::Nil) => true,
        IrExpr::Cons { tail, .. } | IrExpr::Dcons { tail, .. } => {
            is_unshared(tail, analysis, variants)
        }
        IrExpr::Region { inner, .. } => is_unshared(inner, analysis, variants),
        IrExpr::App(..) => {
            let (head, args) = split(e);
            let IrExpr::Var(g) = head else { return false };
            // A variant g_r behaves like g for sharing purposes.
            let orig = variants
                .iter()
                .find(|(_, (v, _))| *v == *g)
                .map(|(o, _)| *o)
                .unwrap_or(*g);
            let Some(summary) = analysis.summaries.get(&orig) else {
                return false;
            };
            !analysis.is_degraded_sym(orig)
                && summary.arity() == args.len()
                && unshared_from_summary(summary) >= 1
        }
        _ => false,
    }
}

fn split(e: &IrExpr) -> (&IrExpr, Vec<&IrExpr>) {
    let mut args = Vec::new();
    let mut cur = e;
    while let IrExpr::App(f, a) = cur {
        args.push(a.as_ref());
        cur = f;
    }
    args.reverse();
    (cur, args)
}

fn rewrite(
    e: IrExpr,
    analysis: &Analysis,
    variants: &BTreeMap<Symbol, (Symbol, usize)>,
    count: &mut usize,
) -> IrExpr {
    // Children first, so chains like rev (rev l) redirect inside-out and
    // the inner rewrite's unshared result licenses the outer one.
    let e = crate::stack::map_children(e, &mut |c| rewrite(c, analysis, variants, count));
    if !matches!(e, IrExpr::App(..)) {
        return e;
    }
    let (head, args) = {
        let (h, a) = split(&e);
        (h.clone(), a.into_iter().cloned().collect::<Vec<_>>())
    };
    let IrExpr::Var(f) = head else { return e };
    let Some(&(variant, param)) = variants.get(&f) else {
        return e;
    };
    let Some(summary) = analysis.summaries.get(&f) else {
        return e;
    };
    if summary.arity() != args.len() {
        return e;
    }
    if !is_unshared(&args[param], analysis, variants) {
        return e;
    }
    *count += 1;
    args.into_iter().fold(IrExpr::Var(variant), |acc, a| {
        IrExpr::App(Box::new(acc), Box::new(a))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_escape::analyze_source;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    #[test]
    fn literal_argument_is_rewritten() {
        let (mut ir, analysis) = prep(
            "letrec rev l a = if (null l) then a
                              else rev (cdr l) (cons (car l) a)
             in rev [1, 2, 3] nil",
        );
        let auto = auto_reuse(&mut ir, &analysis);
        assert_eq!(auto.rewritten_calls, 1, "{}", ir.body);
        assert!(ir.body.to_string().contains("rev_r"), "{}", ir.body);
    }

    #[test]
    fn unshared_producer_chain_is_rewritten() {
        // take's result is unshared (Thm 2 case 2: esc = 0 spines from its
        // list parameter... take rebuilds its spine), so rev may reuse it.
        let (mut ir, analysis) = prep(
            "letrec take n l = if n = 0 then nil
                               else if (null l) then nil
                               else cons (car l) (take (n - 1) (cdr l));
                    rev l a = if (null l) then a
                              else rev (cdr l) (cons (car l) a)
             in rev (take 2 [1, 2, 3]) nil",
        );
        let auto = auto_reuse(&mut ir, &analysis);
        assert!(auto.rewritten_calls >= 1);
        let text = ir.body.to_string();
        assert!(text.contains("rev_r ((take_r 2)"), "{text}");
    }

    #[test]
    fn shared_suffix_producer_blocks_rewrite() {
        // drop returns a suffix of its argument — its result spine IS the
        // argument's spine, shared: unshared_from_summary(drop) = 0, so a
        // reuse variant must NOT be called on drop's result.
        let (mut ir, analysis) = prep(
            "letrec drop n l = if n = 0 then l
                               else if (null l) then nil
                               else drop (n - 1) (cdr l);
                    rev l a = if (null l) then a
                              else rev (cdr l) (cons (car l) a)
             in rev (drop 1 [1, 2, 3]) nil",
        );
        let auto = auto_reuse(&mut ir, &analysis);
        assert_eq!(auto.rewritten_calls, 0, "{}", ir.body);
        assert!(!ir.body.to_string().contains("rev_r ("), "{}", ir.body);
    }

    #[test]
    fn cons_onto_shared_tail_blocks_rewrite() {
        // `cons 0 k` has a fresh head cell but k's shared spine as its
        // tail; the reuse variant would destructively walk k. Must not
        // rewrite.
        let (mut ir, analysis) = prep(
            "letrec k = [1, 2, 3];
                    rev l a = if (null l) then a
                              else rev (cdr l) (cons (car l) a)
             in rev (cons 0 k) nil",
        );
        let auto = auto_reuse(&mut ir, &analysis);
        assert_eq!(auto.rewritten_calls, 0, "{}", ir.body);
        // A fully literal spine still rewrites.
        let (mut ir2, analysis2) = prep(
            "letrec rev l a = if (null l) then a
                              else rev (cdr l) (cons (car l) a)
             in rev (cons 0 (cons 1 nil)) nil",
        );
        let auto2 = auto_reuse(&mut ir2, &analysis2);
        assert_eq!(auto2.rewritten_calls, 1, "{}", ir2.body);
    }

    #[test]
    fn ineligible_functions_get_no_variant() {
        let (mut ir, analysis) = prep("letrec inc x = x + 1 in inc 1");
        let auto = auto_reuse(&mut ir, &analysis);
        assert!(auto.variants.is_empty());
        assert_eq!(auto.rewritten_calls, 0);
    }

    // Execution-level validation of auto_reuse lives in the workspace
    // integration suite (tests/optimizations.rs): this crate cannot
    // depend on nml-runtime.
}
