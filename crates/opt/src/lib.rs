//! # nml-opt
//!
//! The storage optimizations that *Escape Analysis on Lists* (Park &
//! Goldberg, PLDI 1992) derives from escape information (§1, §6, §A.3):
//!
//! - **In-place reuse** ([`reuse`]): rewrite a `cons` into the destructive
//!   `DCONS` when the analysis shows a list parameter's top spine neither
//!   escapes nor is used afterwards — the paper's `APPEND'`, `REV'`,
//!   `PS''`.
//! - **Stack allocation** ([`stack`]): allocate freshly constructed,
//!   non-escaping list arguments into a region freed when the call
//!   returns — no garbage collection.
//! - **Block allocation/reclamation** ([`block`]): route a producer's
//!   result spine into a memory block freed wholesale when the consumer
//!   returns — the paper's `PS (create_list i)` example.
//!
//! All three operate on the storage-annotated [`ir`], which the
//! `nml-runtime` crate executes with full allocation/GC instrumentation.
//!
//! ## Example
//!
//! ```
//! use nml_escape::analyze_source;
//! use nml_opt::{lower_program, reuse_variant, ReuseOptions};
//! use nml_syntax::{parse_program, Symbol};
//! use nml_types::infer_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "letrec append x y = if (null x) then y
//!                                else cons (car x) (append (cdr x) y)
//!            in append [1] [2]";
//! let program = parse_program(src)?;
//! let info = infer_program(&program)?;
//! let mut ir = lower_program(&program, &info);
//! let analysis = analyze_source(src)?;
//! let name = reuse_variant(
//!     &mut ir,
//!     &analysis,
//!     Symbol::intern("append"),
//!     &ReuseOptions::dcons(),
//! )?;
//! assert_eq!(name.as_str(), "append_r");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod auto;
pub mod block;
pub mod error;
pub mod ir;
pub mod lastuse;
pub mod pipeline;
pub mod pretenure;
pub mod quarantine;
pub mod resolve;
pub mod reuse;
pub mod sroa;
pub mod stack;

pub use auto::{auto_reuse, default_reuse_param, AutoReuse};
pub use block::{block_call, block_name, block_producer_variant};
pub use error::OptError;
pub use ir::{
    lower_program, lower_program_with, walk_ir, AllocMode, IrExpr, IrFunc, IrProgram, LowerPlan,
    RegionKind, SiteId,
};
pub use lastuse::{eligible_sites, occurs_under_lambda, select_sites, EligibleSite};
pub use pipeline::{auto_block, optimize, OptOptions, OptSummary};
pub use pretenure::annotate_pretenure;
pub use quarantine::{
    apply_quarantine, body_cons_sites, sabotage_elide, sabotage_stack, walk_ir_mut, QuarantineSet,
    SabotagePlan,
};
pub use resolve::{
    resolve_program, CaptureSrc, RExpr, RecGroup, ResolvedGlobal, ResolvedProgram, ResolvedUnit,
    SlotRef,
};
pub use reuse::{reuse_name, reuse_variant, rewrite_calls, ReuseOptions};
pub use sroa::{analyze_sites, annotate_sroa, strip_sroa, SiteFact};
pub use stack::{annotate_stack, plan_stack_allocation};
