//! The optimization pass manager: composes the three storage
//! optimizations in a sound order.
//!
//! **Order matters.** In-place reuse must run *before* stack allocation:
//! a reuse variant's result aliases its argument's cells, so a call that
//! has already been rewritten to `f_r` must never have that argument
//! stack-allocated (the aliased cells would be freed at region exit while
//! the result lives on). Running reuse first is safe because the stack
//! annotator only touches calls of functions with escape summaries, and
//! generated variants have none. The reversed order is demonstrably
//! unsound — the region validator catches it (see the test suite).
//!
//! Block allocation is independent of both (it wraps producer/consumer
//! call pairs whose spines the analysis retains), and runs in between.

use crate::auto::{auto_reuse, AutoReuse};
use crate::block::block_call;
use crate::ir::{IrExpr, IrProgram};
use crate::pretenure::annotate_pretenure;
use crate::sroa::annotate_sroa;
use crate::stack::annotate_stack;
use nml_escape::Analysis;
use nml_syntax::Symbol;
use std::collections::BTreeSet;

/// Which passes to run.
#[derive(Debug, Clone, Copy)]
pub struct OptOptions {
    /// Generate `DCONS` variants and rewrite unshared call sites (§6).
    pub reuse: bool,
    /// Wrap producer/consumer pairs in block regions (§A.3.3).
    pub block: bool,
    /// Stack-allocate non-escaping literal arguments (§A.3.1).
    pub stack: bool,
    /// Mark provably-escaping sites for old-space allocation (see
    /// [`crate::pretenure`]).
    pub pretenure: bool,
    /// Mark no-escape, unaliased sites for scalar replacement (see
    /// [`crate::sroa`]); only the bytecode engine acts on the mark.
    pub sroa: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            reuse: true,
            block: true,
            stack: true,
            pretenure: true,
            sroa: true,
        }
    }
}

/// What the pass manager did.
#[derive(Debug, Clone, Default)]
pub struct OptSummary {
    /// The reuse driver's outcome, when enabled.
    pub reuse: Option<AutoReuse>,
    /// Producer/consumer pairs wrapped in block regions.
    pub block_calls: usize,
    /// Calls wrapped in stack regions.
    pub stack_calls: usize,
    /// Cons sites marked for old-space allocation.
    pub pretenured_sites: usize,
    /// Cons sites licensed for scalar replacement.
    pub elided_sites: usize,
}

/// Runs the enabled passes in the sound order: reuse → block → stack →
/// pretenure (last, so it only upgrades sites no stronger pass claimed).
///
/// Functions whose summaries are worst-case degradations (see
/// [`nml_escape::Degradation`]) are skipped by every pass: their
/// summaries license nothing, and each pass additionally refuses them
/// explicitly. An analysis that ran out of budget therefore costs
/// optimization opportunities, never correctness.
pub fn optimize(ir: &mut IrProgram, analysis: &Analysis, opts: &OptOptions) -> OptSummary {
    let mut summary = OptSummary::default();
    if opts.reuse {
        summary.reuse = Some(auto_reuse(ir, analysis));
    }
    if opts.block {
        summary.block_calls = auto_block(ir, analysis);
    }
    if opts.stack {
        summary.stack_calls = annotate_stack(ir, analysis);
    }
    if opts.pretenure {
        summary.pretenured_sites = annotate_pretenure(ir, analysis);
    }
    if opts.sroa {
        // Last: only plain heap sites qualify, so every site a stronger
        // pass claimed keeps its placement.
        summary.elided_sites = annotate_sroa(ir, analysis);
    }
    summary
}

/// Finds `f (g …)` producer/consumer pairs in the main body where `f`'s
/// parameter retains its top spine, and applies the block transformation
/// to each distinct pair. Returns the number of rewritten calls.
pub fn auto_block(ir: &mut IrProgram, analysis: &Analysis) -> usize {
    // Collect candidate (consumer, producer) pairs first; block_call
    // mutates the program.
    let mut pairs: BTreeSet<(Symbol, Symbol)> = BTreeSet::new();
    collect_pairs(&ir.body, analysis, &mut pairs);
    let mut count = 0;
    for (f, g) in pairs {
        if let Ok(n) = block_call(ir, analysis, f, g) {
            count += n;
        }
    }
    count
}

fn split(e: &IrExpr) -> (&IrExpr, Vec<&IrExpr>) {
    let mut args = Vec::new();
    let mut cur = e;
    while let IrExpr::App(f, a) = cur {
        args.push(a.as_ref());
        cur = f;
    }
    args.reverse();
    (cur, args)
}

fn collect_pairs(e: &IrExpr, analysis: &Analysis, out: &mut BTreeSet<(Symbol, Symbol)>) {
    if let IrExpr::App(..) = e {
        let (head, args) = split(e);
        if let IrExpr::Var(f) = head {
            if let Some(summary) = analysis.summaries.get(f) {
                if summary.arity() == args.len() {
                    for (j, a) in args.iter().enumerate() {
                        if summary.param(j).retained_spines() < 1 {
                            continue;
                        }
                        let (ah, aargs) = split(a);
                        if let IrExpr::Var(g) = ah {
                            if !aargs.is_empty()
                                && analysis.summaries.contains_key(g)
                                && analysis.summaries[g].result_ty.is_list()
                            {
                                out.insert((*f, *g));
                            }
                        }
                    }
                }
            }
        }
    }
    // Recurse.
    match e {
        IrExpr::Const(_) | IrExpr::Var(_) => {}
        IrExpr::App(a, b) => {
            collect_pairs(a, analysis, out);
            collect_pairs(b, analysis, out);
        }
        IrExpr::Lambda { body, .. } => collect_pairs(body, analysis, out),
        IrExpr::If(c, t, f) => {
            collect_pairs(c, analysis, out);
            collect_pairs(t, analysis, out);
            collect_pairs(f, analysis, out);
        }
        IrExpr::Letrec(bs, body) => {
            for (_, b) in bs {
                collect_pairs(b, analysis, out);
            }
            collect_pairs(body, analysis, out);
        }
        IrExpr::Cons { head, tail, .. } | IrExpr::Dcons { head, tail, .. } => {
            collect_pairs(head, analysis, out);
            collect_pairs(tail, analysis, out);
        }
        IrExpr::Prim1(_, a) => collect_pairs(a, analysis, out),
        IrExpr::Prim2(_, a, b) => {
            collect_pairs(a, analysis, out);
            collect_pairs(b, analysis, out);
        }
        IrExpr::Region { inner, .. } => collect_pairs(inner, analysis, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_escape::analyze_source;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    const COMBINED: &str = "letrec
      sum l = if (null l) then 0 else car l + sum (cdr l);
      create_list n = if n = 0 then nil else cons n (create_list (n - 1));
      rev l a = if (null l) then a
                else rev (cdr l) (cons (car l) a)
    in sum (rev (create_list 10) nil) + sum [1, 2, 3]";

    #[test]
    fn all_passes_compose() {
        let (mut ir, analysis) = prep(COMBINED);
        let summary = optimize(&mut ir, &analysis, &OptOptions::default());
        let auto = summary.reuse.expect("reuse ran");
        assert!(auto.rewritten_calls >= 1, "rev (create_list ...) reuses");
        assert!(summary.stack_calls >= 1, "sum [1,2,3] stacks");
        let text = ir.body.to_string();
        assert!(text.contains("rev_r"), "{text}");
        assert!(text.contains("region[stack]"), "{text}");
    }

    #[test]
    fn auto_block_finds_producer_consumer_pairs() {
        let (mut ir, analysis) = prep(
            "letrec
               sum l = if (null l) then 0 else car l + sum (cdr l);
               create_list n = if n = 0 then nil else cons n (create_list (n - 1))
             in sum (create_list 20)",
        );
        let n = auto_block(&mut ir, &analysis);
        assert_eq!(n, 1);
        assert!(ir.body.to_string().contains("region[block]"), "{}", ir.body);
    }

    #[test]
    fn escaping_consumer_gets_no_block() {
        let (mut ir, analysis) = prep(
            "letrec
               idl l = cons (car l) (cdr l);
               create_list n = if n = 0 then nil else cons n (create_list (n - 1))
             in idl (create_list 5)",
        );
        assert_eq!(auto_block(&mut ir, &analysis), 0);
    }

    #[test]
    fn options_gate_each_pass() {
        let (mut ir, analysis) = prep(COMBINED);
        let summary = optimize(
            &mut ir,
            &analysis,
            &OptOptions {
                reuse: false,
                block: false,
                stack: true,
                pretenure: false,
                sroa: false,
            },
        );
        assert!(summary.reuse.is_none());
        assert_eq!(summary.block_calls, 0);
        assert!(summary.stack_calls >= 1);
        assert_eq!(summary.elided_sites, 0);
        assert!(!ir.body.to_string().contains("rev_r"));
    }

    #[test]
    fn sroa_gated_and_counted() {
        let (mut ir, analysis) = prep(
            "letrec f n = letrec p = cons n (cons 1 nil) in car p + car (cdr p)
             in f 3",
        );
        let summary = optimize(&mut ir, &analysis, &OptOptions::default());
        assert_eq!(summary.elided_sites, 1);
        let f = ir.func(nml_syntax::Symbol::intern("f")).unwrap();
        assert!(f.body.to_string().contains("cons[elided]"), "{}", f.body);
    }
}
