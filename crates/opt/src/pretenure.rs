//! Escape-informed pretenuring: route provably-escaping allocation
//! sites straight to the old space.
//!
//! The paper's optimizations exploit *non*-escaping cells (stack
//! allocation, reuse, block reclamation). The same verdicts also
//! identify the opposite end: a `cons` in **result position** of a
//! list-returning function is part of the value the call hands back, so
//! the cell provably outlives the call that built it; likewise a
//! constructed argument whose parameter verdict says *every* spine
//! escapes flows wholesale into the callee's result. A generational
//! runtime wastes work allocating such cells in the nursery — they are
//! guaranteed survivors, each costing a minor-GC visit and a promotion.
//! This pass marks them [`AllocMode::Pretenured`] so the heap places
//! them in the old space directly.
//!
//! Pretenuring is purely a placement hint: a wrongly pretenured cell is
//! reclaimed by the next major collection instead of a minor one, which
//! costs time but never correctness. The pass is still conservative: it
//! only consults non-degraded summaries, and it never overrides a
//! stack/block annotation (those sites were *proven* local — the exact
//! opposite claim, licensed by the stronger test, and their region free
//! is cheaper than any GC).
//!
//! Runs **after** reuse/block/stack in the pipeline so every site those
//! passes claimed keeps its fast path; only plain heap sites are
//! upgraded.

use crate::ir::{AllocMode, IrExpr, IrProgram};
use crate::stack::map_children;
use nml_escape::{classify_param, classify_result, Analysis, EscapeClass};

/// Marks provably-escaping `cons` sites in `ir` as
/// [`AllocMode::Pretenured`]. Returns the number of sites marked.
pub fn annotate_pretenure(ir: &mut IrProgram, analysis: &Analysis) -> usize {
    let mut count = 0;
    let funcs = std::mem::take(&mut ir.funcs);
    ir.funcs = funcs
        .into_iter()
        .map(|mut f| {
            let escaping_result = f.is_function()
                && analysis
                    .summaries
                    .get(&f.name)
                    .is_some_and(|s| classify_result(s) == EscapeClass::ProvablyEscaping)
                && !analysis.is_degraded_sym(f.name);
            if escaping_result {
                f.body = mark_result(f.body, analysis, &mut count);
            } else {
                // Result cells stay young, but fully-escaping call
                // arguments inside the body are still worth marking.
                f.body = mark_calls_only(f.body, analysis, &mut count);
            }
            f
        })
        .collect();
    // The program body's result is the program's final value — it
    // survives until exit by definition.
    let body = std::mem::replace(&mut ir.body, IrExpr::Const(nml_syntax::Const::Nil));
    ir.body = mark_result(body, analysis, &mut count);
    count
}

/// Marks the constructed parts of a result-position expression: every
/// heap `cons` here is part of the escaping value.
fn mark_result(e: IrExpr, analysis: &Analysis, count: &mut usize) -> IrExpr {
    match e {
        IrExpr::Cons {
            alloc,
            head,
            tail,
            site,
        } => {
            let alloc = if alloc == AllocMode::Heap {
                *count += 1;
                AllocMode::Pretenured
            } else {
                alloc
            };
            IrExpr::Cons {
                alloc,
                head: Box::new(mark_result(*head, analysis, count)),
                tail: Box::new(mark_result(*tail, analysis, count)),
                site,
            }
        }
        IrExpr::Dcons {
            reused,
            head,
            tail,
            site,
        } => IrExpr::Dcons {
            reused,
            head: Box::new(mark_result(*head, analysis, count)),
            tail: Box::new(mark_result(*tail, analysis, count)),
            site,
        },
        IrExpr::If(c, t, f) => IrExpr::If(
            Box::new(mark_calls_only(*c, analysis, count)),
            Box::new(mark_result(*t, analysis, count)),
            Box::new(mark_result(*f, analysis, count)),
        ),
        IrExpr::Letrec(bs, body) => IrExpr::Letrec(
            bs.into_iter()
                .map(|(n, e)| (n, mark_calls_only(e, analysis, count)))
                .collect(),
            Box::new(mark_result(*body, analysis, count)),
        ),
        IrExpr::Region { kind, inner, site } => IrExpr::Region {
            kind,
            inner: Box::new(mark_result(*inner, analysis, count)),
            site,
        },
        IrExpr::App(..) => mark_call(e, analysis, count, true),
        other => mark_calls_only(other, analysis, count),
    }
}

/// Walks a non-result expression, applying only the call-argument rule.
fn mark_calls_only(e: IrExpr, analysis: &Analysis, count: &mut usize) -> IrExpr {
    if matches!(e, IrExpr::App(..)) {
        mark_call(e, analysis, count, false)
    } else {
        map_children(e, &mut |c| mark_calls_only(c, analysis, count))
    }
}

/// At a saturated call of a summarized function, marks constructed
/// arguments whose parameter verdict says the whole value escapes into
/// the callee's result: the argument's cells outlive the frame
/// constructing them regardless of where the call sits. (Partially
/// escaping arguments are left alone — their retained top spines *do*
/// die with the frame, and marking site-granular spine prefixes is the
/// stack pass's job, not ours.)
fn mark_call(e: IrExpr, analysis: &Analysis, count: &mut usize, _in_result: bool) -> IrExpr {
    let (head, args) = split_call(e);
    let recurse = |a: IrExpr, count: &mut usize| mark_calls_only(a, analysis, count);
    let name = match &head {
        IrExpr::Var(x) => Some(*x),
        _ => None,
    };
    let summary = name.and_then(|n| {
        (!analysis.is_degraded_sym(n))
            .then(|| analysis.summaries.get(&n))
            .flatten()
    });
    let args: Vec<IrExpr> = match summary {
        Some(s) if s.arity() == args.len() => args
            .into_iter()
            .enumerate()
            .map(|(j, a)| {
                let fully_escapes = classify_param(s.param(j)) == EscapeClass::ProvablyEscaping;
                if fully_escapes && matches!(a, IrExpr::Cons { .. }) {
                    mark_result(a, analysis, count)
                } else {
                    recurse(a, count)
                }
            })
            .collect(),
        _ => args.into_iter().map(|a| recurse(a, count)).collect(),
    };
    let head = match head {
        IrExpr::Var(_) | IrExpr::Const(_) => head,
        other => recurse(other, count),
    };
    rebuild_call(head, args)
}

fn split_call(e: IrExpr) -> (IrExpr, Vec<IrExpr>) {
    let mut args = Vec::new();
    let mut cur = e;
    while let IrExpr::App(f, a) = cur {
        args.push(*a);
        cur = *f;
    }
    args.reverse();
    (cur, args)
}

fn rebuild_call(head: IrExpr, args: Vec<IrExpr>) -> IrExpr {
    args.into_iter()
        .fold(head, |f, a| IrExpr::App(Box::new(f), Box::new(a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{lower_program, walk_ir};
    use nml_escape::analyze_source;
    use nml_syntax::{parse_program, Symbol};
    use nml_types::infer_program;

    fn prep(src: &str) -> (IrProgram, Analysis) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let analysis = analyze_source(src).expect("analysis");
        (ir, analysis)
    }

    fn pretenured_sites(e: &IrExpr) -> usize {
        let mut n = 0;
        walk_ir(e, &mut |x| {
            if matches!(
                x,
                IrExpr::Cons {
                    alloc: AllocMode::Pretenured,
                    ..
                }
            ) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn list_builder_result_is_pretenured() {
        let (mut ir, analysis) = prep(
            "letrec make n = if n = 0 then nil else cons n (make (n - 1))
             in make 10",
        );
        let n = annotate_pretenure(&mut ir, &analysis);
        assert_eq!(n, 1);
        let make = ir.func(Symbol::intern("make")).unwrap();
        assert_eq!(pretenured_sites(&make.body), 1);
        assert!(make.body.to_string().contains("cons[pretenure]"));
    }

    #[test]
    fn consumed_list_is_not_pretenured() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum (cons 1 (cons 2 nil))",
        );
        let n = annotate_pretenure(&mut ir, &analysis);
        // sum's parameter is provably local and its result is an int:
        // nothing qualifies.
        assert_eq!(n, 0);
        assert_eq!(pretenured_sites(&ir.body), 0);
    }

    #[test]
    fn fully_escaping_call_argument_is_pretenured() {
        // append's second parameter escapes wholly: a literal passed
        // there flows into the (escaping) result.
        let (mut ir, analysis) = prep(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append (cons 1 nil) (cons 2 nil)",
        );
        let n = annotate_pretenure(&mut ir, &analysis);
        assert!(n >= 2, "append body cons + y argument: {n}");
        let text = ir.body.to_string();
        assert!(text.contains("(cons[pretenure] 2"), "{text}");
    }

    #[test]
    fn stack_annotations_are_never_overridden() {
        let (mut ir, analysis) = prep(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum (cons 1 (cons 2 nil))",
        );
        let stacked = crate::stack::annotate_stack(&mut ir, &analysis);
        assert_eq!(stacked, 1);
        annotate_pretenure(&mut ir, &analysis);
        let text = ir.body.to_string();
        assert!(text.contains("cons[stack]"), "{text}");
        assert!(!text.contains("cons[pretenure]"), "{text}");
    }
}
