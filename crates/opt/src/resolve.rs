//! Compile-time slot resolution for the bytecode engine.
//!
//! The tree-walking interpreter resolves every variable occurrence at
//! runtime by walking a linked `Env` chain of `Symbol` bindings. This
//! pass does that walk once, at compile time: each occurrence becomes a
//! [`SlotRef`] — a frame-local slot index, a closure-capture index, a
//! recursive-group member, or a direct global reference. The bytecode
//! compiler in `nml-runtime` consumes the resolved tree ([`RExpr`])
//! directly; the VM never searches for a `Symbol` on the hot path.
//!
//! Resolution mirrors the interpreter's environment semantics exactly
//! (same shadowing, same `letrec` corner cases):
//!
//! - the lambda bindings of a `letrec` form one mutually recursive group
//!   whose members see each other ([`SlotRef::Rec`]) and the scope
//!   *outside* the `letrec` — not their value-binding siblings (the
//!   interpreter's `Rec` env node sits below the value binds);
//! - value bindings evaluate in order and see the lambda group plus
//!   earlier value bindings; a forward reference is the interpreter's
//!   runtime `Unbound`, which compiles to [`SlotRef::Unbound`];
//! - duplicate names inside one group resolve to the *first* member
//!   (the interpreter's `Rec` lookup is first-match);
//! - a global name prefers the latest *visible* top-level value binding
//!   (the interpreter's globals map, filled in binding order, is
//!   last-insert-wins), then the textually first top-level binding if it
//!   is a function. During startup, binding `j` sees only value bindings
//!   `0..j`; whether a value global is initialized yet is re-checked by
//!   the VM at load time, so a function called *during* startup that
//!   touches a not-yet-evaluated value global still fails `Unbound`
//!   exactly like the tree-walker.

use crate::ir::{AllocMode, IrExpr, IrProgram, RegionKind, SiteId};
use nml_syntax::ast::{Const, Prim};
use nml_syntax::Symbol;
use std::cell::RefCell;
use std::rc::Rc;

/// Compile-time address of a variable occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRef {
    /// A slot in the current frame's locals.
    Local(u16),
    /// An index into the current closure's capture array.
    Capture(u16),
    /// Member `j` of the current closure's recursive group (the closure
    /// for the sibling is materialized on demand, sharing the captures).
    Rec(u16),
    /// Top-level function binding `i` (always initialized).
    GlobalFunc(u32),
    /// Top-level value binding `i` (checked for initialization at load
    /// time: startup evaluates bindings in order).
    GlobalVal(u32),
    /// Statically unbound: evaluating the occurrence raises `Unbound`.
    Unbound,
}

/// Where a closure capture is copied from, relative to the frame that
/// *creates* the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureSrc {
    /// A local slot of the creating frame.
    Local(u16),
    /// A capture of the creating frame's own closure.
    Capture(u16),
    /// Member `j` of the creating frame's own recursive group.
    Rec(u16),
}

/// The lambda members of one `letrec`, sharing a single capture array.
#[derive(Debug, Clone, PartialEq)]
pub struct RecGroup {
    /// Code units of the members, in binding order.
    pub units: Vec<u32>,
    /// The shared captures, resolved in the defining frame.
    pub captures: Vec<CaptureSrc>,
    /// Frame slots the materialized member closures are stored into.
    pub slots: Vec<u16>,
}

/// A slot-resolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// A constant.
    Const(Const),
    /// A variable occurrence. The [`Symbol`] is kept only for `Unbound`
    /// error text; the VM reads the [`SlotRef`].
    Var(Symbol, SlotRef),
    /// General application.
    App(Box<RExpr>, Box<RExpr>),
    /// Closure creation: code unit plus where to copy its captures from.
    MakeClosure {
        /// Code unit of the lambda body.
        unit: u32,
        /// Capture sources in the creating frame.
        captures: Vec<CaptureSrc>,
    },
    /// `if c then t else f`
    If(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    /// Nested `letrec`: an optional recursive lambda group plus value
    /// bindings stored into frame slots in evaluation order.
    Letrec {
        /// The mutually recursive lambda members, if any.
        group: Option<RecGroup>,
        /// `(slot, expr)` value bindings, in evaluation order.
        values: Vec<(u16, RExpr)>,
        /// The body.
        body: Box<RExpr>,
    },
    /// Saturated `cons` with an allocation mode.
    Cons {
        /// Where the cell is allocated.
        alloc: AllocMode,
        /// Head expression.
        head: Box<RExpr>,
        /// Tail expression.
        tail: Box<RExpr>,
        /// Allocation site.
        site: SiteId,
    },
    /// `DCONS x e1 e2`: destructive reuse of the cell bound to `x`.
    Dcons {
        /// Name of the reused variable (for error text).
        reused: Symbol,
        /// Resolved address of the reused variable.
        target: SlotRef,
        /// New head.
        head: Box<RExpr>,
        /// New tail.
        tail: Box<RExpr>,
        /// Site id (for reuse stats).
        site: SiteId,
    },
    /// A saturated unary primitive.
    Prim1(Prim, Box<RExpr>),
    /// A saturated binary primitive.
    Prim2(Prim, Box<RExpr>, Box<RExpr>),
    /// Dynamic extent for stack/block reclamation.
    Region {
        /// Stack or block semantics.
        kind: RegionKind,
        /// The wrapped expression.
        inner: Box<RExpr>,
    },
}

/// One compiled code unit: a top-level binding body, the program body,
/// or a lambda.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedUnit {
    /// Name, when the unit is a named binding (for diagnostics).
    pub name: Option<Symbol>,
    /// Number of parameters (slots `0..n_params` on entry).
    pub n_params: u16,
    /// Total frame slots (parameters plus `letrec` bindings).
    pub n_slots: u16,
    /// The resolved body.
    pub body: RExpr,
}

/// A resolved top-level binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedGlobal {
    /// A function binding: its code unit and curried arity.
    Func {
        /// Code unit index.
        unit: u32,
        /// Number of curried parameters.
        arity: u16,
    },
    /// A value binding, evaluated once at startup.
    Value {
        /// Code unit index.
        unit: u32,
    },
}

/// A whole slot-resolved program.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedProgram {
    /// All code units (top-level bodies and lambdas).
    pub units: Vec<ResolvedUnit>,
    /// Top-level bindings, parallel to `IrProgram::funcs`.
    pub globals: Vec<ResolvedGlobal>,
    /// Unit index of the program body.
    pub main: u32,
}

/// Resolves every variable occurrence of `p` to a [`SlotRef`].
pub fn resolve_program(p: &IrProgram) -> ResolvedProgram {
    let mut r = Resolver {
        program: p,
        units: Vec::new(),
        frames: Vec::new(),
        visible_vals: 0,
    };
    let mut globals = Vec::with_capacity(p.funcs.len());
    for (i, f) in p.funcs.iter().enumerate() {
        // A function body runs only when called, so it sees every value
        // binding (readiness is checked at load time); a startup value
        // binding sees only the bindings evaluated before it.
        r.visible_vals = if f.is_function() { p.funcs.len() } else { i };
        let unit = r.resolve_unit(Some(f.name), &f.params, Vec::new(), fresh_caps(), &f.body);
        globals.push(if f.is_function() {
            ResolvedGlobal::Func {
                unit,
                arity: f.params.len() as u16,
            }
        } else {
            ResolvedGlobal::Value { unit }
        });
    }
    r.visible_vals = p.funcs.len();
    let main = r.resolve_unit(None, &[], Vec::new(), fresh_caps(), &p.body);
    ResolvedProgram {
        units: r.units,
        globals,
        main,
    }
}

type SharedCaps = Rc<RefCell<Vec<(Symbol, CaptureSrc)>>>;

fn fresh_caps() -> SharedCaps {
    Rc::new(RefCell::new(Vec::new()))
}

/// One lexical frame while resolving. `scope` holds let-style binds
/// (innermost last); `rec_names` is the frame's own recursive group,
/// searched *after* `scope` (the interpreter's binds sit above the `Rec`
/// env node).
struct Frame {
    scope: Vec<(Symbol, u16)>,
    rec_names: Vec<Symbol>,
    next_slot: u16,
    captures: SharedCaps,
}

struct Resolver<'ir> {
    program: &'ir IrProgram,
    units: Vec<ResolvedUnit>,
    frames: Vec<Frame>,
    /// Upper bound (exclusive) on visible top-level value bindings.
    visible_vals: usize,
}

impl Resolver<'_> {
    fn resolve_unit(
        &mut self,
        name: Option<Symbol>,
        params: &[Symbol],
        rec_names: Vec<Symbol>,
        captures: SharedCaps,
        body: &IrExpr,
    ) -> u32 {
        self.frames.push(Frame {
            scope: params
                .iter()
                .enumerate()
                .map(|(i, p)| (*p, i as u16))
                .collect(),
            rec_names,
            next_slot: params.len() as u16,
            captures,
        });
        let body = self.resolve_expr(body);
        let frame = self.frames.pop().expect("frame balance");
        let id = self.units.len() as u32;
        self.units.push(ResolvedUnit {
            name,
            n_params: params.len() as u16,
            n_slots: frame.next_slot,
            body,
        });
        id
    }

    fn alloc_slot(&mut self) -> u16 {
        let f = self.frames.last_mut().expect("active frame");
        let s = f.next_slot;
        f.next_slot += 1;
        s
    }

    fn resolve_var(&mut self, x: Symbol) -> SlotRef {
        self.resolve_in(self.frames.len() - 1, x)
    }

    /// Resolves `x` as seen from frame `k`, adding captures to
    /// intervening frames as needed.
    fn resolve_in(&mut self, k: usize, x: Symbol) -> SlotRef {
        if let Some(&(_, slot)) = self.frames[k].scope.iter().rev().find(|(n, _)| *n == x) {
            return SlotRef::Local(slot);
        }
        if let Some(j) = self.frames[k].rec_names.iter().position(|n| *n == x) {
            return SlotRef::Rec(j as u16);
        }
        if k == 0 {
            return self.resolve_global(x);
        }
        if let Some(i) = self.frames[k]
            .captures
            .borrow()
            .iter()
            .position(|(n, _)| *n == x)
        {
            return SlotRef::Capture(i as u16);
        }
        let src = match self.resolve_in(k - 1, x) {
            SlotRef::Local(s) => CaptureSrc::Local(s),
            SlotRef::Capture(i) => CaptureSrc::Capture(i),
            SlotRef::Rec(j) => CaptureSrc::Rec(j),
            global => return global,
        };
        let mut caps = self.frames[k].captures.borrow_mut();
        caps.push((x, src));
        SlotRef::Capture((caps.len() - 1) as u16)
    }

    fn resolve_global(&self, x: Symbol) -> SlotRef {
        // Latest visible value binding wins (globals map insert order),
        // then the textually first binding if it is a function (the
        // interpreter's `program.func(..).filter(is_function)` fallback).
        if let Some(i) = self.program.funcs[..self.visible_vals]
            .iter()
            .rposition(|f| f.name == x && !f.is_function())
        {
            return SlotRef::GlobalVal(i as u32);
        }
        match self.program.funcs.iter().position(|f| f.name == x) {
            Some(i) if self.program.funcs[i].is_function() => SlotRef::GlobalFunc(i as u32),
            _ => SlotRef::Unbound,
        }
    }

    fn resolve_expr(&mut self, e: &IrExpr) -> RExpr {
        match e {
            IrExpr::Const(c) => RExpr::Const(*c),
            IrExpr::Var(x) => RExpr::Var(*x, self.resolve_var(*x)),
            IrExpr::App(a, b) => RExpr::App(
                Box::new(self.resolve_expr(a)),
                Box::new(self.resolve_expr(b)),
            ),
            IrExpr::Lambda { param, body, .. } => {
                let caps = fresh_caps();
                let unit = self.resolve_unit(None, &[*param], Vec::new(), caps.clone(), body);
                let captures = caps.borrow().iter().map(|(_, s)| *s).collect();
                RExpr::MakeClosure { unit, captures }
            }
            IrExpr::If(c, t, f) => RExpr::If(
                Box::new(self.resolve_expr(c)),
                Box::new(self.resolve_expr(t)),
                Box::new(self.resolve_expr(f)),
            ),
            IrExpr::Letrec(bs, body) => self.resolve_letrec(bs, body),
            IrExpr::Cons {
                alloc,
                head,
                tail,
                site,
            } => RExpr::Cons {
                alloc: *alloc,
                head: Box::new(self.resolve_expr(head)),
                tail: Box::new(self.resolve_expr(tail)),
                site: *site,
            },
            IrExpr::Dcons {
                reused,
                head,
                tail,
                site,
            } => RExpr::Dcons {
                reused: *reused,
                target: self.resolve_var(*reused),
                head: Box::new(self.resolve_expr(head)),
                tail: Box::new(self.resolve_expr(tail)),
                site: *site,
            },
            IrExpr::Prim1(p, a) => RExpr::Prim1(*p, Box::new(self.resolve_expr(a))),
            IrExpr::Prim2(p, a, b) => RExpr::Prim2(
                *p,
                Box::new(self.resolve_expr(a)),
                Box::new(self.resolve_expr(b)),
            ),
            IrExpr::Region { kind, inner, .. } => RExpr::Region {
                kind: *kind,
                inner: Box::new(self.resolve_expr(inner)),
            },
        }
    }

    fn resolve_letrec(&mut self, bs: &[(Symbol, IrExpr)], body: &IrExpr) -> RExpr {
        let mut members: Vec<(Symbol, Symbol, &IrExpr)> = Vec::new();
        let mut value_bs: Vec<(Symbol, &IrExpr)> = Vec::new();
        for (n, e) in bs {
            if let IrExpr::Lambda { param, body, .. } = e {
                members.push((*n, *param, body));
            } else {
                value_bs.push((*n, e));
            }
        }
        let saved_scope = self.frames.last().expect("active frame").scope.len();
        let group = if members.is_empty() {
            None
        } else {
            // Member bodies resolve against the scope *outside* this
            // letrec (the interpreter's `Rec` node closes over the env at
            // letrec entry), so resolve them before pushing any entries.
            let shared = fresh_caps();
            let rec_names: Vec<Symbol> = members.iter().map(|m| m.0).collect();
            let mut units = Vec::new();
            for (name, param, mbody) in &members {
                units.push(self.resolve_unit(
                    Some(*name),
                    &[*param],
                    rec_names.clone(),
                    shared.clone(),
                    mbody,
                ));
            }
            let captures: Vec<CaptureSrc> = shared.borrow().iter().map(|(_, s)| *s).collect();
            let mut slots = Vec::new();
            for (i, (name, _, _)) in members.iter().enumerate() {
                let slot = self.alloc_slot();
                slots.push(slot);
                // First member with a given name wins (Rec lookup is
                // first-match), so don't let a duplicate shadow it.
                if !members[..i].iter().any(|(n, _, _)| n == name) {
                    let f = self.frames.last_mut().expect("active frame");
                    f.scope.push((*name, slot));
                }
            }
            Some(RecGroup {
                units,
                captures,
                slots,
            })
        };
        let mut values = Vec::new();
        for (name, e) in value_bs {
            // The binding's own name is not in scope for its expression.
            let re = self.resolve_expr(e);
            let slot = self.alloc_slot();
            self.frames
                .last_mut()
                .expect("active frame")
                .scope
                .push((name, slot));
            values.push((slot, re));
        }
        let rbody = self.resolve_expr(body);
        self.frames
            .last_mut()
            .expect("active frame")
            .scope
            .truncate(saved_scope);
        RExpr::Letrec {
            group,
            values,
            body: Box::new(rbody),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn resolve(src: &str) -> ResolvedProgram {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        resolve_program(&lower_program(&p, &info))
    }

    fn unit<'a>(r: &'a ResolvedProgram, name: &str) -> &'a ResolvedUnit {
        let n = Symbol::intern(name);
        r.units
            .iter()
            .find(|u| u.name == Some(n))
            .expect("named unit")
    }

    fn find_var(e: &RExpr, name: Symbol) -> Option<SlotRef> {
        let mut found = None;
        walk(e, &mut |n| {
            if let RExpr::Var(x, s) = n {
                if *x == name && found.is_none() {
                    found = Some(*s);
                }
            }
        });
        found
    }

    fn walk<'a>(e: &'a RExpr, f: &mut impl FnMut(&'a RExpr)) {
        f(e);
        match e {
            RExpr::Const(_) | RExpr::Var(..) | RExpr::MakeClosure { .. } => {}
            RExpr::App(a, b) | RExpr::Prim2(_, a, b) => {
                walk(a, f);
                walk(b, f);
            }
            RExpr::If(a, b, c) => {
                walk(a, f);
                walk(b, f);
                walk(c, f);
            }
            RExpr::Letrec { values, body, .. } => {
                for (_, v) in values {
                    walk(v, f);
                }
                walk(body, f);
            }
            RExpr::Cons { head, tail, .. } | RExpr::Dcons { head, tail, .. } => {
                walk(head, f);
                walk(tail, f);
            }
            RExpr::Prim1(_, a) => walk(a, f),
            RExpr::Region { inner, .. } => walk(inner, f),
        }
    }

    #[test]
    fn params_resolve_to_local_slots() {
        let r = resolve("letrec add x y = x + y in add 1 2");
        let u = unit(&r, "add");
        assert_eq!(u.n_params, 2);
        assert_eq!(
            find_var(&u.body, Symbol::intern("x")),
            Some(SlotRef::Local(0))
        );
        assert_eq!(
            find_var(&u.body, Symbol::intern("y")),
            Some(SlotRef::Local(1))
        );
    }

    #[test]
    fn global_function_reference_is_direct() {
        let r = resolve("letrec f x = f x in f 1");
        let main = &r.units[r.main as usize];
        assert!(matches!(
            find_var(&main.body, Symbol::intern("f")),
            Some(SlotRef::GlobalFunc(0))
        ));
        // Self-recursion in a top-level function is also a global ref.
        let f = unit(&r, "f");
        assert!(matches!(
            find_var(&f.body, Symbol::intern("f")),
            Some(SlotRef::GlobalFunc(0))
        ));
    }

    #[test]
    fn nested_lambda_captures_outer_local() {
        // k is a local of `make`; the inner lambda must capture it. (The
        // lambda sits in argument position so lowering can't flatten it
        // into a curried parameter.)
        let r = resolve("letrec pass f = f; make k = pass (lambda(x). x + k) in (make 3) 4");
        let make = unit(&r, "make");
        let mut mk: Option<(u32, Vec<CaptureSrc>)> = None;
        walk(&make.body, &mut |e| {
            if let RExpr::MakeClosure { unit, captures } = e {
                mk = Some((*unit, captures.clone()));
            }
        });
        let (u, captures) = mk.expect("lambda stays a closure");
        let (u, captures) = (&u, &captures);
        assert_eq!(captures, &vec![CaptureSrc::Local(0)]);
        let lam = &r.units[*u as usize];
        assert_eq!(
            find_var(&lam.body, Symbol::intern("k")),
            Some(SlotRef::Capture(0))
        );
        assert_eq!(
            find_var(&lam.body, Symbol::intern("x")),
            Some(SlotRef::Local(0))
        );
    }

    #[test]
    fn nested_letrec_siblings_resolve_to_rec() {
        let r = resolve(
            "letrec go n =
               letrec ev x = if x = 0 then true else od (x - 1);
                      od x = if x = 0 then false else ev (x - 1)
               in ev n
             in go 4",
        );
        let ev = unit(&r, "ev");
        assert_eq!(
            find_var(&ev.body, Symbol::intern("od")),
            Some(SlotRef::Rec(1))
        );
        let od = unit(&r, "od");
        assert_eq!(
            find_var(&od.body, Symbol::intern("ev")),
            Some(SlotRef::Rec(0))
        );
        // The letrec body refers to the materialized closure slot.
        let go = unit(&r, "go");
        let RExpr::Letrec { group, body, .. } = &go.body else {
            panic!("expected letrec body");
        };
        let g = group.as_ref().expect("rec group");
        assert_eq!(g.units.len(), 2);
        assert_eq!(
            find_var(body, Symbol::intern("ev")),
            Some(SlotRef::Local(g.slots[0]))
        );
    }

    #[test]
    fn value_bindings_get_frame_slots_in_order() {
        let r = resolve("letrec f n = letrec a = n + 1; b = a + 1 in a + b in f 1");
        let f = unit(&r, "f");
        let RExpr::Letrec { group, values, .. } = &f.body else {
            panic!("expected letrec");
        };
        assert!(group.is_none());
        assert_eq!(values.len(), 2);
        // `b`'s expression sees `a`'s slot.
        assert_eq!(
            find_var(&values[1].1, Symbol::intern("a")),
            Some(SlotRef::Local(values[0].0))
        );
    }

    #[test]
    fn letrec_scope_is_restored_after_body() {
        // The second letrec's body must not see the first's binding.
        let r = resolve("letrec f n = (letrec a = 1 in a) + (letrec b = 2 in b) in f 0");
        let f = unit(&r, "f");
        // Both letrec bodies resolve to locals, and slots are distinct.
        let mut slots = Vec::new();
        walk(&f.body, &mut |e| {
            if let RExpr::Var(_, SlotRef::Local(s)) = e {
                if *s != 0 {
                    slots.push(*s);
                }
            }
        });
        assert_eq!(slots.len(), 2);
        assert_ne!(slots[0], slots[1]);
    }

    #[test]
    fn lambda_in_rec_member_captures_sibling_via_rec() {
        // Inside member `f`, a nested lambda referencing sibling `g`
        // captures it from f's rec group.
        let r = resolve(
            "letrec run h = h 0 in
             letrec f x = run (lambda(y). g y + x);
                    g x = x * 2
             in f 5",
        );
        let f = unit(&r, "f");
        let mut cap: Option<Vec<CaptureSrc>> = None;
        walk(&f.body, &mut |e| {
            if let RExpr::MakeClosure { captures, .. } = e {
                cap = Some(captures.clone());
            }
        });
        let cap = cap.expect("nested lambda");
        assert!(cap.contains(&CaptureSrc::Rec(1)), "captures: {cap:?}");
        assert!(cap.contains(&CaptureSrc::Local(0)), "captures: {cap:?}");
    }

    #[test]
    fn unknown_name_resolves_to_unbound() {
        // The typechecker would reject a truly free variable, so build
        // the IR directly: a bare `Var` in the program body.
        let ir = IrProgram {
            funcs: vec![],
            body: IrExpr::Var(Symbol::intern("ghost")),
            next_site: 0,
        };
        let r = resolve_program(&ir);
        let main = &r.units[r.main as usize];
        assert!(matches!(main.body, RExpr::Var(_, SlotRef::Unbound)));
    }

    #[test]
    fn startup_value_binding_sees_only_earlier_values() {
        // `b` references `a` (earlier: visible) — `a` referencing `c`
        // (later) must resolve Unbound, matching the interpreter.
        let ir = IrProgram {
            funcs: vec![
                crate::ir::IrFunc {
                    name: Symbol::intern("a"),
                    params: vec![],
                    body: IrExpr::Var(Symbol::intern("c")),
                },
                crate::ir::IrFunc {
                    name: Symbol::intern("b"),
                    params: vec![],
                    body: IrExpr::Var(Symbol::intern("a")),
                },
                crate::ir::IrFunc {
                    name: Symbol::intern("c"),
                    params: vec![],
                    body: IrExpr::Const(Const::Int(1)),
                },
            ],
            body: IrExpr::Const(Const::Nil),
            next_site: 0,
        };
        let r = resolve_program(&ir);
        let a = unit(&r, "a");
        assert!(matches!(a.body, RExpr::Var(_, SlotRef::Unbound)));
        let b = unit(&r, "b");
        assert!(matches!(b.body, RExpr::Var(_, SlotRef::GlobalVal(0))));
    }
}
