//! Runtime errors.

use crate::checked::SoundnessViolation;
use std::fmt;

/// A failure during program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Unbound identifier at run time (should be prevented by type
    /// checking; reachable when executing hand-built IR).
    Unbound {
        /// The identifier.
        name: String,
    },
    /// A value of the wrong kind reached a primitive or application.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it got.
        found: &'static str,
        /// The operation.
        op: &'static str,
    },
    /// `car`/`cdr` of the empty list.
    EmptyList {
        /// The operation.
        op: &'static str,
    },
    /// Integer division by zero.
    DivisionByZero,
    /// `DCONS` applied to a variable not bound to a cons cell.
    DconsOnNonPair {
        /// Kind of the value found.
        found: &'static str,
    },
    /// A reclaimed cell was read — an unsound storage annotation freed a
    /// reachable cell. (The escape analysis guarantees this never happens
    /// for annotations it licensed; this error existing is what makes the
    /// soundness tests meaningful.)
    UseAfterFree {
        /// The cell index.
        cell: u32,
    },
    /// Regions were popped out of order (an interpreter bug).
    RegionMismatch {
        /// The innermost active region, if any.
        expected: Option<u64>,
        /// The region the pop asked for.
        got: u64,
    },
    /// Checked mode caught an access to a cell freed by a wrong escape
    /// claim. Carries the full structured report (site, claim, access,
    /// region backtrace) the quarantine loop needs; boxed to keep the
    /// error type small.
    Soundness(Box<SoundnessViolation>),
    /// The configured step budget was exhausted (runaway recursion).
    StepLimitExceeded {
        /// The budget.
        limit: u64,
    },
    /// Region validation found a live cell escaping its region.
    EscapedRegionCell {
        /// The cell index.
        cell: u32,
    },
    /// The [`crate::FaultPlan`]'s heap capacity was exhausted: a rescue
    /// GC could not bring the live-cell count under the bound. This is a
    /// *recoverable* condition — the interpreter unwinds cleanly and the
    /// machine can be re-run with a larger bound.
    OutOfMemory {
        /// Live cells at the failed allocation.
        live: u64,
        /// The configured capacity.
        capacity: u64,
    },
    /// The per-call fuel budget ([`crate::InterpConfig::fuel`]) ran out.
    /// Unlike [`RuntimeError::StepLimitExceeded`] (a whole-machine
    /// runaway guard), fuel is counted from the start of each entry
    /// (`run`/`call`), so a server can meter every request separately.
    /// The interruption is deterministic: exactly `fuel` machine steps of
    /// the uninterrupted execution have run when this is raised.
    FuelExhausted {
        /// The fuel budget that was exhausted.
        fuel: u64,
    },
    /// The call-frame (VM) or continuation (tree-walker) depth limit
    /// ([`crate::InterpConfig::max_depth`]) was exceeded — deep non-tail
    /// recursion. Tail calls run in constant depth and never trip this.
    StackOverflow {
        /// The configured depth limit.
        limit: usize,
    },
    /// Execution was cancelled from outside through
    /// [`crate::InterpConfig::cancel`] (server shutdown, client abort).
    Cancelled,
    /// An internal execution-engine invariant failed (malformed bytecode
    /// or a compiler bug). Raised instead of panicking so a hosted
    /// runtime (e.g. a server worker) degrades to a per-request error
    /// rather than aborting the process.
    Internal {
        /// The broken invariant.
        what: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Unbound { name } => write!(f, "unbound identifier `{name}`"),
            RuntimeError::TypeMismatch {
                expected,
                found,
                op,
            } => write!(f, "{op}: expected {expected}, found {found}"),
            RuntimeError::EmptyList { op } => write!(f, "{op} of empty list"),
            RuntimeError::DivisionByZero => f.write_str("division by zero"),
            RuntimeError::DconsOnNonPair { found } => {
                write!(f, "DCONS target must be a cons cell, found {found}")
            }
            RuntimeError::UseAfterFree { cell } => {
                write!(f, "use of reclaimed cell #{cell}")
            }
            RuntimeError::RegionMismatch { expected, got } => match expected {
                Some(e) => write!(f, "regions popped out of order: expected #{e}, got #{got}"),
                None => write!(f, "region #{got} popped with no region active"),
            },
            RuntimeError::Soundness(v) => write!(f, "{v}"),
            RuntimeError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded")
            }
            RuntimeError::EscapedRegionCell { cell } => {
                write!(f, "cell #{cell} escaped its region (unsound annotation)")
            }
            RuntimeError::OutOfMemory { live, capacity } => {
                write!(f, "out of memory: {live} live cells at capacity {capacity}")
            }
            RuntimeError::FuelExhausted { fuel } => {
                write!(f, "fuel exhausted after {fuel} steps")
            }
            RuntimeError::StackOverflow { limit } => {
                write!(f, "stack overflow: call depth exceeded {limit}")
            }
            RuntimeError::Cancelled => f.write_str("cancelled"),
            RuntimeError::Internal { what } => {
                write!(f, "internal interpreter invariant failed: {what}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
