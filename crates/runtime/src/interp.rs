//! The nml abstract machine: an explicit-stack (CEK-style) interpreter
//! over the storage-annotated IR.
//!
//! Keeping control, environment, and continuation in explicit structures
//! gives the garbage collector an exact root set and makes region
//! validation possible: before a region pops, a full mark from the
//! machine state can prove no region cell is still reachable — turning
//! the paper's safety argument into an executable check.

use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::gc::Marker;
use crate::heap::{CellRef, GcKind, Heap, HeapConfig, RegionId};
use crate::value::{Closure, Env, PartialApp, PrimApp, Value};
use nml_opt::{AllocMode, IrExpr, IrFunc, IrProgram, SiteId};
use nml_syntax::{Const, Prim, Symbol};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How often (in machine steps) the engines poll the cooperative
/// [`InterpConfig::cancel`] flag. A power of two so the poll is a mask.
pub(crate) const CANCEL_POLL_MASK: u64 = 1023;

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Heap/GC settings.
    pub heap: HeapConfig,
    /// Abort after this many machine steps (runaway-recursion guard).
    pub step_limit: u64,
    /// Before each region pop, prove (by a full mark) that no region cell
    /// is still reachable; error out otherwise. Slow — for tests.
    pub validate_regions: bool,
    /// Fault-injection schedule (inert by default); see
    /// [`crate::fault::FaultPlan`].
    pub fault: FaultPlan,
    /// Per-entry fuel budget: each `run`/`call` may execute at most this
    /// many machine steps before failing with
    /// [`RuntimeError::FuelExhausted`]. Unlike `step_limit` (a
    /// whole-machine guard counted across the interpreter's lifetime),
    /// fuel restarts at every entry, so a persistent server can meter
    /// requests individually. `None` = unlimited.
    pub fuel: Option<u64>,
    /// Depth limit for the call stack: live VM call frames, or live
    /// continuation frames in the tree-walker. Deep *non-tail* recursion
    /// fails with [`RuntimeError::StackOverflow`] instead of growing
    /// memory without bound; tail calls run in constant depth and are
    /// unaffected.
    pub max_depth: usize,
    /// Cooperative cancellation flag, polled every
    /// [`CANCEL_POLL_MASK`]+1 steps. When set, execution stops with
    /// [`RuntimeError::Cancelled`]. Shared (`Arc`) so a server can cancel
    /// an in-flight request from another thread.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            heap: HeapConfig::default(),
            step_limit: 200_000_000,
            validate_regions: false,
            fault: FaultPlan::default(),
            fuel: None,
            max_depth: 1_000_000,
            cancel: None,
        }
    }
}

/// Continuation frames.
enum Frame<'p> {
    /// Have the callee expression's value next; then evaluate `arg`.
    App1 {
        arg: &'p IrExpr,
        env: Env<'p>,
    },
    /// Have the argument's value next; then apply `fun`.
    App2 {
        fun: Value<'p>,
    },
    If {
        then_e: &'p IrExpr,
        else_e: &'p IrExpr,
        env: Env<'p>,
    },
    Cons1 {
        tail: &'p IrExpr,
        env: Env<'p>,
        alloc: AllocMode,
        site: SiteId,
    },
    Cons2 {
        head: Value<'p>,
        alloc: AllocMode,
        site: SiteId,
    },
    Dcons1 {
        tail: &'p IrExpr,
        env: Env<'p>,
        cell: CellRef,
        site: SiteId,
    },
    Dcons2 {
        head: Value<'p>,
        cell: CellRef,
        site: SiteId,
    },
    Prim1 {
        prim: Prim,
    },
    Prim2a {
        prim: Prim,
        rhs: &'p IrExpr,
        env: Env<'p>,
    },
    Prim2b {
        prim: Prim,
        lhs: Value<'p>,
    },
    /// Sequential evaluation of a `letrec`'s non-lambda bindings.
    Letrec {
        bindings: Vec<(Symbol, &'p IrExpr)>,
        idx: usize,
        body: &'p IrExpr,
        env: Env<'p>,
    },
    PopRegion {
        id: RegionId,
    },
}

enum Ctrl<'p> {
    Eval(&'p IrExpr, Env<'p>),
    Ret(Value<'p>),
}

/// The instrumented interpreter for one IR program.
pub struct Interp<'p> {
    program: &'p IrProgram,
    /// The instrumented heap (public for inspection in tests/benches).
    pub heap: Heap<'p>,
    globals: HashMap<Symbol, Value<'p>>,
    config: InterpConfig,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter and evaluates the program's top-level
    /// *value* bindings (non-function `letrec` bindings), in order.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised while evaluating a value binding.
    pub fn new(program: &'p IrProgram) -> Result<Self, RuntimeError> {
        Interp::with_config(program, InterpConfig::default())
    }

    /// Creates an interpreter with explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`Interp::new`].
    pub fn with_config(program: &'p IrProgram, config: InterpConfig) -> Result<Self, RuntimeError> {
        let mut heap = Heap::new(config.heap.clone());
        heap.set_fault_plan(config.fault.clone());
        let mut interp = Interp {
            program,
            heap,
            globals: HashMap::new(),
            config,
        };
        // Prebuild the global map so lookup is a single probe instead of
        // an O(globals) scan per miss. A name resolves to the textually
        // first binding, and only if that binding is a function; value
        // bindings overwrite their entry as startup evaluates them (the
        // map insert below), preserving the original precedence.
        let mut seen: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
        for f in &program.funcs {
            if seen.insert(f.name) && f.is_function() {
                interp.globals.insert(f.name, Value::Func(f));
            }
        }
        for f in &program.funcs {
            if !f.is_function() {
                let v = interp.eval(&f.body, Env::empty())?;
                interp.globals.insert(f.name, v);
            }
        }
        Ok(interp)
    }

    /// Runs the program body to a value.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during evaluation.
    pub fn run(&mut self) -> Result<Value<'p>, RuntimeError> {
        self.eval(&self.program.body, Env::empty())
    }

    /// Calls top-level function `name` with exactly its arity in `args`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unbound`] for unknown names, a
    /// [`RuntimeError::TypeMismatch`] for arity mismatch, and any error
    /// raised by the body.
    pub fn call(&mut self, name: Symbol, args: Vec<Value<'p>>) -> Result<Value<'p>, RuntimeError> {
        let func = self
            .program
            .func(name)
            .filter(|f| f.is_function())
            .ok_or_else(|| RuntimeError::Unbound {
                name: name.to_string(),
            })?;
        if func.params.len() != args.len() {
            return Err(RuntimeError::TypeMismatch {
                expected: "full application",
                found: "wrong arity",
                op: "call",
            });
        }
        let mut env = Env::empty();
        for (p, a) in func.params.iter().zip(args) {
            env = env.bind(*p, a);
        }
        self.eval(&func.body, env)
    }

    /// Looks up a variable: lexical environment, then one probe of the
    /// prebuilt global map (which already holds `Func` values for every
    /// reachable top-level function).
    fn lookup(&self, name: Symbol, env: &Env<'p>) -> Result<Value<'p>, RuntimeError> {
        if let Some(v) = env.lookup(name) {
            return Ok(v);
        }
        if let Some(v) = self.globals.get(&name) {
            return Ok(v.clone());
        }
        Err(RuntimeError::Unbound {
            name: name.to_string(),
        })
    }

    /// The machine entry: runs the loop, and on *any* error closes the
    /// dynamic extents the aborted computation left open, so the heap is
    /// consistent for the next entry (a persistent server re-enters the
    /// same interpreter after failed requests).
    fn eval(&mut self, expr: &'p IrExpr, env: Env<'p>) -> Result<Value<'p>, RuntimeError> {
        let mut stack: Vec<Frame<'p>> = Vec::new();
        let r = self.eval_loop(expr, env, &mut stack);
        if r.is_err() {
            // Innermost extents first (reverse frame order is LIFO). No
            // live value can reference these cells: the computation that
            // owned them produced no result.
            for f in stack.iter().rev() {
                if let Frame::PopRegion { id } = f {
                    let _ = self.heap.pop_region(*id);
                }
            }
        }
        r
    }

    /// The machine loop.
    fn eval_loop(
        &mut self,
        expr: &'p IrExpr,
        env: Env<'p>,
        stack: &mut Vec<Frame<'p>>,
    ) -> Result<Value<'p>, RuntimeError> {
        let mut ctrl = Ctrl::Eval(expr, env);
        // Fuel is metered from this entry, not machine birth, so every
        // `run`/`call` gets the full budget.
        let fuel_limit = self
            .config
            .fuel
            .map(|f| self.heap.stats.steps.saturating_add(f));
        loop {
            if let Some(limit) = fuel_limit {
                if self.heap.stats.steps >= limit {
                    return Err(RuntimeError::FuelExhausted {
                        fuel: self.config.fuel.unwrap_or(0),
                    });
                }
            }
            self.heap.stats.steps += 1;
            if self.heap.stats.steps > self.config.step_limit {
                return Err(RuntimeError::StepLimitExceeded {
                    limit: self.config.step_limit,
                });
            }
            if self.heap.stats.steps & CANCEL_POLL_MASK == 0 {
                if let Some(c) = &self.config.cancel {
                    if c.load(Ordering::Relaxed) {
                        return Err(RuntimeError::Cancelled);
                    }
                }
            }
            if stack.len() > self.config.max_depth {
                return Err(RuntimeError::StackOverflow {
                    limit: self.config.max_depth,
                });
            }
            let forced = self.heap.take_forced_gc();
            if forced || self.heap.should_collect() {
                self.collect(&ctrl, stack, forced);
            }
            ctrl = match ctrl {
                Ctrl::Eval(e, env) => self.step_eval(e, env, stack)?,
                Ctrl::Ret(v) => match stack.pop() {
                    None => return Ok(v),
                    Some(frame) => self.step_ret(v, frame, stack)?,
                },
            };
        }
    }

    /// Replaces the per-entry fuel budget (`None` = unlimited). A server
    /// worker calls this before each request.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.config.fuel = fuel;
    }

    /// Installs (or clears) the shared cooperative-cancellation flag.
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.config.cancel = cancel;
    }

    fn step_eval(
        &mut self,
        e: &'p IrExpr,
        env: Env<'p>,
        stack: &mut Vec<Frame<'p>>,
    ) -> Result<Ctrl<'p>, RuntimeError> {
        Ok(match e {
            IrExpr::Const(c) => Ctrl::Ret(match c {
                Const::Int(n) => Value::Int(*n),
                Const::Bool(b) => Value::Bool(*b),
                Const::Nil => Value::Nil,
                Const::Prim(p) => Value::Prim(*p),
            }),
            IrExpr::Var(x) => Ctrl::Ret(self.lookup(*x, &env)?),
            IrExpr::App(f, a) => {
                stack.push(Frame::App1 {
                    arg: a,
                    env: env.clone(),
                });
                Ctrl::Eval(f, env)
            }
            IrExpr::Lambda { param, body, .. } => Ctrl::Ret(Value::Closure(Rc::new(Closure {
                param: *param,
                body,
                env,
            }))),
            IrExpr::If(c, t, f) => {
                stack.push(Frame::If {
                    then_e: t,
                    else_e: f,
                    env: env.clone(),
                });
                Ctrl::Eval(c, env)
            }
            IrExpr::Letrec(bs, body) => {
                let mut lambdas = Vec::new();
                let mut values = Vec::new();
                for (name, be) in bs {
                    if let IrExpr::Lambda { param, body, .. } = be {
                        lambdas.push((*name, *param, body.as_ref()));
                    } else {
                        values.push((*name, be));
                    }
                }
                let env2 = if lambdas.is_empty() {
                    env
                } else {
                    env.bind_rec(Rc::new(lambdas))
                };
                if values.is_empty() {
                    Ctrl::Eval(body, env2)
                } else {
                    let first = values[0].1;
                    stack.push(Frame::Letrec {
                        bindings: values,
                        idx: 0,
                        body,
                        env: env2.clone(),
                    });
                    Ctrl::Eval(first, env2)
                }
            }
            IrExpr::Cons {
                alloc,
                head,
                tail,
                site,
            } => {
                stack.push(Frame::Cons1 {
                    tail,
                    env: env.clone(),
                    alloc: *alloc,
                    site: *site,
                });
                Ctrl::Eval(head, env)
            }
            IrExpr::Dcons {
                reused,
                head,
                tail,
                site,
            } => {
                let target = self.lookup(*reused, &env)?;
                let cell = match target {
                    Value::Pair(c) => c,
                    other => {
                        return Err(RuntimeError::DconsOnNonPair {
                            found: other.kind(),
                        })
                    }
                };
                stack.push(Frame::Dcons1 {
                    tail,
                    env: env.clone(),
                    cell,
                    site: *site,
                });
                Ctrl::Eval(head, env)
            }
            IrExpr::Prim1(p, a) => {
                stack.push(Frame::Prim1 { prim: *p });
                Ctrl::Eval(a, env)
            }
            IrExpr::Prim2(p, a, b) => {
                stack.push(Frame::Prim2a {
                    prim: *p,
                    rhs: b,
                    env: env.clone(),
                });
                Ctrl::Eval(a, env)
            }
            IrExpr::Region { kind, inner, .. } => {
                // A denied push means the dynamic extent never opens: the
                // region's allocations fall back to an enclosing region
                // of the same kind or to the GC'd heap. Reclamation is
                // only ever *delayed*, never hastened, so results are
                // unchanged.
                if self.heap.fault_deny_region() {
                    Ctrl::Eval(inner, env)
                } else {
                    let id = self.heap.push_region(*kind);
                    stack.push(Frame::PopRegion { id });
                    Ctrl::Eval(inner, env)
                }
            }
        })
    }

    fn step_ret(
        &mut self,
        v: Value<'p>,
        frame: Frame<'p>,
        stack: &mut Vec<Frame<'p>>,
    ) -> Result<Ctrl<'p>, RuntimeError> {
        Ok(match frame {
            Frame::App1 { arg, env } => {
                stack.push(Frame::App2 { fun: v });
                Ctrl::Eval(arg, env)
            }
            Frame::App2 { fun } => self.apply(fun, v)?,
            Frame::If {
                then_e,
                else_e,
                env,
            } => match v {
                Value::Bool(true) => Ctrl::Eval(then_e, env),
                Value::Bool(false) => Ctrl::Eval(else_e, env),
                other => {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "bool",
                        found: other.kind(),
                        op: "if",
                    })
                }
            },
            Frame::Cons1 {
                tail,
                env,
                alloc,
                site,
            } => {
                stack.push(Frame::Cons2 {
                    head: v,
                    alloc,
                    site,
                });
                Ctrl::Eval(tail, env)
            }
            Frame::Cons2 { head, alloc, site } => {
                let cell = self.heap.alloc_at(head, v, alloc, Some(site))?;
                Ctrl::Ret(Value::Pair(cell))
            }
            Frame::Dcons1 {
                tail,
                env,
                cell,
                site,
            } => {
                stack.push(Frame::Dcons2 {
                    head: v,
                    cell,
                    site,
                });
                Ctrl::Eval(tail, env)
            }
            Frame::Dcons2 { head, cell, site } => {
                // Under a fault, the reuse retreats to a fresh heap cell.
                // Sound: `DCONS` is only licensed when the target cell is
                // dead, so writing the fresh cell instead leaves every
                // reachable structure identical (the target just stays
                // garbage until the GC finds it).
                if self.heap.fault_dcons_retreat() {
                    let fresh = self.heap.alloc_at(head, v, AllocMode::Heap, Some(site))?;
                    Ctrl::Ret(Value::Pair(fresh))
                } else if self.config.heap.checked {
                    // Checked mode runs the reuse as copy-then-retire:
                    // the result goes to a fresh cell and the
                    // claimed-dead target is tombstoned, so any later
                    // access to the target disproves the reuse claim
                    // instead of silently reading the overwrite.
                    let fresh = self.heap.alloc_at(head, v, AllocMode::Heap, Some(site))?;
                    self.heap.retire_reused(cell, Some(site))?;
                    self.heap.stats.reuse_copies += 1;
                    self.heap.record_reuse(site);
                    Ctrl::Ret(Value::Pair(fresh))
                } else {
                    self.heap.set(cell, head, v)?;
                    self.heap.stats.dcons_reuses += 1;
                    self.heap.record_reuse(site);
                    Ctrl::Ret(Value::Pair(cell))
                }
            }
            Frame::Prim1 { prim } => Ctrl::Ret(self.prim1(prim, v)?),
            Frame::Prim2a { prim, rhs, env } => {
                stack.push(Frame::Prim2b { prim, lhs: v });
                Ctrl::Eval(rhs, env)
            }
            Frame::Prim2b { prim, lhs } => Ctrl::Ret(self.prim2(prim, lhs, v)?),
            Frame::Letrec {
                bindings,
                idx,
                body,
                env,
            } => {
                let (name, _) = bindings[idx];
                let env2 = env.bind(name, v);
                if idx + 1 < bindings.len() {
                    let next = bindings[idx + 1].1;
                    stack.push(Frame::Letrec {
                        bindings,
                        idx: idx + 1,
                        body,
                        env: env2.clone(),
                    });
                    Ctrl::Eval(next, env2)
                } else {
                    Ctrl::Eval(body, env2)
                }
            }
            Frame::PopRegion { id } => {
                if self.config.validate_regions {
                    self.validate_region(&v, stack)?;
                }
                self.heap.pop_region(id)?;
                Ctrl::Ret(v)
            }
        })
    }

    /// Applies `fun` to one argument.
    fn apply(&mut self, fun: Value<'p>, arg: Value<'p>) -> Result<Ctrl<'p>, RuntimeError> {
        match fun {
            Value::Closure(clo) => {
                let env = clo.env.bind(clo.param, arg);
                Ok(Ctrl::Eval(clo.body, env))
            }
            Value::Func(func) => self.apply_func(func, Vec::new(), arg),
            Value::PartialFunc(p) => {
                let applied = p.applied.clone();
                self.apply_func(p.func, applied, arg)
            }
            Value::Prim(prim) => {
                if prim.arity() == 1 {
                    Ok(Ctrl::Ret(self.prim1(prim, arg)?))
                } else {
                    Ok(Ctrl::Ret(Value::PrimApp(Rc::new(PrimApp {
                        prim,
                        first: arg,
                    }))))
                }
            }
            Value::PrimApp(p) => {
                let first = p.first.clone();
                Ok(Ctrl::Ret(self.prim2(p.prim, first, arg)?))
            }
            other => Err(RuntimeError::TypeMismatch {
                expected: "function",
                found: other.kind(),
                op: "application",
            }),
        }
    }

    /// Applies a top-level function to one more argument, entering the
    /// body when saturated.
    fn apply_func(
        &mut self,
        func: &'p IrFunc,
        mut args: Vec<Value<'p>>,
        arg: Value<'p>,
    ) -> Result<Ctrl<'p>, RuntimeError> {
        args.push(arg);
        if args.len() == func.params.len() {
            let mut env = Env::empty();
            for (p, a) in func.params.iter().zip(args) {
                env = env.bind(*p, a);
            }
            Ok(Ctrl::Eval(&func.body, env))
        } else {
            Ok(Ctrl::Ret(Value::PartialFunc(Rc::new(PartialApp {
                func,
                applied: args,
            }))))
        }
    }

    fn prim1(&mut self, p: Prim, v: Value<'p>) -> Result<Value<'p>, RuntimeError> {
        prim1(&self.heap, p, v)
    }

    fn prim2(&mut self, p: Prim, a: Value<'p>, b: Value<'p>) -> Result<Value<'p>, RuntimeError> {
        prim2(&mut self.heap, p, a, b)
    }

    /// Runs a garbage collection with the machine state as roots. A
    /// fault-forced GC is always a full collection (the fault models
    /// external memory pressure); otherwise the heap picks minor or
    /// major. A minor that fails to relieve the pressure escalates to a
    /// major in the same poll.
    fn collect(&mut self, ctrl: &Ctrl<'p>, stack: &[Frame<'p>], force_major: bool) {
        if !force_major && self.heap.collect_kind() == GcKind::Minor {
            let mut m = Marker::new(&self.heap);
            match ctrl {
                Ctrl::Eval(_, env) => m.root_env(env),
                Ctrl::Ret(v) => m.root_value(v),
            }
            self.mark_roots(&mut m, stack);
            m.root_remset(&self.heap);
            let marked = m.finish_minor(&self.heap);
            self.heap.sweep_minor(&marked);
            if !self.heap.should_collect() {
                return;
            }
        }
        let mut m = Marker::new(&self.heap);
        match ctrl {
            Ctrl::Eval(_, env) => m.root_env(env),
            Ctrl::Ret(v) => m.root_value(v),
        }
        self.mark_roots(&mut m, stack);
        let marked = m.finish(&self.heap);
        self.heap.sweep(&marked);
    }

    /// Registers the exact root set — globals and the continuation stack
    /// — with the marker, by reference (the control value is rooted by
    /// the caller). Nothing is cloned here.
    fn mark_roots(&self, m: &mut Marker<'p>, stack: &[Frame<'p>]) {
        for v in self.globals.values() {
            m.root_value(v);
        }
        for f in stack {
            match f {
                Frame::App1 { env, .. }
                | Frame::If { env, .. }
                | Frame::Cons1 { env, .. }
                | Frame::Prim2a { env, .. }
                | Frame::Letrec { env, .. } => m.root_env(env),
                Frame::App2 { fun } => m.root_value(fun),
                Frame::Cons2 { head, .. } => m.root_value(head),
                // The DCONS target cell is live even when no variable
                // still references it: it becomes the result.
                Frame::Dcons1 { env, cell, .. } => {
                    m.root_env(env);
                    m.root_cell(*cell);
                }
                Frame::Dcons2 { head, cell, .. } => {
                    m.root_value(head);
                    m.root_cell(*cell);
                }
                Frame::Prim2b { lhs, .. } => m.root_value(lhs),
                Frame::Prim1 { .. } | Frame::PopRegion { .. } => {}
            }
        }
    }

    /// Proves no cell of the innermost region is reachable from the
    /// machine state (called just before the region pops).
    fn validate_region(
        &mut self,
        result: &Value<'p>,
        stack: &[Frame<'p>],
    ) -> Result<(), RuntimeError> {
        let mut m = Marker::new(&self.heap);
        m.root_value(result);
        self.mark_roots(&mut m, stack);
        let marked = m.finish(&self.heap);
        for &idx in self.heap.innermost_region_cells() {
            if marked[idx as usize] {
                return Err(RuntimeError::EscapedRegionCell { cell: idx });
            }
        }
        Ok(())
    }

    /// Builds a proper list from `items` (testing/benchmark helper).
    pub fn make_list(&mut self, items: impl IntoIterator<Item = Value<'p>>) -> Value<'p> {
        let items: Vec<Value<'p>> = items.into_iter().collect();
        let mut acc = Value::Nil;
        for v in items.into_iter().rev() {
            let cell = self.heap.alloc(v, acc, AllocMode::Heap);
            acc = Value::Pair(cell);
        }
        acc
    }

    /// Builds a list of integers.
    pub fn make_int_list(&mut self, items: &[i64]) -> Value<'p> {
        self.make_list(items.iter().map(|&n| Value::Int(n)))
    }

    /// Builds a tuple value.
    pub fn make_tuple(&mut self, a: Value<'p>, b: Value<'p>) -> Value<'p> {
        let cell = self.heap.alloc(a, b, AllocMode::Heap);
        Value::Tuple(cell)
    }

    /// Reads a list of integers back out of the heap.
    ///
    /// # Errors
    ///
    /// Type mismatches if the value is not a proper `int list`, or
    /// [`RuntimeError::UseAfterFree`] for dangling cells.
    pub fn read_int_list(&self, mut v: Value<'p>) -> Result<Vec<i64>, RuntimeError> {
        let mut out = Vec::new();
        loop {
            match v {
                Value::Nil => return Ok(out),
                Value::Pair(c) => {
                    match self.heap.car(c)? {
                        Value::Int(n) => out.push(n),
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "int",
                                found: other.kind(),
                                op: "read_int_list",
                            })
                        }
                    }
                    v = self.heap.cdr(c)?;
                }
                other => {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "list",
                        found: other.kind(),
                        op: "read_int_list",
                    })
                }
            }
        }
    }
}

/// Applies a saturated unary primitive. Shared by the tree-walker and
/// the bytecode VM so the two engines cannot drift.
#[inline]
pub(crate) fn prim1<'p>(heap: &Heap<'p>, p: Prim, v: Value<'p>) -> Result<Value<'p>, RuntimeError> {
    match p {
        Prim::Car => match v {
            Value::Pair(c) => heap.car(c),
            Value::Nil => Err(RuntimeError::EmptyList { op: "car" }),
            other => Err(RuntimeError::TypeMismatch {
                expected: "list",
                found: other.kind(),
                op: "car",
            }),
        },
        Prim::Cdr => match v {
            Value::Pair(c) => heap.cdr(c),
            Value::Nil => Err(RuntimeError::EmptyList { op: "cdr" }),
            other => Err(RuntimeError::TypeMismatch {
                expected: "list",
                found: other.kind(),
                op: "cdr",
            }),
        },
        Prim::Null => match v {
            Value::Nil => Ok(Value::Bool(true)),
            Value::Pair(_) => Ok(Value::Bool(false)),
            other => Err(RuntimeError::TypeMismatch {
                expected: "list",
                found: other.kind(),
                op: "null",
            }),
        },
        Prim::Fst => match v {
            Value::Tuple(c) => heap.car(c),
            other => Err(RuntimeError::TypeMismatch {
                expected: "tuple",
                found: other.kind(),
                op: "fst",
            }),
        },
        Prim::Snd => match v {
            Value::Tuple(c) => heap.cdr(c),
            other => Err(RuntimeError::TypeMismatch {
                expected: "tuple",
                found: other.kind(),
                op: "snd",
            }),
        },
        other => Err(RuntimeError::TypeMismatch {
            expected: "unary primitive",
            found: "binary primitive",
            op: other.name(),
        }),
    }
}

/// Applies a saturated binary primitive (shared by both engines).
#[inline]
pub(crate) fn prim2<'p>(
    heap: &mut Heap<'p>,
    p: Prim,
    a: Value<'p>,
    b: Value<'p>,
) -> Result<Value<'p>, RuntimeError> {
    if p == Prim::Cons {
        let cell = heap.alloc_at(a, b, AllocMode::Heap, None)?;
        return Ok(Value::Pair(cell));
    }
    if p == Prim::MkPair {
        let cell = heap.alloc_at(a, b, AllocMode::Heap, None)?;
        return Ok(Value::Tuple(cell));
    }
    let (x, y) = match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => (*x, *y),
        _ => {
            return Err(RuntimeError::TypeMismatch {
                expected: "int",
                found: if matches!(a, Value::Int(_)) {
                    b.kind()
                } else {
                    a.kind()
                },
                op: p.name(),
            })
        }
    };
    Ok(match p {
        Prim::Add => Value::Int(x.wrapping_add(y)),
        Prim::Sub => Value::Int(x.wrapping_sub(y)),
        Prim::Mul => Value::Int(x.wrapping_mul(y)),
        Prim::Div => {
            if y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(x.wrapping_div(y))
        }
        Prim::Eq => Value::Bool(x == y),
        Prim::Ne => Value::Bool(x != y),
        Prim::Lt => Value::Bool(x < y),
        Prim::Le => Value::Bool(x <= y),
        Prim::Gt => Value::Bool(x > y),
        Prim::Ge => Value::Bool(x >= y),
        Prim::Cons | Prim::Car | Prim::Cdr | Prim::Null | Prim::MkPair | Prim::Fst | Prim::Snd => {
            unreachable!("handled above")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_opt::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn run_src(src: &str) -> (Vec<i64>, crate::stats::RuntimeStats) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let mut interp = Interp::new(&ir).expect("init");
        let v = interp.run().expect("run");
        let ints = interp.read_int_list(v).expect("int list result");
        (ints, interp.heap.stats)
    }

    fn run_int(src: &str) -> i64 {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let mut interp = Interp::new(&ir).expect("init");
        match interp.run().expect("run") {
            Value::Int(n) => n,
            other => panic!("expected int, got {other}"),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run_int("1 + 2 * 3"), 7);
        assert_eq!(run_int("(10 - 4) / 2"), 3);
        assert_eq!(run_int("if 2 < 3 then 1 else 0"), 1);
    }

    #[test]
    fn list_construction_and_car() {
        assert_eq!(run_int("car [42, 1]"), 42);
        assert_eq!(run_int("car (cdr [1, 2, 3])"), 2);
    }

    #[test]
    fn append_computes_correctly() {
        let (v, stats) = run_src(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1, 2] [3, 4]",
        );
        assert_eq!(v, vec![1, 2, 3, 4]);
        // 4 literal cells + 2 result spine cells.
        assert_eq!(stats.heap_allocs, 6);
    }

    #[test]
    fn partition_sort_sorts() {
        let (v, _) = run_src(
            r#"
            letrec
              append x y = if (null x) then y
                           else cons (car x) (append (cdr x) y);
              split p x l h =
                if (null x) then (cons l (cons h nil))
                else if (car x) < p
                     then split p (cdr x) (cons (car x) l) h
                     else split p (cdr x) l (cons (car x) h);
              ps x = if (null x) then nil
                     else append (ps (car (split (car x) (cdr x) nil nil)))
                                 (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
            in ps [5, 2, 7, 1, 3, 4]
            "#,
        );
        assert_eq!(v, vec![1, 2, 3, 4, 5, 7]);
    }

    #[test]
    fn higher_order_map() {
        let (v, _) = run_src(
            "letrec map f l = if (null l) then nil
                              else cons (f (car l)) (map f (cdr l))
             in map (lambda(x). x * x) [1, 2, 3]",
        );
        assert_eq!(v, vec![1, 4, 9]);
    }

    #[test]
    fn closures_capture_environment() {
        assert_eq!(
            run_int("letrec make x = lambda(y). x + y in (make 10) 5"),
            15
        );
    }

    #[test]
    fn inner_letrec_recursion() {
        assert_eq!(
            run_int(
                "letrec go n = letrec fact k = if k = 0 then 1 else k * fact (k - 1)
                               in fact n
                 in go 5"
            ),
            120
        );
    }

    #[test]
    fn inner_letrec_value_bindings() {
        assert_eq!(
            run_int("letrec f x = letrec a = x + 1; b = a * 2 in b in f 3"),
            8
        );
    }

    #[test]
    fn partial_application_of_top_level() {
        assert_eq!(
            run_int("letrec add x y = x + y; apply f = f 10 in apply (add 5)"),
            15
        );
    }

    #[test]
    fn primitive_as_value() {
        // map (cons 9) over [[1],[2]] = [[9,1],[9,2]].
        assert_eq!(
            run_int(
                "letrec map f l = if (null l) then nil
                                  else cons (f (car l)) (map f (cdr l))
                 in car (car (map (cons 9) [[1], [2]]))"
            ),
            9
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let p = parse_program("1 / 0").unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir).unwrap();
        assert_eq!(i.run().unwrap_err(), RuntimeError::DivisionByZero);
    }

    #[test]
    fn car_of_nil_errors() {
        let p = parse_program("car nil").unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir).unwrap();
        assert!(matches!(
            i.run().unwrap_err(),
            RuntimeError::EmptyList { .. }
        ));
    }

    #[test]
    fn step_limit_catches_divergence() {
        let p = parse_program("letrec loop x = loop x in loop 1").unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::with_config(
            &ir,
            InterpConfig {
                step_limit: 10_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(
            i.run().unwrap_err(),
            RuntimeError::StepLimitExceeded { .. }
        ));
    }

    #[test]
    fn gc_reclaims_garbage() {
        // Build and drop many short-lived lists; with a small threshold
        // the GC must run and the footprint stay bounded.
        let src = "letrec len l = if (null l) then 0 else 1 + len (cdr l);
                          go n acc = if n = 0 then acc
                                     else go (n - 1) (acc + len [1, 2, 3, 4, 5])
                   in go 200 0";
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::with_config(
            &ir,
            InterpConfig {
                heap: HeapConfig {
                    gc_threshold: 64,
                    gc_enabled: true,
                    checked: false,
                    ..HeapConfig::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let v = i.run().unwrap();
        assert!(matches!(v, Value::Int(1000)));
        assert!(i.heap.stats.gc_runs > 0, "GC must have run");
        assert!(
            i.heap.stats.gc_swept > 0,
            "garbage must have been reclaimed"
        );
        assert!(
            i.heap.footprint() < 1100,
            "footprint bounded by reuse, got {}",
            i.heap.footprint()
        );
    }

    #[test]
    fn call_api_invokes_functions() {
        let src = "letrec double x = x * 2 in double 1";
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir).unwrap();
        let r = i
            .call(Symbol::intern("double"), vec![Value::Int(21)])
            .unwrap();
        assert!(matches!(r, Value::Int(42)));
    }

    #[test]
    fn make_and_read_lists() {
        let src = "0";
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir).unwrap();
        let l = i.make_int_list(&[1, 2, 3]);
        assert_eq!(i.read_int_list(l).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn allocation_sites_are_profiled() {
        let src = "letrec rep n = if n = 0 then nil else cons n (rep (n - 1))
                   in cons 0 (rep 9)";
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir).unwrap();
        i.run().unwrap();
        let hot = i.heap.hot_sites();
        assert_eq!(hot.len(), 2, "two cons sites: {hot:?}");
        // The site inside `rep` allocated 9 cells; the body site 1.
        assert_eq!(hot[0].1, 9);
        assert_eq!(hot[1].1, 1);
        assert_eq!(
            ir.site_owner(hot[0].0).map(|s| s.to_string()),
            Some("rep".to_owned())
        );
        assert_eq!(ir.site_owner(hot[1].0), None, "body site has no owner");
    }

    #[test]
    fn tuples_construct_and_project() {
        assert_eq!(run_int("fst (41 + 1, 0)"), 42);
        assert_eq!(run_int("snd (0, 7) * 6"), 42);
        // Tuples of lists round-trip through projections.
        let (v, stats) = run_src("letrec swap p = (snd p, fst p) in fst (swap ([9], [1, 2]))");
        assert_eq!(v, vec![1, 2]);
        // Tuple cells are counted as allocations.
        assert!(stats.heap_allocs >= 2);
    }

    #[test]
    fn fst_of_list_is_a_runtime_type_error() {
        // (Untyped IR path: the type checker rejects this, but the
        // interpreter must fail cleanly, not crash.)
        let p = parse_program("0").unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir).unwrap();
        let l = i.make_int_list(&[1]);
        let err = i.prim1(Prim::Fst, l).unwrap_err();
        assert!(matches!(err, RuntimeError::TypeMismatch { op: "fst", .. }));
    }

    #[test]
    fn top_level_value_bindings_evaluate_once() {
        assert_eq!(run_int("letrec k = 2 + 3; f x = x * k in f 4"), 20);
    }

    #[test]
    fn root_count_is_exact_for_machine_state() {
        // Two value globals + one function global = 3 global roots; the
        // control value, an App2 function, and a Dcons2 frame (value +
        // cell) add 4 more. The root set is exact — no duplicates, no
        // misses — so the count is fully predictable.
        let src = "letrec k = 1; j = 2; f x = x in 0";
        let p = parse_program(src).unwrap();
        let info = infer_program(&p).unwrap();
        let ir = lower_program(&p, &info);
        let i = Interp::new(&ir).unwrap();
        let stack = vec![
            Frame::App2 { fun: Value::Int(1) },
            Frame::Prim1 { prim: Prim::Car },
            Frame::Dcons2 {
                head: Value::Int(2),
                cell: CellRef(0),
                site: SiteId(0),
            },
        ];
        let mut m = Marker::new(&i.heap);
        let ctrl_value = Value::Int(0);
        m.root_value(&ctrl_value);
        i.mark_roots(&mut m, &stack);
        assert_eq!(m.roots_seen(), 3 + 1 + 1 + 2);
    }
}

#[cfg(test)]
mod letrec_edge_tests {
    use super::*;
    use nml_opt::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn try_run(src: &str) -> Result<String, RuntimeError> {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let mut i = Interp::new(&ir)?;
        i.run().map(|v| v.to_string())
    }

    #[test]
    fn cyclic_value_binding_is_a_clean_unbound_error() {
        // `letrec x = x + 1` cannot be evaluated strictly: the reference
        // to x is an error, not a hang or a panic.
        let err = try_run("letrec f n = letrec x = x + 1 in x in f 0").unwrap_err();
        assert!(matches!(err, RuntimeError::Unbound { .. }), "{err:?}");
    }

    #[test]
    fn forward_reference_between_value_bindings_errors() {
        // y is evaluated before z exists (strict, sequential).
        let err = try_run("letrec f n = letrec y = z + 1; z = 2 in y in f 0").unwrap_err();
        assert!(matches!(err, RuntimeError::Unbound { .. }), "{err:?}");
    }

    #[test]
    fn backward_reference_between_value_bindings_works() {
        let out = try_run("letrec f n = letrec z = 2; y = z + 1 in y in f 0").unwrap();
        assert_eq!(out, "3");
    }

    #[test]
    fn value_bindings_may_call_lambda_siblings() {
        // Lambda siblings are in scope (via the recursive group) even for
        // value bindings that precede them textually.
        let out = try_run("letrec f n = letrec v = g 20; g x = x * 2 in v + g 1 in f 0").unwrap();
        assert_eq!(out, "42");
    }
}
