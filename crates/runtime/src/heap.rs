//! The instrumented cons heap: free list, stack/block regions, and
//! provenance tags.
//!
//! This is the storage substrate the paper's optimizations act on. Every
//! cell records which (if any) region it was allocated into; regions are
//! a stack of dynamic extents pushed/popped by the interpreter. The
//! garbage collector ([`crate::gc`]) reclaims unmarked heap cells;
//! region cells are reclaimed wholesale at region exit instead.

use crate::checked::{AccessKind, ClaimKind, RegionNote, Tombstone};
use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::stats::RuntimeStats;
use crate::value::Value;
use nml_opt::{AllocMode, RegionKind, SiteId};
use std::collections::HashMap;
use std::fmt;

/// A reference to a cell in the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef(pub u32);

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// Provenance tag for the dynamic (exact) escape semantics: which
/// interesting argument the cell belongs to and which spine (counted from
/// the bottom, as in the paper's `⟨1,i⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvTag {
    /// 0-based argument index.
    pub arg: u8,
    /// Spine level, counted from the bottom (top spine of an `s`-spine
    /// list has level `s`).
    pub level: u8,
}

/// An identifier of an active region (index in the region stack plus a
/// generation to catch mismatched pops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionId(pub u64);

#[derive(Debug)]
struct Cell<'p> {
    car: Value<'p>,
    cdr: Value<'p>,
    tag: Option<ProvTag>,
    live: bool,
    /// Generation id of the region the cell was allocated into.
    region: Option<u64>,
    /// Checked mode: the site whose escape claim licensed this cell's
    /// optimized placement (`None` for plain heap cells or unchecked
    /// runs).
    claim_site: Option<SiteId>,
}

#[derive(Debug)]
struct Region {
    id: u64,
    kind: RegionKind,
    cells: Vec<u32>,
}

/// Heap configuration.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Run the garbage collector when live heap cells exceed this count
    /// (the threshold grows if the heap stays mostly live).
    pub gc_threshold: usize,
    /// Disable GC entirely (pure allocation counting).
    pub gc_enabled: bool,
    /// Checked-optimization mode: claim-driven frees (region pops,
    /// `DCONS` retirement) tombstone their cells instead of recycling
    /// them, and any access to a tombstone is a structured
    /// [`RuntimeError::Soundness`] naming the site that made the claim.
    pub checked: bool,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            gc_threshold: 4096,
            gc_enabled: true,
            checked: false,
        }
    }
}

/// The instrumented cons heap.
#[derive(Debug)]
pub struct Heap<'p> {
    cells: Vec<Cell<'p>>,
    free: Vec<u32>,
    regions: Vec<Region>,
    next_region_id: u64,
    live: u64,
    threshold: usize,
    config: HeapConfig,
    /// Instrumentation counters (shared with the interpreter).
    pub stats: RuntimeStats,
    /// Per-allocation-site counters (cells allocated by each `cons`
    /// site), for hot-site profiling. Site ids are dense, so these are
    /// flat arrays indexed by [`SiteId`] rather than hash maps — site
    /// attribution sits on the allocation fast path.
    site_allocs: Vec<u64>,
    /// Per-site `DCONS` reuse counters.
    site_reuses: Vec<u64>,
    /// Active fault-injection schedule (inert by default).
    fault: FaultPlan,
    /// Checked mode: quarantined remains of claim-freed cells, keyed by
    /// cell index. Tombstoned indices never return to the free list, so
    /// a key here stays valid for the life of the heap.
    tombstones: HashMap<u32, Tombstone>,
}

impl<'p> Heap<'p> {
    /// Creates an empty heap.
    pub fn new(config: HeapConfig) -> Self {
        let threshold = config.gc_threshold;
        Heap {
            cells: Vec::new(),
            free: Vec::new(),
            regions: Vec::new(),
            next_region_id: 0,
            live: 0,
            threshold,
            config,
            stats: RuntimeStats::default(),
            site_allocs: Vec::new(),
            site_reuses: Vec::new(),
            fault: FaultPlan::default(),
            tombstones: HashMap::new(),
        }
    }

    /// Installs a fault-injection schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Number of live cells.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Total cells ever created (heap footprint).
    pub fn footprint(&self) -> usize {
        self.cells.len()
    }

    /// Whether the interpreter should run a GC before the next heap
    /// allocation — because the threshold was crossed, or because the
    /// fault plan's heap capacity is under pressure (capacity pressure
    /// ignores the free list: free cells do not reduce the live count).
    pub fn should_collect(&self) -> bool {
        if !self.config.gc_enabled {
            return false;
        }
        if self.live as usize >= self.threshold && self.free.is_empty() {
            return true;
        }
        self.fault
            .heap_capacity()
            .is_some_and(|cap| self.live >= cap)
    }

    /// Consumes a fault-forced GC request, if one is pending.
    pub fn take_forced_gc(&mut self) -> bool {
        if self.fault.take_gc_request() {
            self.stats.forced_gcs += 1;
            true
        } else {
            false
        }
    }

    /// Whether the fault plan turns this `DCONS` reuse into a fresh heap
    /// allocation.
    pub fn fault_dcons_retreat(&mut self) -> bool {
        if self.fault.retreat_alloc() {
            self.stats.fault_dcons_retreats += 1;
            true
        } else {
            false
        }
    }

    /// Whether the fault plan denies this region push.
    pub fn fault_deny_region(&mut self) -> bool {
        if self.fault.deny_region() {
            self.stats.fault_region_denials += 1;
            true
        } else {
            false
        }
    }

    /// Allocates a cell outside the fault plan's jurisdiction (harness
    /// helpers, test fixtures). Stack/block modes allocate into the
    /// innermost region of the matching kind, falling back to the heap
    /// (with a statistic) when no such region is active.
    pub fn alloc(&mut self, car: Value<'p>, cdr: Value<'p>, mode: AllocMode) -> CellRef {
        self.alloc_raw(car, cdr, mode, None)
    }

    /// A *program* allocation, with site attribution and fault injection:
    /// optimized modes may retreat to plain heap `CONS`, and a bounded
    /// heap may refuse the allocation outright.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::OutOfMemory`] when the fault plan bounds the heap
    /// and the bound is reached (the interpreter runs a rescue GC before
    /// every step, so by this point collection has already been tried).
    pub fn alloc_at(
        &mut self,
        car: Value<'p>,
        cdr: Value<'p>,
        mode: AllocMode,
        site: Option<SiteId>,
    ) -> Result<CellRef, RuntimeError> {
        self.fault.note_alloc();
        let mode = if mode != AllocMode::Heap && self.fault.retreat_alloc() {
            self.stats.fault_alloc_retreats += 1;
            AllocMode::Heap
        } else {
            mode
        };
        if let Some(cap) = self.fault.heap_capacity() {
            if self.live >= cap {
                return Err(RuntimeError::OutOfMemory {
                    live: self.live,
                    capacity: cap,
                });
            }
        }
        Ok(self.alloc_raw(car, cdr, mode, site))
    }

    /// The bytecode engine's inline allocation path: skips the fault-plan
    /// bookkeeping of [`Heap::alloc_at`] entirely. **Callers must have
    /// checked that the fault plan is inert**
    /// ([`FaultPlan::is_active`] is false) — with no plan there are no
    /// allocation ticks to record, no retreats to roll, and no capacity
    /// bound to enforce, so this is observationally identical to
    /// `alloc_at` while staying a straight-line allocation.
    #[inline]
    pub fn alloc_fast(
        &mut self,
        car: Value<'p>,
        cdr: Value<'p>,
        mode: AllocMode,
        site: SiteId,
    ) -> CellRef {
        self.alloc_raw(car, cdr, mode, Some(site))
    }

    fn alloc_raw(
        &mut self,
        car: Value<'p>,
        cdr: Value<'p>,
        mode: AllocMode,
        site: Option<SiteId>,
    ) -> CellRef {
        if let Some(site) = site {
            bump_site(&mut self.site_allocs, site);
        }
        let wanted = match mode {
            AllocMode::Heap => None,
            AllocMode::Stack => Some(RegionKind::Stack),
            AllocMode::Block => Some(RegionKind::Block),
        };
        let region_idx = wanted.and_then(|k| {
            let idx = self.regions.iter().rposition(|r| r.kind == k);
            if idx.is_none() {
                self.stats.region_fallbacks += 1;
            }
            idx
        });
        match (mode, region_idx.is_some()) {
            (AllocMode::Heap, _) => self.stats.heap_allocs += 1,
            (AllocMode::Stack, true) => self.stats.stack_allocs += 1,
            (AllocMode::Block, true) => self.stats.block_allocs += 1,
            (_, false) => self.stats.heap_allocs += 1,
        }
        let region_gen = region_idx.map(|i| self.regions[i].id);
        // In checked mode, region-placed cells carry the site whose
        // escape claim put them there; heap cells carry no claim.
        let claim_site = if self.config.checked && region_gen.is_some() {
            site
        } else {
            None
        };
        let cell = Cell {
            car,
            cdr,
            tag: None,
            live: true,
            region: region_gen,
            claim_site,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.stats.freelist_reuses += 1;
            self.cells[i as usize] = cell;
            i
        } else {
            self.cells.push(cell);
            (self.cells.len() - 1) as u32
        };
        if let Some(r) = region_idx {
            self.regions[r].cells.push(idx);
        }
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        CellRef(idx)
    }

    fn cell_at(&self, r: CellRef, access: AccessKind) -> Result<&Cell<'p>, RuntimeError> {
        // The tombstone map is only ever populated in checked mode; skip
        // the hash probe on the (hot) unchecked access path.
        if !self.tombstones.is_empty() {
            if let Some(t) = self.tombstones.get(&r.0) {
                return Err(RuntimeError::Soundness(Box::new(t.violation(r.0, access))));
            }
        }
        let c = self
            .cells
            .get(r.0 as usize)
            .ok_or(RuntimeError::UseAfterFree { cell: r.0 })?;
        if !c.live {
            return Err(RuntimeError::UseAfterFree { cell: r.0 });
        }
        Ok(c)
    }

    /// Records a `DCONS` reuse at `site`.
    pub fn record_reuse(&mut self, site: SiteId) {
        bump_site(&mut self.site_reuses, site);
    }

    /// The allocation sites ranked by cell count, hottest first.
    pub fn hot_sites(&self) -> Vec<(SiteId, u64)> {
        rank_sites(&self.site_allocs)
    }

    /// Per-site `DCONS` reuse counts, hottest first.
    pub fn hot_reuse_sites(&self) -> Vec<(SiteId, u64)> {
        rank_sites(&self.site_reuses)
    }

    /// The head of a cell.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UseAfterFree`] if the cell has been reclaimed —
    /// which can only happen if an *unsound* storage annotation freed a
    /// cell that was still reachable.
    pub fn car(&self, r: CellRef) -> Result<Value<'p>, RuntimeError> {
        Ok(self.cell_at(r, AccessKind::Car)?.car.clone())
    }

    /// The tail of a cell (same errors as [`Heap::car`]).
    pub fn cdr(&self, r: CellRef) -> Result<Value<'p>, RuntimeError> {
        Ok(self.cell_at(r, AccessKind::Cdr)?.cdr.clone())
    }

    /// Overwrites a cell in place (`DCONS`).
    pub fn set(&mut self, r: CellRef, car: Value<'p>, cdr: Value<'p>) -> Result<(), RuntimeError> {
        self.cell_at(r, AccessKind::Set)?; // liveness check
        let c = &mut self.cells[r.0 as usize];
        c.car = car;
        c.cdr = cdr;
        Ok(())
    }

    /// The provenance tag of a cell, if any.
    pub fn tag(&self, r: CellRef) -> Result<Option<ProvTag>, RuntimeError> {
        Ok(self.cell_at(r, AccessKind::Tag)?.tag)
    }

    /// Sets the provenance tag of a cell.
    pub fn set_tag(&mut self, r: CellRef, tag: ProvTag) -> Result<(), RuntimeError> {
        self.cell_at(r, AccessKind::Tag)?;
        self.cells[r.0 as usize].tag = Some(tag);
        Ok(())
    }

    /// Pushes a new region of the given kind.
    pub fn push_region(&mut self, kind: RegionKind) -> RegionId {
        let id = self.next_region_id;
        self.next_region_id += 1;
        self.regions.push(Region {
            id,
            kind,
            cells: Vec::new(),
        });
        RegionId(id)
    }

    /// Pops the innermost region, freeing all its cells. In checked mode
    /// the cells are tombstoned instead of recycled: the pop records a
    /// per-cell [`Tombstone`] (claim site, region backtrace) and the
    /// indices never return to the free list, so any later access is a
    /// [`RuntimeError::Soundness`] rather than silent reuse.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RegionMismatch`] if `id` is not the innermost
    /// region (regions are strictly nested) or no region is active. The
    /// region stack is left untouched in that case.
    pub fn pop_region(&mut self, id: RegionId) -> Result<(), RuntimeError> {
        let expected = self.regions.last().map(|r| r.id);
        if expected != Some(id.0) {
            return Err(RuntimeError::RegionMismatch {
                expected,
                got: id.0,
            });
        }
        let Some(region) = self.regions.pop() else {
            return Err(RuntimeError::RegionMismatch {
                expected: None,
                got: id.0,
            });
        };
        let n = region.cells.len() as u64;
        let freed_by = Some(RegionNote {
            id: region.id,
            kind: region.kind,
        });
        // Regions still active after the pop — the backtrace every
        // tombstone from this pop shares.
        let backtrace: Vec<RegionNote> = if self.config.checked {
            self.regions
                .iter()
                .map(|r| RegionNote {
                    id: r.id,
                    kind: r.kind,
                })
                .collect()
        } else {
            Vec::new()
        };
        for idx in region.cells {
            let cell = &mut self.cells[idx as usize];
            if !cell.live {
                continue;
            }
            cell.live = false;
            cell.region = None;
            self.live -= 1;
            if self.config.checked {
                // Quarantine: drop the payload, remember the claim.
                let site = cell.claim_site.take();
                cell.car = Value::Nil;
                cell.cdr = Value::Nil;
                cell.tag = None;
                self.tombstones.insert(
                    idx,
                    Tombstone {
                        site,
                        claim: ClaimKind::from(region.kind),
                        freed_by,
                        regions: backtrace.clone(),
                    },
                );
                self.stats.tombstoned += 1;
            } else {
                self.free.push(idx);
            }
        }
        match region.kind {
            RegionKind::Stack => self.stats.stack_freed += n,
            RegionKind::Block => {
                self.stats.block_freed += n;
                self.stats.block_frees += 1;
            }
        }
        Ok(())
    }

    /// Checked-mode `DCONS` retirement: the reuse claim says `r` is
    /// unshared and dead, so quarantine it. The interpreter allocates a
    /// fresh cell for the new payload first, then retires the old one
    /// through this — any later access to `r` proves the claim wrong.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Soundness`] if `r` is already tombstoned (a
    /// double-retirement is itself a wrong claim);
    /// [`RuntimeError::UseAfterFree`] if it was GC-reclaimed.
    pub fn retire_reused(&mut self, r: CellRef, site: Option<SiteId>) -> Result<(), RuntimeError> {
        self.cell_at(r, AccessKind::Set)?;
        let backtrace: Vec<RegionNote> = self
            .regions
            .iter()
            .map(|reg| RegionNote {
                id: reg.id,
                kind: reg.kind,
            })
            .collect();
        let cell = &mut self.cells[r.0 as usize];
        cell.live = false;
        cell.region = None;
        cell.claim_site = None;
        cell.car = Value::Nil;
        cell.cdr = Value::Nil;
        cell.tag = None;
        self.live -= 1;
        self.tombstones.insert(
            r.0,
            Tombstone {
                site,
                claim: ClaimKind::Reuse,
                freed_by: None,
                regions: backtrace,
            },
        );
        self.stats.tombstoned += 1;
        Ok(())
    }

    /// Number of tombstoned cells (checked-mode quarantine footprint).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Whether checked mode has tombstoned this cell.
    pub fn is_tombstoned(&self, r: CellRef) -> bool {
        self.tombstones.contains_key(&r.0)
    }

    /// The cells currently belonging to the innermost region (for
    /// validation before popping).
    pub fn innermost_region_cells(&self) -> &[u32] {
        self.regions
            .last()
            .map(|r| r.cells.as_slice())
            .unwrap_or(&[])
    }

    /// Whether any region is active.
    pub fn in_region(&self) -> bool {
        !self.regions.is_empty()
    }

    /// Sweeps every unmarked, region-free heap cell onto the free list.
    /// `marked[i]` must be the result of a full mark phase over all roots.
    /// Region cells are skipped: they are reclaimed at region exit.
    pub fn sweep(&mut self, marked: &[bool]) {
        self.stats.gc_runs += 1;
        self.stats.gc_marked += marked.iter().filter(|&&m| m).count() as u64;
        self.stats.gc_sweep_visits += self.cells.len() as u64;
        for (i, cell) in self.cells.iter_mut().enumerate() {
            if cell.live && cell.region.is_none() && !marked[i] {
                cell.live = false;
                // Drop payload now so Rc-closures release promptly.
                cell.car = Value::Nil;
                cell.cdr = Value::Nil;
                cell.tag = None;
                self.free.push(i as u32);
                self.live -= 1;
                self.stats.gc_swept += 1;
            }
        }
        // If the heap is still mostly live, raise the threshold so we do
        // not thrash.
        if self.live as usize * 2 > self.threshold {
            self.threshold *= 2;
        }
    }

    /// Number of cells in the backing store (for building mark bitmaps).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cell is live (test/validation helper).
    pub fn is_live(&self, r: CellRef) -> bool {
        self.cells
            .get(r.0 as usize)
            .map(|c| c.live)
            .unwrap_or(false)
    }

    /// Borrows a live cell's fields for the GC mark phase, with none of
    /// the access bookkeeping of [`Heap::car`]/[`Heap::cdr`] (marking is
    /// not a program access). Returns `None` for dead or out-of-range
    /// cells.
    pub(crate) fn peek(&self, r: CellRef) -> Option<(&Value<'p>, &Value<'p>)> {
        let c = self.cells.get(r.0 as usize)?;
        if !c.live {
            return None;
        }
        Some((&c.car, &c.cdr))
    }
}

/// Increments a dense per-site counter, growing the array on first sight
/// of a site.
fn bump_site(counts: &mut Vec<u64>, site: SiteId) {
    let i = site.0 as usize;
    if i >= counts.len() {
        counts.resize(i + 1, 0);
    }
    counts[i] += 1;
}

fn rank_sites(counts: &[u64]) -> Vec<(SiteId, u64)> {
    let mut v: Vec<(SiteId, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| (SiteId(i as u32), n))
        .collect();
    v.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap<'p>() -> Heap<'p> {
        Heap::new(HeapConfig::default())
    }

    #[test]
    fn alloc_and_read() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        assert!(matches!(h.car(c), Ok(Value::Int(1))));
        assert!(matches!(h.cdr(c), Ok(Value::Nil)));
        assert_eq!(h.stats.heap_allocs, 1);
        assert_eq!(h.live(), 1);
    }

    #[test]
    fn dcons_set_overwrites() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        h.set(c, Value::Int(9), Value::Pair(c)).unwrap();
        assert!(matches!(h.car(c), Ok(Value::Int(9))));
    }

    #[test]
    fn stack_region_frees_on_pop() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        assert_eq!(h.stats.stack_allocs, 1);
        h.pop_region(r).unwrap();
        assert_eq!(h.stats.stack_freed, 1);
        assert_eq!(h.live(), 0);
        assert!(matches!(h.car(c), Err(RuntimeError::UseAfterFree { .. })));
    }

    #[test]
    fn block_region_counts_splices() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Block);
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Block);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Block);
        h.pop_region(r).unwrap();
        assert_eq!(h.stats.block_freed, 2);
        assert_eq!(h.stats.block_frees, 1);
    }

    #[test]
    fn stack_alloc_without_region_falls_back() {
        let mut h = heap();
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        assert_eq!(h.stats.region_fallbacks, 1);
        assert_eq!(h.stats.heap_allocs, 1);
        assert_eq!(h.stats.stack_allocs, 0);
    }

    #[test]
    fn nested_regions_pop_in_order() {
        let mut h = heap();
        let outer = h.push_region(RegionKind::Stack);
        let inner = h.push_region(RegionKind::Block);
        assert_eq!(
            h.pop_region(outer),
            Err(RuntimeError::RegionMismatch {
                expected: Some(inner.0),
                got: outer.0,
            })
        );
        h.pop_region(inner).unwrap();
        h.pop_region(outer).unwrap();
    }

    #[test]
    fn pop_with_no_region_is_a_typed_error() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        h.pop_region(r).unwrap();
        assert_eq!(
            h.pop_region(r),
            Err(RuntimeError::RegionMismatch {
                expected: None,
                got: r.0,
            })
        );
        // The mismatch must not disturb the (empty) region stack.
        assert!(!h.in_region());
    }

    #[test]
    fn out_of_order_pop_leaves_regions_intact() {
        let mut h = heap();
        let outer = h.push_region(RegionKind::Stack);
        let inner = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        assert!(h.pop_region(outer).is_err());
        assert!(h.is_live(c), "failed pop must not free anything");
        h.pop_region(inner).unwrap();
        h.pop_region(outer).unwrap();
    }

    fn checked_heap<'p>() -> Heap<'p> {
        Heap::new(HeapConfig {
            checked: true,
            ..HeapConfig::default()
        })
    }

    #[test]
    fn checked_pop_tombstones_with_claim() {
        let mut h = checked_heap();
        let outer = h.push_region(RegionKind::Block);
        let r = h.push_region(RegionKind::Stack);
        let c = h
            .alloc_at(Value::Int(1), Value::Nil, AllocMode::Stack, Some(SiteId(7)))
            .unwrap();
        h.pop_region(r).unwrap();
        assert!(h.is_tombstoned(c));
        assert_eq!(h.tombstone_count(), 1);
        assert_eq!(h.stats.tombstoned, 1);
        let err = h.car(c).unwrap_err();
        let RuntimeError::Soundness(v) = err else {
            panic!("expected soundness violation, got {err:?}");
        };
        assert_eq!(v.site, Some(SiteId(7)));
        assert_eq!(v.claim, ClaimKind::Stack);
        assert_eq!(v.access, AccessKind::Car);
        assert_eq!(v.freed_by.map(|r| r.kind), Some(RegionKind::Stack));
        assert_eq!(v.regions.len(), 1, "outer block region in backtrace");
        h.pop_region(outer).unwrap();
    }

    #[test]
    fn checked_tombstones_never_reenter_free_list() {
        let mut h = checked_heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        h.pop_region(r).unwrap();
        let fresh = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_ne!(c, fresh, "tombstoned index must not be recycled");
        assert_eq!(h.stats.freelist_reuses, 0);
    }

    #[test]
    fn checked_retire_reused_quarantines_cell() {
        let mut h = checked_heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        h.retire_reused(c, Some(SiteId(3))).unwrap();
        let err = h.set(c, Value::Int(2), Value::Nil).unwrap_err();
        let RuntimeError::Soundness(v) = err else {
            panic!("expected soundness violation, got {err:?}");
        };
        assert_eq!(v.site, Some(SiteId(3)));
        assert_eq!(v.claim, ClaimKind::Reuse);
        assert_eq!(v.access, AccessKind::Set);
        assert_eq!(v.freed_by, None);
        // Double retirement is itself a violation, not a panic.
        assert!(matches!(
            h.retire_reused(c, Some(SiteId(3))),
            Err(RuntimeError::Soundness(_))
        ));
    }

    #[test]
    fn unchecked_pop_recycles_as_before() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        h.pop_region(r).unwrap();
        assert!(!h.is_tombstoned(c));
        assert!(matches!(h.car(c), Err(RuntimeError::UseAfterFree { .. })));
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.stats.freelist_reuses, 1);
    }

    #[test]
    fn freelist_reuse_after_sweep() {
        let mut h = heap();
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let marked = vec![false; h.capacity()];
        h.sweep(&marked);
        assert_eq!(h.stats.gc_swept, 1);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.stats.freelist_reuses, 1);
        assert_eq!(h.footprint(), 1, "cell was reused, not grown");
    }

    #[test]
    fn sweep_skips_region_cells() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        let marked = vec![false; h.capacity()];
        h.sweep(&marked);
        assert!(h.is_live(c), "region cells are not GC-swept");
        h.pop_region(r).unwrap();
        assert!(!h.is_live(c));
    }

    #[test]
    fn provenance_tags_roundtrip() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        assert_eq!(h.tag(c).unwrap(), None);
        h.set_tag(c, ProvTag { arg: 0, level: 1 }).unwrap();
        assert_eq!(h.tag(c).unwrap(), Some(ProvTag { arg: 0, level: 1 }));
    }

    #[test]
    fn peak_live_tracks_maximum() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Stack);
        h.pop_region(r).unwrap();
        h.alloc(Value::Int(3), Value::Nil, AllocMode::Heap);
        assert_eq!(h.stats.peak_live, 2);
    }
}
