//! The instrumented cons heap: generational free-list allocator,
//! stack/block regions, and provenance tags.
//!
//! This is the storage substrate the paper's optimizations act on. Every
//! cell records which (if any) region it was allocated into; regions are
//! a stack of dynamic extents pushed/popped by the interpreter. The
//! garbage collector ([`crate::gc`]) reclaims unmarked heap cells;
//! region cells are reclaimed wholesale at region exit instead.
//!
//! # Generations
//!
//! The heap is split into a **nursery** (young cells) and an **old
//! space**. Because a [`CellRef`] is a stable index — shared freely
//! through immutable `Rc` environments that no collector could rewrite —
//! generations are *logical*, not physical: a cell's generation is a
//! flag, promotion flips it, and a cell never moves (a "sticky"
//! generation scheme). The young generation is the `young` index list:
//! every non-region, non-pretenured allocation appends itself, and when
//! the list reaches the configured nursery size a **minor collection**
//! runs:
//!
//! - marking starts from the machine roots *plus the remembered set* and
//!   never traverses into an old cell (old cells are the cut points;
//!   region cells are traversed like young ones, since the region — not
//!   the GC — frees them);
//! - a surviving young cell is **aged** on its first survival and
//!   **promoted** (flag flip, no copy) on its second — one round of
//!   aging, so a working set that happens to be live at one nursery
//!   snapshot but dies soon after is not flooded into the old space;
//! - dead young cells go back to the free list having been visited by
//!   nothing but the young list itself — a minor sweep is O(nursery),
//!   not O(heap). Aged survivors stay on the young list, and remembered-
//!   set entries that still reference young cells are retained.
//!
//! The **remembered set** records cells a minor mark phase would not
//! otherwise traverse — old cells and region cells — that may reference
//! young ones. Three barriers keep it complete: an allocation-time
//! check (a pretenured cell born holding young references), the write
//! barrier in the one mutation door ([`Heap::set`], the `DCONS` write,
//! firing for old *and* region targets), and a promotion-time check in
//! [`Heap::sweep_minor`] (a promoted cell may still hold a young cell a
//! `DCONS` installed while both were young). After each minor, entries
//! that still guard a possibly-young referent are retained; the rest
//! are dropped.
//!
//! **Pretenuring**: sites the escape analysis proves escaping allocate
//! with [`AllocMode::Pretenured`] and are placed directly in the old
//! space — they are guaranteed minor-GC survivors, so the nursery slot
//! and the promotion visit would be pure waste.
//!
//! A **major collection** is the pre-generational full mark–sweep
//! (triggered by the live threshold, fault-plan capacity pressure, or a
//! forced-GC fault): it frees unmarked cells of either generation and
//! rebuilds the young list and remembered set.

use crate::checked::{AccessKind, ClaimKind, RegionNote, Tombstone};
use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::stats::RuntimeStats;
use crate::value::Value;
use nml_opt::{AllocMode, RegionKind, SiteId};
use std::collections::HashMap;
use std::fmt;

/// A reference to a cell in the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef(pub u32);

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// Provenance tag for the dynamic (exact) escape semantics: which
/// interesting argument the cell belongs to and which spine (counted from
/// the bottom, as in the paper's `⟨1,i⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvTag {
    /// 0-based argument index.
    pub arg: u8,
    /// Spine level, counted from the bottom (top spine of an `s`-spine
    /// list has level `s`).
    pub level: u8,
}

/// An identifier of an active region (index in the region stack plus a
/// generation to catch mismatched pops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionId(pub u64);

/// Which collection to run (see [`Heap::collect_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Scan the nursery only, promote survivors.
    Minor,
    /// Full mark–sweep over both generations.
    Major,
}

/// Cell flag: the cell is allocated (not on the free list / tombstoned).
const F_LIVE: u8 = 1;
/// Cell flag: the cell belongs to the old generation.
const F_OLD: u8 = 1 << 1;
/// Cell flag: the cell is already in the remembered set.
const F_REMSET: u8 = 1 << 2;
/// Cell flag: the cell has survived one minor collection. A second
/// survival promotes it — one round of aging keeps a medium-lived
/// working set (live at a nursery snapshot, dead shortly after) from
/// flooding the old generation with cells only a major can reclaim.
const F_AGE: u8 = 1 << 3;

/// Sentinel for "no region" in [`Cell::region`].
const NO_REGION: u64 = u64::MAX;
/// Sentinel for "no claim site" in [`Cell::claim_site`].
const NO_SITE: u32 = u32::MAX;

/// One cons cell, packed to 48 bytes (pinned by test): two 16-byte
/// compact [`Value`]s plus sentinel-encoded region/claim words and a
/// flag byte — `Option` wrappers on the metadata would push the struct
/// past the next alignment step and fatten every heap by a third.
#[derive(Debug)]
struct Cell<'p> {
    car: Value<'p>,
    cdr: Value<'p>,
    /// Generation id of the region the cell was allocated into
    /// ([`NO_REGION`] for ordinary heap cells).
    region: u64,
    /// Checked mode: the site whose escape claim licensed this cell's
    /// optimized placement ([`NO_SITE`] for plain heap cells or
    /// unchecked runs).
    claim_site: u32,
    tag: Option<ProvTag>,
    flags: u8,
}

impl Cell<'_> {
    #[inline]
    fn live(&self) -> bool {
        self.flags & F_LIVE != 0
    }

    #[inline]
    fn old(&self) -> bool {
        self.flags & F_OLD != 0
    }
}

#[derive(Debug)]
struct Region {
    id: u64,
    kind: RegionKind,
    cells: Vec<u32>,
}

/// Heap configuration.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Run the garbage collector when live heap cells exceed this count
    /// (the threshold grows if the heap stays mostly live).
    pub gc_threshold: usize,
    /// Disable GC entirely (pure allocation counting).
    pub gc_enabled: bool,
    /// Checked-optimization mode: claim-driven frees (region pops,
    /// `DCONS` retirement) tombstone their cells instead of recycling
    /// them, and any access to a tombstone is a structured
    /// [`RuntimeError::Soundness`] naming the site that made the claim.
    pub checked: bool,
    /// Generational collection: allocate into a nursery, run minor
    /// collections that scan only young cells, promote survivors. When
    /// off, every allocation is old and only full collections run (the
    /// pre-generational behavior).
    pub gen_gc: bool,
    /// Nursery size in KiB (converted to a cell count); a minor
    /// collection runs when the nursery fills.
    pub nursery_kb: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            gc_threshold: 4096,
            gc_enabled: true,
            checked: false,
            gen_gc: true,
            nursery_kb: 256,
        }
    }
}

impl HeapConfig {
    /// The nursery size in cells implied by [`HeapConfig::nursery_kb`]
    /// (at least 8, so pathological configurations still make progress).
    pub fn nursery_cells(&self) -> usize {
        (self.nursery_kb * 1024 / std::mem::size_of::<Cell<'_>>()).max(8)
    }
}

/// The instrumented cons heap.
#[derive(Debug)]
pub struct Heap<'p> {
    cells: Vec<Cell<'p>>,
    free: Vec<u32>,
    regions: Vec<Region>,
    next_region_id: u64,
    live: u64,
    threshold: usize,
    config: HeapConfig,
    /// Instrumentation counters (shared with the interpreter).
    pub stats: RuntimeStats,
    /// Per-allocation-site counters (cells allocated by each `cons`
    /// site), for hot-site profiling. Site ids are dense, so these are
    /// flat arrays indexed by [`SiteId`] rather than hash maps — site
    /// attribution sits on the allocation fast path.
    site_allocs: Vec<u64>,
    /// Per-site `DCONS` reuse counters.
    site_reuses: Vec<u64>,
    /// Active fault-injection schedule (inert by default).
    fault: FaultPlan,
    /// Checked mode: quarantined remains of claim-freed cells, keyed by
    /// cell index. Tombstoned indices never return to the free list, so
    /// a key here stays valid for the life of the heap.
    tombstones: HashMap<u32, Tombstone>,
    /// Indices of nursery cells, in allocation order. Emptied by every
    /// collection (minor: promote-or-free; major: rebuilt from
    /// survivors).
    young: Vec<u32>,
    /// Old cells that may hold a reference to a young cell (see the
    /// module docs). May contain stale indices of since-freed cells;
    /// consumers skip dead entries.
    remset: Vec<u32>,
    /// Nursery capacity in cells (derived from the config).
    nursery_cells: usize,
    /// Live old-generation cells (pretenured + promoted), for
    /// observability and tests.
    old_live: u64,
}

impl<'p> Heap<'p> {
    /// Creates an empty heap.
    pub fn new(config: HeapConfig) -> Self {
        let threshold = config.gc_threshold;
        let nursery_cells = config.nursery_cells();
        Heap {
            cells: Vec::new(),
            free: Vec::new(),
            regions: Vec::new(),
            next_region_id: 0,
            live: 0,
            threshold,
            config,
            stats: RuntimeStats::default(),
            site_allocs: Vec::new(),
            site_reuses: Vec::new(),
            fault: FaultPlan::default(),
            tombstones: HashMap::new(),
            // Pre-size the nursery index list (bounded for pathological
            // configurations) so steady-state allocation never grows it.
            young: Vec::with_capacity(nursery_cells.min(1 << 16)),
            remset: Vec::new(),
            nursery_cells,
            old_live: 0,
        }
    }

    /// Whether generational collection is on.
    #[inline]
    fn gen_on(&self) -> bool {
        self.config.gen_gc
    }

    /// Number of cells currently in the nursery.
    pub fn young_len(&self) -> usize {
        self.young.len()
    }

    /// Number of live old-generation cells (pretenured + promoted).
    pub fn old_live(&self) -> u64 {
        self.old_live
    }

    /// Size of the remembered set (old cells registered as possibly
    /// referencing young ones).
    pub fn remset_len(&self) -> usize {
        self.remset.len()
    }

    /// Installs a fault-injection schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Number of live cells.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Total cells ever created (heap footprint).
    pub fn footprint(&self) -> usize {
        self.cells.len()
    }

    /// Whether the interpreter should run a GC before the next heap
    /// allocation — because the nursery filled, the live threshold was
    /// crossed, or the fault plan's heap capacity is under pressure
    /// (capacity pressure ignores the free list: free cells do not
    /// reduce the live count).
    pub fn should_collect(&self) -> bool {
        if !self.config.gc_enabled {
            return false;
        }
        if self.gen_on() && self.young.len() >= self.nursery_cells {
            return true;
        }
        if self.live as usize >= self.threshold && self.free.is_empty() {
            return true;
        }
        self.fault
            .heap_capacity()
            .is_some_and(|cap| self.live >= cap)
    }

    /// Which collection the next GC should be. Minor collections only
    /// help when there are young cells to scan, so an empty nursery (or
    /// generations off) demands a full collection, as does fault-plan
    /// capacity pressure (capacity ignores the free list, which is all
    /// a minor can refill). Ordinary threshold pressure stays minor:
    /// most young cells are usually dead, and the engines escalate to a
    /// major in the same poll when a minor fails to relieve pressure —
    /// so a mostly-live nursery (e.g. one big list under construction)
    /// still reaches the threshold-doubling major instead of thrashing.
    pub fn collect_kind(&self) -> GcKind {
        if !self.gen_on() || self.young.is_empty() {
            return GcKind::Major;
        }
        if self
            .fault
            .heap_capacity()
            .is_some_and(|cap| self.live >= cap)
        {
            return GcKind::Major;
        }
        GcKind::Minor
    }

    /// Consumes a fault-forced GC request, if one is pending.
    pub fn take_forced_gc(&mut self) -> bool {
        if self.fault.take_gc_request() {
            self.stats.forced_gcs += 1;
            true
        } else {
            false
        }
    }

    /// Whether the fault plan turns this `DCONS` reuse into a fresh heap
    /// allocation.
    pub fn fault_dcons_retreat(&mut self) -> bool {
        if self.fault.retreat_alloc() {
            self.stats.fault_dcons_retreats += 1;
            true
        } else {
            false
        }
    }

    /// Whether the fault plan denies this region push.
    pub fn fault_deny_region(&mut self) -> bool {
        if self.fault.deny_region() {
            self.stats.fault_region_denials += 1;
            true
        } else {
            false
        }
    }

    /// Allocates a cell outside the fault plan's jurisdiction (harness
    /// helpers, test fixtures). Stack/block modes allocate into the
    /// innermost region of the matching kind, falling back to the heap
    /// (with a statistic) when no such region is active.
    pub fn alloc(&mut self, car: Value<'p>, cdr: Value<'p>, mode: AllocMode) -> CellRef {
        self.alloc_raw(car, cdr, mode, None)
    }

    /// A *program* allocation, with site attribution and fault injection:
    /// optimized modes may retreat to plain heap `CONS`, and a bounded
    /// heap may refuse the allocation outright.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::OutOfMemory`] when the fault plan bounds the heap
    /// and the bound is reached (the interpreter runs a rescue GC before
    /// every step, so by this point collection has already been tried).
    pub fn alloc_at(
        &mut self,
        car: Value<'p>,
        cdr: Value<'p>,
        mode: AllocMode,
        site: Option<SiteId>,
    ) -> Result<CellRef, RuntimeError> {
        self.fault.note_alloc();
        // Only region modes retreat: a retreat models a *region* refusing
        // an allocation, and pretenuring is a placement hint with no
        // region to refuse.
        let mode =
            if matches!(mode, AllocMode::Stack | AllocMode::Block) && self.fault.retreat_alloc() {
                self.stats.fault_alloc_retreats += 1;
                AllocMode::Heap
            } else {
                mode
            };
        if let Some(cap) = self.fault.heap_capacity() {
            if self.live >= cap {
                return Err(RuntimeError::OutOfMemory {
                    live: self.live,
                    capacity: cap,
                });
            }
        }
        Ok(self.alloc_raw(car, cdr, mode, site))
    }

    /// The bytecode engine's inline allocation path: skips the fault-plan
    /// bookkeeping of [`Heap::alloc_at`] entirely. **Callers must have
    /// checked that the fault plan is inert**
    /// ([`FaultPlan::is_active`] is false) — with no plan there are no
    /// allocation ticks to record, no retreats to roll, and no capacity
    /// bound to enforce, so this is observationally identical to
    /// `alloc_at` while staying a straight-line allocation.
    #[inline]
    pub fn alloc_fast(
        &mut self,
        car: Value<'p>,
        cdr: Value<'p>,
        mode: AllocMode,
        site: SiteId,
    ) -> CellRef {
        self.alloc_raw(car, cdr, mode, Some(site))
    }

    fn alloc_raw(
        &mut self,
        car: Value<'p>,
        cdr: Value<'p>,
        mode: AllocMode,
        site: Option<SiteId>,
    ) -> CellRef {
        if let Some(site) = site {
            bump_site(&mut self.site_allocs, site);
        }
        let wanted = match mode {
            // An `Elided` mark reaching the allocator means the engine
            // chose not to scalarize the site (tree-walker, or a VM
            // fallback): it is a plain heap cons.
            AllocMode::Heap | AllocMode::Pretenured | AllocMode::Elided => None,
            AllocMode::Stack => Some(RegionKind::Stack),
            AllocMode::Block => Some(RegionKind::Block),
        };
        let region_idx = wanted.and_then(|k| {
            let idx = self.regions.iter().rposition(|r| r.kind == k);
            if idx.is_none() {
                self.stats.region_fallbacks += 1;
            }
            idx
        });
        match (mode, region_idx.is_some()) {
            (AllocMode::Heap | AllocMode::Elided, _) => self.stats.heap_allocs += 1,
            (AllocMode::Pretenured, _) => {
                self.stats.heap_allocs += 1;
                self.stats.pretenured += 1;
            }
            (AllocMode::Stack, true) => self.stats.stack_allocs += 1,
            (AllocMode::Block, true) => self.stats.block_allocs += 1,
            (_, false) => self.stats.heap_allocs += 1,
        }
        let region_gen = region_idx.map(|i| self.regions[i].id);
        // In checked mode, region-placed cells carry the site whose
        // escape claim put them there; heap cells carry no claim.
        let claim_site = if self.config.checked && region_gen.is_some() {
            site
        } else {
            None
        };
        // Generation routing. Region cells are *neither* generation —
        // the region, not the GC, frees them. Everything else is old
        // when generations are off (the legacy heap), when the site is
        // pretenured, or when the nursery is full and no collection has
        // run (GC disabled, or harness allocations between polls).
        let gen = self.gen_on();
        let old = if region_gen.is_some() {
            false
        } else if !gen || mode == AllocMode::Pretenured {
            true
        } else if self.young.len() >= self.nursery_cells {
            self.stats.nursery_fallbacks += 1;
            true
        } else {
            false
        };
        let mut flags = F_LIVE;
        if old {
            flags |= F_OLD;
        }
        let cell = Cell {
            car,
            cdr,
            tag: None,
            region: region_gen.unwrap_or(NO_REGION),
            claim_site: claim_site.map_or(NO_SITE, |s| s.0),
            flags,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.stats.freelist_reuses += 1;
            self.cells[i as usize] = cell;
            i
        } else {
            self.cells.push(cell);
            (self.cells.len() - 1) as u32
        };
        if let Some(r) = region_idx {
            self.regions[r].cells.push(idx);
        }
        if old {
            self.old_live += 1;
            if gen {
                // Allocation-time barrier: an old cell born holding a
                // young reference is an old→young edge the next minor
                // must know about.
                let refs_young = {
                    let c = &self.cells[idx as usize];
                    self.may_ref_young(&c.car) || self.may_ref_young(&c.cdr)
                };
                if refs_young {
                    self.remember(idx);
                }
            }
        } else if region_gen.is_none() {
            self.young.push(idx);
        }
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        CellRef(idx)
    }

    /// Conservative test: can `v` lead to a non-old cell? Direct cell
    /// references check the target's generation; closure-shaped values
    /// drag whole environments, and scanning those at every write would
    /// cost more than a (harmless) remembered-set entry.
    fn may_ref_young(&self, v: &Value<'p>) -> bool {
        match v {
            Value::Int(_) | Value::Bool(_) | Value::Nil | Value::Prim(_) | Value::Func(_) => false,
            Value::Pair(c) | Value::Tuple(c) => {
                self.cells.get(c.0 as usize).is_some_and(|cell| !cell.old())
            }
            Value::Closure(_) | Value::PartialFunc(_) | Value::PrimApp(_) | Value::VmClosure(_) => {
                true
            }
        }
    }

    /// Adds an old cell to the remembered set (idempotent via the
    /// [`F_REMSET`] flag).
    fn remember(&mut self, idx: u32) {
        let cell = &mut self.cells[idx as usize];
        if cell.flags & F_REMSET == 0 {
            cell.flags |= F_REMSET;
            self.remset.push(idx);
        }
    }

    fn cell_at(&self, r: CellRef, access: AccessKind) -> Result<&Cell<'p>, RuntimeError> {
        // The tombstone map is only ever populated in checked mode; skip
        // the hash probe on the (hot) unchecked access path.
        if !self.tombstones.is_empty() {
            if let Some(t) = self.tombstones.get(&r.0) {
                return Err(RuntimeError::Soundness(Box::new(t.violation(r.0, access))));
            }
        }
        let c = self
            .cells
            .get(r.0 as usize)
            .ok_or(RuntimeError::UseAfterFree { cell: r.0 })?;
        if !c.live() {
            return Err(RuntimeError::UseAfterFree { cell: r.0 });
        }
        Ok(c)
    }

    /// Records a `DCONS` reuse at `site`.
    pub fn record_reuse(&mut self, site: SiteId) {
        bump_site(&mut self.site_reuses, site);
    }

    /// The allocation sites ranked by cell count, hottest first.
    pub fn hot_sites(&self) -> Vec<(SiteId, u64)> {
        rank_sites(&self.site_allocs)
    }

    /// Per-site `DCONS` reuse counts, hottest first.
    pub fn hot_reuse_sites(&self) -> Vec<(SiteId, u64)> {
        rank_sites(&self.site_reuses)
    }

    /// The head of a cell.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UseAfterFree`] if the cell has been reclaimed —
    /// which can only happen if an *unsound* storage annotation freed a
    /// cell that was still reachable.
    pub fn car(&self, r: CellRef) -> Result<Value<'p>, RuntimeError> {
        Ok(self.cell_at(r, AccessKind::Car)?.car.clone())
    }

    /// The tail of a cell (same errors as [`Heap::car`]).
    pub fn cdr(&self, r: CellRef) -> Result<Value<'p>, RuntimeError> {
        Ok(self.cell_at(r, AccessKind::Cdr)?.cdr.clone())
    }

    /// Overwrites a cell in place (`DCONS`). This is the heap's only
    /// mutation door, so it carries the generational **write barrier**:
    /// storing a possibly-young reference into an old cell records the
    /// cell in the remembered set.
    pub fn set(&mut self, r: CellRef, car: Value<'p>, cdr: Value<'p>) -> Result<(), RuntimeError> {
        self.cell_at(r, AccessKind::Set)?; // liveness check
                                           // The barrier fires for any cell a minor mark phase will not
                                           // traverse unconditionally: old cells (cut points) *and* region
                                           // cells (only reached through whatever references them — which
                                           // may be an old cut point). Without the region case, an
                                           // old→region→young chain built by DCONS would hide the young
                                           // cell from the next minor.
        let barrier = self.gen_on()
            && {
                let c = &self.cells[r.0 as usize];
                (c.old() || c.region != NO_REGION) && c.flags & F_REMSET == 0
            }
            && (self.may_ref_young(&car) || self.may_ref_young(&cdr));
        let c = &mut self.cells[r.0 as usize];
        c.car = car;
        c.cdr = cdr;
        if barrier {
            self.remember(r.0);
        }
        Ok(())
    }

    /// The provenance tag of a cell, if any.
    pub fn tag(&self, r: CellRef) -> Result<Option<ProvTag>, RuntimeError> {
        Ok(self.cell_at(r, AccessKind::Tag)?.tag)
    }

    /// Sets the provenance tag of a cell.
    pub fn set_tag(&mut self, r: CellRef, tag: ProvTag) -> Result<(), RuntimeError> {
        self.cell_at(r, AccessKind::Tag)?;
        self.cells[r.0 as usize].tag = Some(tag);
        Ok(())
    }

    /// Pushes a new region of the given kind.
    pub fn push_region(&mut self, kind: RegionKind) -> RegionId {
        let id = self.next_region_id;
        self.next_region_id += 1;
        self.regions.push(Region {
            id,
            kind,
            cells: Vec::new(),
        });
        RegionId(id)
    }

    /// Pops the innermost region, freeing all its cells. In checked mode
    /// the cells are tombstoned instead of recycled: the pop records a
    /// per-cell [`Tombstone`] (claim site, region backtrace) and the
    /// indices never return to the free list, so any later access is a
    /// [`RuntimeError::Soundness`] rather than silent reuse.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RegionMismatch`] if `id` is not the innermost
    /// region (regions are strictly nested) or no region is active. The
    /// region stack is left untouched in that case.
    pub fn pop_region(&mut self, id: RegionId) -> Result<(), RuntimeError> {
        let expected = self.regions.last().map(|r| r.id);
        if expected != Some(id.0) {
            return Err(RuntimeError::RegionMismatch {
                expected,
                got: id.0,
            });
        }
        let Some(region) = self.regions.pop() else {
            return Err(RuntimeError::RegionMismatch {
                expected: None,
                got: id.0,
            });
        };
        let n = region.cells.len() as u64;
        let freed_by = Some(RegionNote {
            id: region.id,
            kind: region.kind,
        });
        // Regions still active after the pop — the backtrace every
        // tombstone from this pop shares.
        let backtrace: Vec<RegionNote> = if self.config.checked {
            self.regions
                .iter()
                .map(|r| RegionNote {
                    id: r.id,
                    kind: r.kind,
                })
                .collect()
        } else {
            Vec::new()
        };
        for idx in region.cells {
            let cell = &mut self.cells[idx as usize];
            if !cell.live() {
                continue;
            }
            cell.flags &= !F_LIVE;
            cell.region = NO_REGION;
            self.live -= 1;
            if self.config.checked {
                // Quarantine: drop the payload, remember the claim.
                let site = (cell.claim_site != NO_SITE).then_some(SiteId(cell.claim_site));
                cell.claim_site = NO_SITE;
                cell.car = Value::Nil;
                cell.cdr = Value::Nil;
                cell.tag = None;
                self.tombstones.insert(
                    idx,
                    Tombstone {
                        site,
                        claim: ClaimKind::from(region.kind),
                        freed_by,
                        regions: backtrace.clone(),
                    },
                );
                self.stats.tombstoned += 1;
            } else {
                self.free.push(idx);
            }
        }
        match region.kind {
            RegionKind::Stack => self.stats.stack_freed += n,
            RegionKind::Block => {
                self.stats.block_freed += n;
                self.stats.block_frees += 1;
            }
        }
        Ok(())
    }

    /// Checked-mode `DCONS` retirement: the reuse claim says `r` is
    /// unshared and dead, so quarantine it. The interpreter allocates a
    /// fresh cell for the new payload first, then retires the old one
    /// through this — any later access to `r` proves the claim wrong.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Soundness`] if `r` is already tombstoned (a
    /// double-retirement is itself a wrong claim);
    /// [`RuntimeError::UseAfterFree`] if it was GC-reclaimed.
    pub fn retire_reused(&mut self, r: CellRef, site: Option<SiteId>) -> Result<(), RuntimeError> {
        self.cell_at(r, AccessKind::Set)?;
        let backtrace: Vec<RegionNote> = self
            .regions
            .iter()
            .map(|reg| RegionNote {
                id: reg.id,
                kind: reg.kind,
            })
            .collect();
        let cell = &mut self.cells[r.0 as usize];
        let was_old = cell.old();
        cell.flags &= !F_LIVE;
        cell.region = NO_REGION;
        cell.claim_site = NO_SITE;
        cell.car = Value::Nil;
        cell.cdr = Value::Nil;
        cell.tag = None;
        self.live -= 1;
        if was_old {
            self.old_live -= 1;
        }
        self.tombstones.insert(
            r.0,
            Tombstone {
                site,
                claim: ClaimKind::Reuse,
                freed_by: None,
                regions: backtrace,
            },
        );
        self.stats.tombstoned += 1;
        Ok(())
    }

    /// Number of tombstoned cells (checked-mode quarantine footprint).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Whether checked mode has tombstoned this cell.
    pub fn is_tombstoned(&self, r: CellRef) -> bool {
        self.tombstones.contains_key(&r.0)
    }

    /// The cells currently belonging to the innermost region (for
    /// validation before popping).
    pub fn innermost_region_cells(&self) -> &[u32] {
        self.regions
            .last()
            .map(|r| r.cells.as_slice())
            .unwrap_or(&[])
    }

    /// Whether any region is active.
    pub fn in_region(&self) -> bool {
        !self.regions.is_empty()
    }

    /// Major collection sweep: frees every unmarked, region-free cell of
    /// either generation. `marked[i]` must be the result of a full mark
    /// phase over all roots. Region cells are skipped: they are
    /// reclaimed at region exit. Surviving young cells are promoted —
    /// they lived through a full collection — leaving the nursery empty
    /// and the remembered set clearable wholesale.
    pub fn sweep(&mut self, marked: &[bool]) {
        self.stats.gc_runs += 1;
        self.stats.major_gcs += 1;
        self.stats.gc_marked += marked.iter().filter(|&&m| m).count() as u64;
        self.stats.gc_sweep_visits += self.cells.len() as u64;
        for (i, cell) in self.cells.iter_mut().enumerate() {
            if cell.live() && cell.region == NO_REGION && !marked[i] {
                if cell.old() {
                    self.old_live -= 1;
                }
                cell.flags &= !F_LIVE;
                // Drop payload now so Rc-closures release promptly.
                cell.car = Value::Nil;
                cell.cdr = Value::Nil;
                cell.tag = None;
                self.free.push(i as u32);
                self.live -= 1;
                self.stats.gc_swept += 1;
            }
        }
        let young = std::mem::take(&mut self.young);
        for idx in young {
            let cell = &mut self.cells[idx as usize];
            if cell.live() && !cell.old() {
                cell.flags = (cell.flags & !F_AGE) | F_OLD;
                self.old_live += 1;
                self.stats.promoted += 1;
            }
        }
        self.clear_remset();
        // If the heap is still mostly live, raise the threshold so we do
        // not thrash.
        if self.live as usize * 2 > self.threshold {
            self.threshold *= 2;
        }
    }

    /// Minor collection sweep: visits *only* the nursery. `marked` must
    /// come from a minor mark phase (roots + remembered set, old cells
    /// as cut points). A marked young cell is aged in place on its first
    /// survival and promoted — a flag flip, cells never move — on its
    /// second. Because aged survivors stay young, old→young edges can
    /// outlive the collection: the remembered set is filtered, not
    /// cleared, and freshly promoted cells that still hold young
    /// references (a DCONS can install a *newer* cell into an older one)
    /// are added to it.
    pub fn sweep_minor(&mut self, marked: &[bool]) {
        self.stats.gc_runs += 1;
        self.stats.minor_gcs += 1;
        self.stats.gc_marked += marked.iter().filter(|&&m| m).count() as u64;
        self.stats.gc_sweep_visits += self.young.len() as u64;
        // In-place survivor compaction: the young list keeps its
        // capacity across minors (a fresh Vec per collection would
        // reallocate up to nursery size every cycle).
        let mut promoted: Vec<u32> = Vec::new();
        let mut w = 0;
        for r in 0..self.young.len() {
            let idx = self.young[r];
            let cell = &mut self.cells[idx as usize];
            if !cell.live() {
                // Tombstoned (checked-mode retirement) under us:
                // quarantined indices never rejoin the free list.
                continue;
            }
            if marked[idx as usize] {
                if cell.flags & F_AGE != 0 {
                    cell.flags = (cell.flags & !F_AGE) | F_OLD;
                    self.old_live += 1;
                    self.stats.promoted += 1;
                    promoted.push(idx);
                } else {
                    cell.flags |= F_AGE;
                    self.young[w] = idx;
                    w += 1;
                }
            } else {
                cell.flags &= !F_LIVE;
                cell.car = Value::Nil;
                cell.cdr = Value::Nil;
                cell.tag = None;
                self.free.push(idx);
                self.live -= 1;
                self.stats.gc_swept += 1;
            }
        }
        self.young.truncate(w);
        // Promotion-time barrier: a cell crossing into the old
        // generation may still reference young (aged) cells — an edge
        // that was young→young when written and is old→young now. The
        // check runs after the whole pass so every referent's final
        // generation is settled.
        for idx in promoted {
            let refs_young = {
                let cell = &self.cells[idx as usize];
                self.may_ref_young(&cell.car) || self.may_ref_young(&cell.cdr)
            };
            if refs_young {
                self.remember(idx);
            }
        }
        // Aged survivors are still young, so an old→young edge can
        // outlive the collection: retain exactly the remembered cells
        // that still reference young ones (same in-place compaction).
        let mut w = 0;
        for r in 0..self.remset.len() {
            let idx = self.remset[r];
            let keep = {
                let cell = &self.cells[idx as usize];
                cell.live() && (self.may_ref_young(&cell.car) || self.may_ref_young(&cell.cdr))
            };
            if keep {
                self.remset[w] = idx;
                w += 1;
            } else {
                self.cells[idx as usize].flags &= !F_REMSET;
            }
        }
        self.remset.truncate(w);
    }

    /// Drops every remembered-set entry and its flag. Sound only when
    /// the nursery is empty — a major sweep guarantees it on exit by
    /// promoting every young survivor.
    fn clear_remset(&mut self) {
        let remset = std::mem::take(&mut self.remset);
        for idx in remset {
            if let Some(cell) = self.cells.get_mut(idx as usize) {
                cell.flags &= !F_REMSET;
            }
        }
    }

    /// Number of cells in the backing store (for building mark bitmaps).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cell is live (test/validation helper).
    pub fn is_live(&self, r: CellRef) -> bool {
        self.cells
            .get(r.0 as usize)
            .map(|c| c.live())
            .unwrap_or(false)
    }

    /// Whether the cell belongs to the old generation (pretenured or
    /// promoted). Region cells and nursery cells are not old.
    pub fn is_old(&self, r: CellRef) -> bool {
        self.cells
            .get(r.0 as usize)
            .map(|c| c.live() && c.old())
            .unwrap_or(false)
    }

    /// Borrows a live cell's fields for the GC mark phase, with none of
    /// the access bookkeeping of [`Heap::car`]/[`Heap::cdr`] (marking is
    /// not a program access). Returns `None` for dead or out-of-range
    /// cells.
    pub(crate) fn peek(&self, r: CellRef) -> Option<(&Value<'p>, &Value<'p>)> {
        let c = self.cells.get(r.0 as usize)?;
        if !c.live() {
            return None;
        }
        Some((&c.car, &c.cdr))
    }

    /// The remembered set, for seeding a minor mark phase. May contain
    /// indices of since-freed cells; [`Heap::peek`] skips those.
    pub(crate) fn remset_cells(&self) -> &[u32] {
        &self.remset
    }

    /// Whether the index names a live old-generation cell (minor-mark
    /// cut-point test).
    pub(crate) fn is_old_cell(&self, idx: u32) -> bool {
        self.cells
            .get(idx as usize)
            .is_some_and(|c| c.live() && c.old())
    }
}

/// Increments a dense per-site counter, growing the array on first sight
/// of a site.
fn bump_site(counts: &mut Vec<u64>, site: SiteId) {
    let i = site.0 as usize;
    if i >= counts.len() {
        counts.resize(i + 1, 0);
    }
    counts[i] += 1;
}

fn rank_sites(counts: &[u64]) -> Vec<(SiteId, u64)> {
    let mut v: Vec<(SiteId, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| (SiteId(i as u32), n))
        .collect();
    v.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap<'p>() -> Heap<'p> {
        Heap::new(HeapConfig::default())
    }

    #[test]
    fn alloc_and_read() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        assert!(matches!(h.car(c), Ok(Value::Int(1))));
        assert!(matches!(h.cdr(c), Ok(Value::Nil)));
        assert_eq!(h.stats.heap_allocs, 1);
        assert_eq!(h.live(), 1);
    }

    #[test]
    fn dcons_set_overwrites() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        h.set(c, Value::Int(9), Value::Pair(c)).unwrap();
        assert!(matches!(h.car(c), Ok(Value::Int(9))));
    }

    #[test]
    fn stack_region_frees_on_pop() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        assert_eq!(h.stats.stack_allocs, 1);
        h.pop_region(r).unwrap();
        assert_eq!(h.stats.stack_freed, 1);
        assert_eq!(h.live(), 0);
        assert!(matches!(h.car(c), Err(RuntimeError::UseAfterFree { .. })));
    }

    #[test]
    fn block_region_counts_splices() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Block);
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Block);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Block);
        h.pop_region(r).unwrap();
        assert_eq!(h.stats.block_freed, 2);
        assert_eq!(h.stats.block_frees, 1);
    }

    #[test]
    fn stack_alloc_without_region_falls_back() {
        let mut h = heap();
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        assert_eq!(h.stats.region_fallbacks, 1);
        assert_eq!(h.stats.heap_allocs, 1);
        assert_eq!(h.stats.stack_allocs, 0);
    }

    #[test]
    fn nested_regions_pop_in_order() {
        let mut h = heap();
        let outer = h.push_region(RegionKind::Stack);
        let inner = h.push_region(RegionKind::Block);
        assert_eq!(
            h.pop_region(outer),
            Err(RuntimeError::RegionMismatch {
                expected: Some(inner.0),
                got: outer.0,
            })
        );
        h.pop_region(inner).unwrap();
        h.pop_region(outer).unwrap();
    }

    #[test]
    fn pop_with_no_region_is_a_typed_error() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        h.pop_region(r).unwrap();
        assert_eq!(
            h.pop_region(r),
            Err(RuntimeError::RegionMismatch {
                expected: None,
                got: r.0,
            })
        );
        // The mismatch must not disturb the (empty) region stack.
        assert!(!h.in_region());
    }

    #[test]
    fn out_of_order_pop_leaves_regions_intact() {
        let mut h = heap();
        let outer = h.push_region(RegionKind::Stack);
        let inner = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        assert!(h.pop_region(outer).is_err());
        assert!(h.is_live(c), "failed pop must not free anything");
        h.pop_region(inner).unwrap();
        h.pop_region(outer).unwrap();
    }

    fn checked_heap<'p>() -> Heap<'p> {
        Heap::new(HeapConfig {
            checked: true,
            ..HeapConfig::default()
        })
    }

    #[test]
    fn checked_pop_tombstones_with_claim() {
        let mut h = checked_heap();
        let outer = h.push_region(RegionKind::Block);
        let r = h.push_region(RegionKind::Stack);
        let c = h
            .alloc_at(Value::Int(1), Value::Nil, AllocMode::Stack, Some(SiteId(7)))
            .unwrap();
        h.pop_region(r).unwrap();
        assert!(h.is_tombstoned(c));
        assert_eq!(h.tombstone_count(), 1);
        assert_eq!(h.stats.tombstoned, 1);
        let err = h.car(c).unwrap_err();
        let RuntimeError::Soundness(v) = err else {
            panic!("expected soundness violation, got {err:?}");
        };
        assert_eq!(v.site, Some(SiteId(7)));
        assert_eq!(v.claim, ClaimKind::Stack);
        assert_eq!(v.access, AccessKind::Car);
        assert_eq!(v.freed_by.map(|r| r.kind), Some(RegionKind::Stack));
        assert_eq!(v.regions.len(), 1, "outer block region in backtrace");
        h.pop_region(outer).unwrap();
    }

    #[test]
    fn checked_tombstones_never_reenter_free_list() {
        let mut h = checked_heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        h.pop_region(r).unwrap();
        let fresh = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_ne!(c, fresh, "tombstoned index must not be recycled");
        assert_eq!(h.stats.freelist_reuses, 0);
    }

    #[test]
    fn checked_retire_reused_quarantines_cell() {
        let mut h = checked_heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        h.retire_reused(c, Some(SiteId(3))).unwrap();
        let err = h.set(c, Value::Int(2), Value::Nil).unwrap_err();
        let RuntimeError::Soundness(v) = err else {
            panic!("expected soundness violation, got {err:?}");
        };
        assert_eq!(v.site, Some(SiteId(3)));
        assert_eq!(v.claim, ClaimKind::Reuse);
        assert_eq!(v.access, AccessKind::Set);
        assert_eq!(v.freed_by, None);
        // Double retirement is itself a violation, not a panic.
        assert!(matches!(
            h.retire_reused(c, Some(SiteId(3))),
            Err(RuntimeError::Soundness(_))
        ));
    }

    #[test]
    fn unchecked_pop_recycles_as_before() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        h.pop_region(r).unwrap();
        assert!(!h.is_tombstoned(c));
        assert!(matches!(h.car(c), Err(RuntimeError::UseAfterFree { .. })));
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.stats.freelist_reuses, 1);
    }

    #[test]
    fn freelist_reuse_after_sweep() {
        let mut h = heap();
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let marked = vec![false; h.capacity()];
        h.sweep(&marked);
        assert_eq!(h.stats.gc_swept, 1);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.stats.freelist_reuses, 1);
        assert_eq!(h.footprint(), 1, "cell was reused, not grown");
    }

    #[test]
    fn sweep_skips_region_cells() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        let marked = vec![false; h.capacity()];
        h.sweep(&marked);
        assert!(h.is_live(c), "region cells are not GC-swept");
        h.pop_region(r).unwrap();
        assert!(!h.is_live(c));
    }

    #[test]
    fn provenance_tags_roundtrip() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        assert_eq!(h.tag(c).unwrap(), None);
        h.set_tag(c, ProvTag { arg: 0, level: 1 }).unwrap();
        assert_eq!(h.tag(c).unwrap(), Some(ProvTag { arg: 0, level: 1 }));
    }

    #[test]
    fn cell_stays_packed() {
        // Two compact Values + metadata. Growing this fattens every heap
        // in every benchmark — treat a failure as a design regression.
        assert!(
            std::mem::size_of::<Cell<'_>>() <= 48,
            "Cell grew to {} bytes",
            std::mem::size_of::<Cell<'_>>()
        );
    }

    #[test]
    fn pretenured_alloc_goes_straight_to_old_space() {
        let mut h = heap();
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Pretenured);
        assert!(h.is_old(c));
        assert_eq!(h.young_len(), 0);
        assert_eq!(h.old_live(), 1);
        assert_eq!(h.stats.pretenured, 1);
        assert_eq!(h.stats.heap_allocs, 1, "pretenured is still a heap alloc");
    }

    #[test]
    fn plain_heap_alloc_is_young_until_promoted() {
        let mut h = heap();
        let keep = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let drop_ = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.young_len(), 2);
        assert!(!h.is_old(keep));
        let mut marked = vec![false; h.capacity()];
        marked[keep.0 as usize] = true;
        h.sweep_minor(&marked);
        assert_eq!(h.young_len(), 1, "first survival ages, stays young");
        assert!(!h.is_old(keep), "one survival is not enough to promote");
        assert!(!h.is_live(drop_), "unmarked young cell freed");
        assert_eq!(h.stats.minor_gcs, 1);
        assert_eq!(h.stats.gc_swept, 1);
        let mut marked = vec![false; h.capacity()];
        marked[keep.0 as usize] = true;
        h.sweep_minor(&marked);
        assert_eq!(h.young_len(), 0, "nursery empty after the second minor");
        assert!(h.is_old(keep), "second survival promotes");
        assert_eq!(h.stats.promoted, 1);
        assert_eq!(h.old_live(), 1);
    }

    #[test]
    fn gen_off_allocates_old_directly() {
        let mut h: Heap<'_> = Heap::new(HeapConfig {
            gen_gc: false,
            ..HeapConfig::default()
        });
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        assert!(h.is_old(c));
        assert_eq!(h.young_len(), 0);
        assert_eq!(h.remset_len(), 0, "no barrier bookkeeping when gen off");
    }

    #[test]
    fn full_nursery_falls_back_to_old_space() {
        // nursery_kb: 0 clamps to the 8-cell minimum; with GC disabled
        // no minor ever drains it, so the 9th allocation must go old.
        let mut h: Heap<'_> = Heap::new(HeapConfig {
            gc_enabled: false,
            nursery_kb: 0,
            ..HeapConfig::default()
        });
        for i in 0..9 {
            h.alloc(Value::Int(i), Value::Nil, AllocMode::Heap);
        }
        assert_eq!(h.young_len(), 8);
        assert_eq!(h.stats.nursery_fallbacks, 1);
        assert_eq!(h.old_live(), 1);
    }

    #[test]
    fn dcons_write_barrier_remembers_old_to_young_edge() {
        let mut h = heap();
        let old = h.alloc(Value::Int(1), Value::Nil, AllocMode::Pretenured);
        let young = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.remset_len(), 0);
        h.set(old, Value::Pair(young), Value::Nil).unwrap();
        assert_eq!(h.remset_len(), 1);
        // Idempotent: a second young store adds no duplicate entry.
        h.set(old, Value::Pair(young), Value::Pair(young)).unwrap();
        assert_eq!(h.remset_len(), 1);
        // Old→old stores never enter the remset.
        let old2 = h.alloc(Value::Int(3), Value::Nil, AllocMode::Pretenured);
        h.set(old2, Value::Pair(old), Value::Nil).unwrap();
        assert_eq!(h.remset_len(), 1);
    }

    #[test]
    fn alloc_time_barrier_covers_pretenured_payloads() {
        let mut h = heap();
        let young = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        h.alloc(Value::Pair(young), Value::Nil, AllocMode::Pretenured);
        assert_eq!(h.remset_len(), 1, "old cell born pointing at nursery");
    }

    #[test]
    fn remset_keeps_young_referent_alive_then_clears() {
        let mut h = heap();
        let young = h.alloc(Value::Int(7), Value::Nil, AllocMode::Heap);
        let old = h.alloc(Value::Pair(young), Value::Nil, AllocMode::Pretenured);
        // Minor with *no* machine roots: the remset alone must save the
        // young cell (it is reachable from the old one).
        let mut marker = crate::gc::Marker::new(&h);
        marker.root_remset(&h);
        let marked = marker.finish_minor(&h);
        h.sweep_minor(&marked);
        assert!(h.is_live(young), "remset-protected cell survived");
        assert!(!h.is_old(young), "aged, not yet promoted");
        assert!(h.is_live(old));
        assert_eq!(
            h.remset_len(),
            1,
            "old→young edge outlives the minor, so the entry is retained"
        );
        // Second minor: the referent promotes, the edge becomes
        // old→old, and the remembered set finally drains.
        let mut marker = crate::gc::Marker::new(&h);
        marker.root_remset(&h);
        let marked = marker.finish_minor(&h);
        h.sweep_minor(&marked);
        assert!(h.is_old(young), "second survival promotes");
        assert_eq!(h.remset_len(), 0, "remset cleared once the edge is old→old");
    }

    /// Regression: a DCONS can store a *newer* young cell into an older
    /// one; when the older cell promotes (second survival), the edge
    /// silently becomes old→young. Promotion must register it in the
    /// remembered set, or the next minor frees the referent while live.
    #[test]
    fn promotion_remembers_surviving_young_referents() {
        let mut h = heap();
        let elder = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let root = Value::Pair(elder);
        // First minor: elder survives and ages.
        let mut m = crate::gc::Marker::new(&h);
        m.root_value(&root);
        let marked = m.finish_minor(&h);
        h.sweep_minor(&marked);
        assert!(!h.is_old(elder));
        // The aged cell is mutated to hold a brand-new young cell —
        // young→young, so no write barrier fires.
        let newborn = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        h.set(elder, Value::Pair(newborn), Value::Nil).unwrap();
        assert_eq!(h.remset_len(), 0);
        // Second minor: elder promotes while newborn merely ages. The
        // promotion-time barrier must record the now old→young edge.
        let mut m = crate::gc::Marker::new(&h);
        m.root_value(&root);
        let marked = m.finish_minor(&h);
        h.sweep_minor(&marked);
        assert!(h.is_old(elder), "second survival promotes");
        assert!(!h.is_old(newborn), "first survival only ages");
        assert_eq!(h.remset_len(), 1, "promotion registered the edge");
        // Third minor with no machine roots: the remset alone keeps the
        // newborn alive (reachable only through the promoted cut point).
        let mut m = crate::gc::Marker::new(&h);
        m.root_remset(&h);
        let marked = m.finish_minor(&h);
        h.sweep_minor(&marked);
        assert!(h.is_live(newborn), "referent survived behind the cut point");
        assert!(h.is_old(newborn), "and promoted on its second survival");
        assert_eq!(h.remset_len(), 0, "edge is old→old now; entry dropped");
    }

    /// Regression: storing a young reference into a *region* cell must
    /// also fire the barrier — minors never traverse past old cut
    /// points, so an old→region→young chain is only visible if the
    /// region cell enters the remembered set.
    #[test]
    fn dcons_write_barrier_covers_region_cells() {
        let mut h = heap();
        let rid = h.push_region(RegionKind::Stack);
        let in_region = h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        let young = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        assert_eq!(h.remset_len(), 0);
        h.set(in_region, Value::Pair(young), Value::Nil).unwrap();
        assert_eq!(h.remset_len(), 1, "region cell remembered");
        // A minor rooted only in the remset must keep the young cell.
        let mut m = crate::gc::Marker::new(&h);
        m.root_remset(&h);
        let marked = m.finish_minor(&h);
        h.sweep_minor(&marked);
        assert!(
            h.is_live(young),
            "young cell reached through the region cell"
        );
        h.pop_region(rid).unwrap();
    }

    #[test]
    fn major_sweep_promotes_survivors_and_rebuilds() {
        let mut h = heap();
        let keep = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        let mut marked = vec![false; h.capacity()];
        marked[keep.0 as usize] = true;
        h.sweep(&marked);
        assert_eq!(h.stats.major_gcs, 1);
        assert_eq!(h.young_len(), 0);
        assert!(h.is_old(keep), "young survivor of a major is promoted");
        assert_eq!(h.old_live(), 1);
        assert_eq!(h.live(), 1);
    }

    #[test]
    fn collect_kind_prefers_minor_with_young_cells() {
        let mut h = heap();
        assert_eq!(h.collect_kind(), GcKind::Major, "empty nursery → major");
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        assert_eq!(h.collect_kind(), GcKind::Minor);
        let off: Heap<'_> = Heap::new(HeapConfig {
            gen_gc: false,
            ..HeapConfig::default()
        });
        assert_eq!(off.collect_kind(), GcKind::Major);
    }

    #[test]
    fn claim_site_survives_promotion() {
        // Checked mode: a cell's claim metadata must be unaffected by the
        // generation flip (promotion moves nothing).
        let mut h = checked_heap();
        let r = h.push_region(RegionKind::Stack);
        let c = h
            .alloc_at(Value::Int(1), Value::Nil, AllocMode::Stack, Some(SiteId(5)))
            .unwrap();
        // Region cells are neither young nor old; promotion machinery
        // must leave them for the region to free.
        let marked = vec![false; h.capacity()];
        h.sweep(&marked);
        assert!(h.is_live(c), "region cell untouched by major");
        h.pop_region(r).unwrap();
        let err = h.car(c).unwrap_err();
        let RuntimeError::Soundness(v) = err else {
            panic!("expected soundness violation, got {err:?}");
        };
        assert_eq!(v.site, Some(SiteId(5)), "claim survived the collection");
    }

    #[test]
    fn peak_live_tracks_maximum() {
        let mut h = heap();
        let r = h.push_region(RegionKind::Stack);
        h.alloc(Value::Int(1), Value::Nil, AllocMode::Stack);
        h.alloc(Value::Int(2), Value::Nil, AllocMode::Stack);
        h.pop_region(r).unwrap();
        h.alloc(Value::Int(3), Value::Nil, AllocMode::Heap);
        assert_eq!(h.stats.peak_live, 2);
    }
}
