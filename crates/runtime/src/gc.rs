//! Mark phase of the mark–sweep collector.
//!
//! The interpreter and the bytecode VM keep their entire state in
//! explicit structures (control value, frame stack, environments,
//! globals), so the root set is exact — no conservative stack scanning.
//! Marking traverses cells through pairs and through values captured in
//! closures, partial applications, and environments.
//!
//! Roots are registered *by reference* through a [`Marker`]: a collection
//! never clones a root `Value` or `Env`. Only closure-shaped values met
//! during the traversal are kept on an owned worklist (an `Rc` bump, not
//! a deep copy); plain cells travel as bare [`CellRef`] indices.

use crate::heap::{CellRef, Heap};
use crate::value::{CaptureEnv, Env, Value};
use std::collections::HashSet;
use std::rc::Rc;

/// An in-progress mark phase. Register every root with the `root_*`
/// methods, then call [`Marker::finish`] to run the traversal and obtain
/// the mark bitmap for [`Heap::sweep`].
pub struct Marker<'p> {
    marked: Vec<bool>,
    seen_envs: HashSet<*const ()>,
    seen_caps: HashSet<*const ()>,
    /// Cells whose car/cdr still need scanning.
    cells: Vec<CellRef>,
    /// Closure-shaped values whose innards still need scanning.
    pending: Vec<Value<'p>>,
    roots: usize,
}

/// Queues the cell or closure guts of `v` without cloning scalars.
fn note<'p>(cells: &mut Vec<CellRef>, pending: &mut Vec<Value<'p>>, v: &Value<'p>) {
    match v {
        Value::Int(_) | Value::Bool(_) | Value::Nil => {}
        Value::Pair(c) | Value::Tuple(c) => cells.push(*c),
        Value::Prim(_) | Value::Func(_) => {}
        Value::Closure(_) | Value::PartialFunc(_) | Value::PrimApp(_) | Value::VmClosure(_) => {
            pending.push(v.clone());
        }
    }
}

impl<'p> Marker<'p> {
    /// Starts a mark phase sized to `heap`.
    pub fn new(heap: &Heap<'p>) -> Self {
        Marker {
            marked: vec![false; heap.capacity()],
            seen_envs: HashSet::new(),
            seen_caps: HashSet::new(),
            cells: Vec::new(),
            pending: Vec::new(),
            roots: 0,
        }
    }

    /// Registers a root value (borrowed; nothing scalar is cloned).
    pub fn root_value(&mut self, v: &Value<'p>) {
        self.roots += 1;
        note(&mut self.cells, &mut self.pending, v);
    }

    /// Registers a whole environment chain as a root.
    pub fn root_env(&mut self, env: &Env<'p>) {
        self.roots += 1;
        let Marker {
            seen_envs,
            cells,
            pending,
            ..
        } = self;
        env.for_each_value(seen_envs, &mut |v| note(cells, pending, v));
    }

    /// Registers a bare cell as a root (e.g. a `DCONS` target held by a
    /// continuation frame).
    pub fn root_cell(&mut self, c: CellRef) {
        self.roots += 1;
        self.cells.push(c);
    }

    /// Registers a VM capture environment as a root.
    pub fn root_captures(&mut self, cap: &Rc<CaptureEnv<'p>>) {
        self.roots += 1;
        self.trace_caps(cap);
    }

    /// Seeds a **minor** mark phase with the heap's remembered set: the
    /// *referents* of each remembered old cell are roots (the old cell
    /// itself is outside a minor collection's jurisdiction). Dead or
    /// stale entries are skipped.
    pub fn root_remset(&mut self, heap: &Heap<'p>) {
        for &idx in heap.remset_cells() {
            let Some((car, cdr)) = heap.peek(CellRef(idx)) else {
                continue;
            };
            self.roots += 1;
            note(&mut self.cells, &mut self.pending, car);
            note(&mut self.cells, &mut self.pending, cdr);
        }
    }

    /// Number of roots registered so far (assertable in tests: the root
    /// set is exact, so its size is predictable).
    pub fn roots_seen(&self) -> usize {
        self.roots
    }

    fn trace_caps(&mut self, cap: &Rc<CaptureEnv<'p>>) {
        if !self.seen_caps.insert(Rc::as_ptr(cap) as *const ()) {
            return;
        }
        for v in &cap.values {
            note(&mut self.cells, &mut self.pending, v);
        }
    }

    /// Runs the full traversal and returns the mark bitmap (for
    /// [`Heap::sweep`]).
    pub fn finish(self, heap: &Heap<'p>) -> Vec<bool> {
        self.run(heap, false)
    }

    /// Runs a **minor** traversal: old cells are cut points — they are
    /// neither marked nor traversed into, because a minor collection
    /// cannot free them and every live old→young edge is covered by the
    /// remembered set (seed it with [`Marker::root_remset`]). Region
    /// cells are traversed like young ones: the region, not this
    /// collection, frees them, and they may guard young referents. The
    /// bitmap is only meaningful for nursery cells; pass it to
    /// [`Heap::sweep_minor`].
    pub fn finish_minor(self, heap: &Heap<'p>) -> Vec<bool> {
        self.run(heap, true)
    }

    fn run(mut self, heap: &Heap<'p>, minor: bool) -> Vec<bool> {
        loop {
            while let Some(c) = self.cells.pop() {
                let idx = c.0 as usize;
                if idx >= self.marked.len() || self.marked[idx] {
                    continue;
                }
                if minor && heap.is_old_cell(c.0) {
                    continue; // old generation: a minor never frees it
                }
                let Some((car, cdr)) = heap.peek(c) else {
                    continue; // dead cell: not marked, not traversed
                };
                self.marked[idx] = true;
                note(&mut self.cells, &mut self.pending, car);
                note(&mut self.cells, &mut self.pending, cdr);
            }
            let Some(v) = self.pending.pop() else {
                break;
            };
            match v {
                Value::Closure(clo) => {
                    let Marker {
                        seen_envs,
                        cells,
                        pending,
                        ..
                    } = &mut self;
                    clo.env
                        .for_each_value(seen_envs, &mut |x| note(cells, pending, x));
                }
                Value::PartialFunc(p) => {
                    for a in &p.applied {
                        note(&mut self.cells, &mut self.pending, a);
                    }
                }
                Value::PrimApp(p) => {
                    note(&mut self.cells, &mut self.pending, &p.first);
                }
                Value::VmClosure(c) => self.trace_caps(&c.env),
                _ => {}
            }
        }
        self.marked
    }
}

/// Computes the mark bitmap for the given (borrowed) roots. Environments
/// reachable from closures are deduplicated by node address, so shared
/// environment suffixes are traversed once.
pub fn mark<'a, 'p: 'a>(
    heap: &Heap<'p>,
    root_values: impl IntoIterator<Item = &'a Value<'p>>,
    root_envs: impl IntoIterator<Item = &'a Env<'p>>,
) -> Vec<bool> {
    let mut m = Marker::new(heap);
    for v in root_values {
        m.root_value(v);
    }
    for env in root_envs {
        m.root_env(env);
    }
    m.finish(heap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use crate::value::Env;
    use nml_opt::AllocMode;
    use nml_syntax::Symbol;

    const NO_VALUES: [&Value<'static>; 0] = [];
    const NO_ENVS: [&Env<'static>; 0] = [];

    #[test]
    fn unreachable_cells_are_unmarked() {
        let mut h = Heap::new(HeapConfig::default());
        let a = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let _b = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        let root = Value::Pair(a);
        let marked = mark(&h, [&root], NO_ENVS);
        assert!(marked[a.0 as usize]);
        assert_eq!(marked.iter().filter(|&&m| m).count(), 1);
    }

    #[test]
    fn marking_follows_spines_and_elements() {
        let mut h = Heap::new(HeapConfig::default());
        let inner = h.alloc(Value::Int(9), Value::Nil, AllocMode::Heap);
        let outer = h.alloc(Value::Pair(inner), Value::Nil, AllocMode::Heap);
        let root = Value::Pair(outer);
        let marked = mark(&h, [&root], NO_ENVS);
        assert!(marked[inner.0 as usize]);
        assert!(marked[outer.0 as usize]);
    }

    #[test]
    fn env_roots_are_traversed() {
        let mut h = Heap::new(HeapConfig::default());
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let env = Env::empty().bind(Symbol::intern("x"), Value::Pair(c));
        let marked = mark(&h, NO_VALUES, [&env]);
        assert!(marked[c.0 as usize]);
    }

    #[test]
    fn partial_application_roots() {
        let mut h = Heap::new(HeapConfig::default());
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let v = Value::PrimApp(std::rc::Rc::new(crate::value::PrimApp {
            prim: nml_syntax::Prim::Cons,
            first: Value::Pair(c),
        }));
        let marked = mark(&h, [&v], NO_ENVS);
        assert!(marked[c.0 as usize]);
    }

    #[test]
    fn cyclic_structures_terminate() {
        let mut h = Heap::new(HeapConfig::default());
        let a = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        // Tie a cycle through DCONS-style mutation.
        h.set(a, Value::Int(1), Value::Pair(a)).unwrap();
        let root = Value::Pair(a);
        let marked = mark(&h, [&root], NO_ENVS);
        assert!(marked[a.0 as usize]);
    }

    #[test]
    fn vm_capture_env_roots_are_traversed_once() {
        let mut h = Heap::new(HeapConfig::default());
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let cap = Rc::new(CaptureEnv {
            values: vec![Value::Pair(c), Value::Int(5)],
            rec: vec![0, 1],
        });
        let mut m = Marker::new(&h);
        // Two closures sharing one capture env: deduplicated by address.
        m.root_value(&Value::VmClosure(Rc::new(crate::value::VmClosure {
            chunk: 0,
            env: cap.clone(),
        })));
        m.root_value(&Value::VmClosure(Rc::new(crate::value::VmClosure {
            chunk: 1,
            env: cap.clone(),
        })));
        assert_eq!(m.roots_seen(), 2);
        let marked = m.finish(&h);
        assert!(marked[c.0 as usize]);
    }

    #[test]
    fn minor_mark_stops_at_old_cells() {
        let mut h = Heap::new(HeapConfig::default());
        // young ← old ← young chain, rooted at the top young cell.
        let deep_young = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let old = h.alloc(Value::Pair(deep_young), Value::Nil, AllocMode::Pretenured);
        let top_young = h.alloc(Value::Pair(old), Value::Nil, AllocMode::Heap);
        let root = Value::Pair(top_young);
        let mut m = Marker::new(&h);
        m.root_value(&root);
        let marked = m.finish_minor(&h);
        assert!(marked[top_young.0 as usize], "young root marked");
        assert!(!marked[old.0 as usize], "old cell is a cut point");
        assert!(
            !marked[deep_young.0 as usize],
            "not traversed through the old cell — the remset covers it"
        );
        // The alloc-time barrier did record the old→young edge, so the
        // full minor protocol (roots + remset) keeps deep_young alive.
        let mut m = Marker::new(&h);
        m.root_value(&root);
        m.root_remset(&h);
        let marked = m.finish_minor(&h);
        assert!(marked[deep_young.0 as usize]);
    }

    #[test]
    fn minor_mark_traverses_region_cells() {
        let mut h = Heap::new(HeapConfig::default());
        let young = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let _r = h.push_region(nml_opt::RegionKind::Stack);
        let region_cell = h.alloc(Value::Pair(young), Value::Nil, AllocMode::Stack);
        let root = Value::Pair(region_cell);
        let mut m = Marker::new(&h);
        m.root_value(&root);
        let marked = m.finish_minor(&h);
        assert!(
            marked[young.0 as usize],
            "young cell reached through a region cell"
        );
    }

    #[test]
    fn root_count_is_exact() {
        let h = Heap::new(HeapConfig::default());
        let mut m = Marker::new(&h);
        let v = Value::Int(1);
        let env = Env::empty();
        m.root_value(&v);
        m.root_env(&env);
        m.root_cell(CellRef(0));
        assert_eq!(m.roots_seen(), 3);
    }
}
