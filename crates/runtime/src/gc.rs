//! Mark phase of the mark–sweep collector.
//!
//! The interpreter keeps its entire state in explicit structures (control
//! value, frame stack, environments, globals), so the root set is exact —
//! no conservative stack scanning. Marking traverses cells through pairs
//! and through values captured in closures, partial applications, and
//! environments.

use crate::heap::Heap;
use crate::value::Value;
use std::collections::HashSet;

/// Computes the mark bitmap for the given roots. Environments reachable
/// from closures are deduplicated by node address, so shared environment
/// suffixes are traversed once.
pub fn mark<'p>(
    heap: &Heap<'p>,
    root_values: impl IntoIterator<Item = Value<'p>>,
    root_envs: impl IntoIterator<Item = crate::value::Env<'p>>,
) -> Vec<bool> {
    let mut marked = vec![false; heap.capacity()];
    let mut seen_envs: HashSet<*const ()> = HashSet::new();
    let mut work: Vec<Value<'p>> = root_values.into_iter().collect();
    for env in root_envs {
        env.for_each_value(&mut seen_envs, &mut |v| work.push(v.clone()));
    }
    while let Some(v) = work.pop() {
        match v {
            Value::Int(_) | Value::Bool(_) | Value::Nil => {}
            Value::Pair(c) | Value::Tuple(c) => {
                let idx = c.0 as usize;
                if idx < marked.len() && !marked[idx] && heap.is_live(c) {
                    marked[idx] = true;
                    if let Ok(car) = heap.car(c) {
                        work.push(car);
                    }
                    if let Ok(cdr) = heap.cdr(c) {
                        work.push(cdr);
                    }
                }
            }
            Value::Closure(clo) => {
                clo.env
                    .for_each_value(&mut seen_envs, &mut |v| work.push(v.clone()));
            }
            Value::Func { applied, .. } => {
                for a in applied.iter() {
                    work.push(a.clone());
                }
            }
            Value::Prim { first, .. } => {
                if let Some(f) = first {
                    work.push((*f).clone());
                }
            }
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use crate::value::Env;
    use nml_opt::AllocMode;
    use nml_syntax::Symbol;

    #[test]
    fn unreachable_cells_are_unmarked() {
        let mut h = Heap::new(HeapConfig::default());
        let a = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let _b = h.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        let marked = mark(&h, [Value::Pair(a)], []);
        assert!(marked[a.0 as usize]);
        assert_eq!(marked.iter().filter(|&&m| m).count(), 1);
    }

    #[test]
    fn marking_follows_spines_and_elements() {
        let mut h = Heap::new(HeapConfig::default());
        let inner = h.alloc(Value::Int(9), Value::Nil, AllocMode::Heap);
        let outer = h.alloc(Value::Pair(inner), Value::Nil, AllocMode::Heap);
        let marked = mark(&h, [Value::Pair(outer)], []);
        assert!(marked[inner.0 as usize]);
        assert!(marked[outer.0 as usize]);
    }

    #[test]
    fn env_roots_are_traversed() {
        let mut h = Heap::new(HeapConfig::default());
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let env = Env::empty().bind(Symbol::intern("x"), Value::Pair(c));
        let marked = mark(&h, [], [env]);
        assert!(marked[c.0 as usize]);
    }

    #[test]
    fn partial_application_roots() {
        let mut h = Heap::new(HeapConfig::default());
        let c = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        let v = Value::Prim {
            prim: nml_syntax::Prim::Cons,
            first: Some(std::rc::Rc::new(Value::Pair(c))),
        };
        let marked = mark(&h, [v], []);
        assert!(marked[c.0 as usize]);
    }

    #[test]
    fn cyclic_structures_terminate() {
        let mut h = Heap::new(HeapConfig::default());
        let a = h.alloc(Value::Int(1), Value::Nil, AllocMode::Heap);
        // Tie a cycle through DCONS-style mutation.
        h.set(a, Value::Int(1), Value::Pair(a)).unwrap();
        let marked = mark(&h, [Value::Pair(a)], []);
        assert!(marked[a.0 as usize]);
    }
}
