//! Flat bytecode for the register/stack VM ([`crate::vm`]).
//!
//! The compiler consumes the slot-resolved tree produced by
//! [`nml_opt::resolve_program`] and flattens it into compact instruction
//! sequences with explicit jump offsets. Each [`nml_opt::ResolvedUnit`]
//! becomes one [`Chunk`] (same index), so a resolved `GlobalFunc`
//! reference is directly a chunk to enter.
//!
//! Design points:
//!
//! - **Tail calls are resolved statically.** The emitter threads a
//!   tail-position flag; an application in tail position compiles to
//!   [`Op::TailCall`]/[`Op::TailCallGlobal`], which replace the current
//!   frame in place, and every other tail expression ends in
//!   [`Op::Return`]. Compiled code never falls off the end of a chunk.
//! - **Saturated global calls skip closure creation.** An application
//!   spine whose head resolves to a top-level function with enough
//!   arguments compiles to a single [`Op::CallGlobal`]: the arguments
//!   are moved from the operand stack straight into the callee's frame
//!   slots, with no intermediate partial-application values.
//! - **`DCONS` keeps the interpreter's error ordering.** The reuse
//!   target is loaded and checked ([`Op::CheckPair`]) *before* the head
//!   and tail evaluate, exactly like the tree-walker.
//! - **`letrec` slots are cleared on scope exit** ([`Op::ClearLocal`]),
//!   so a dead binding in a frame slot does not outlive its scope — the
//!   VM's root set stays as tight as the tree-walker's environment
//!   chains (this matters for region validation, which proves
//!   *unreachability*).

use nml_opt::{
    resolve_program, AllocMode, CaptureSrc, IrProgram, RExpr, RegionKind, ResolvedGlobal, SiteId,
    SlotRef,
};
use nml_syntax::ast::Const;
use nml_syntax::{Prim, Symbol};

/// One VM instruction. `Copy` so the dispatch loop can fetch by value
/// and keep no borrow of the code while it mutates the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push the empty list.
    PushNil,
    /// Push a primitive as a first-class function value.
    PushPrim(Prim),
    /// Push frame slot `i`.
    LoadLocal(u16),
    /// Push capture `i` of the current closure.
    LoadCapture(u16),
    /// Materialize member `j` of the current recursive group (shares the
    /// current capture environment).
    LoadRec(u16),
    /// Push top-level function `i` (a partial-application seed).
    LoadGlobalFunc(u32),
    /// Push top-level value binding `i`; raises `Unbound` when startup
    /// has not initialized it yet.
    LoadGlobalVal(u32),
    /// A statically unbound name: raises `Unbound` with this name.
    Unbound(Symbol),
    /// Pop into frame slot `i`.
    StoreLocal(u16),
    /// Overwrite frame slot `i` with nil (scope exit).
    ClearLocal(u16),
    /// Build a closure from closure-site `i`, copying its captures out
    /// of the current frame.
    MakeClosure(u32),
    /// Build a mutually recursive closure group from rec-site `i`: one
    /// shared capture environment, one materialized closure per member,
    /// stored into the site's frame slots.
    MakeRec(u32),
    /// Unconditional jump to an absolute offset in the current chunk.
    Jump(u32),
    /// Pop a bool; jump to the offset when it is `false`.
    JumpIfFalse(u32),
    /// Pop argument then callee; apply one argument.
    Call,
    /// Like [`Op::Call`] but replaces the current frame (tail position).
    TailCall,
    /// Enter chunk `c` directly; its `n_params` arguments move from the
    /// operand stack into the new frame's slots.
    CallGlobal(u32),
    /// Like [`Op::CallGlobal`] but replaces the current frame.
    TailCallGlobal(u32),
    /// Pop the result and return to the calling frame.
    Return,
    /// Pop tail then head; allocate a cons cell with the given mode.
    Cons {
        /// Storage decision from the escape analysis.
        mode: AllocMode,
        /// Allocation site (for statistics and checked-mode claims).
        site: SiteId,
    },
    /// Assert the top of stack is a pair (the `DCONS` target check,
    /// *before* head/tail evaluate).
    CheckPair,
    /// Pop tail, head, and target cell; reuse the target in place (or
    /// copy-and-retire in checked mode).
    Dcons(SiteId),
    /// Pop one value, apply a unary primitive, push the result.
    Prim1(Prim),
    /// Pop two values, apply a binary primitive, push the result.
    Prim2(Prim),
    /// Fused `LoadLocal(i); Prim1(p)`: apply the primitive straight to
    /// frame slot `i` (peephole superinstruction — no operand-stack
    /// round trip).
    Prim1Local(Prim, u16),
    /// Fused `LoadLocal(i); Prim2(p)`: pop the left operand, take the
    /// *right* operand from frame slot `i`. Never emitted for
    /// allocating primitives (keeps the GC-poll sites exact).
    Prim2Local(Prim, u16),
    /// Fused `PushInt(n); Prim2(p)`: pop the left operand, use `n` as
    /// the right. Never emitted for allocating primitives.
    Prim2Imm(Prim, i64),
    /// Fused `Prim1Local(Null, i); JumpIfFalse(t)` — the ubiquitous
    /// `if (null l)` loop header: jump when frame slot `i` holds a cons
    /// cell, fall through when nil.
    JumpIfPairLocal(u16, u32),
    /// Open a dynamic extent (stack region or block).
    EnterRegion(RegionKind),
    /// Close the innermost extent opened by this chunk.
    ExitRegion,
}

/// One compiled code unit (a top-level binding body, a lambda, or the
/// program body). Chunk indices coincide with resolved-unit indices.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Name, when the chunk is a named binding (diagnostics only).
    pub name: Option<Symbol>,
    /// Number of parameters, occupying slots `0..n_params` on entry.
    pub n_params: u16,
    /// Total frame slots (parameters plus `letrec` bindings).
    pub n_slots: u16,
    /// The instructions.
    pub code: Vec<Op>,
}

/// A closure creation site: which chunk the closure runs and where its
/// captures are copied from in the *creating* frame.
#[derive(Debug, Clone)]
pub struct ClosureSite {
    /// The code unit the closure executes.
    pub chunk: u32,
    /// Capture sources, resolved against the creating frame.
    pub captures: Vec<CaptureSrc>,
}

/// A `letrec` lambda-group creation site. All members share one capture
/// environment; each materialized member closure lands in a frame slot.
#[derive(Debug, Clone)]
pub struct RecSite {
    /// Member chunks, in binding order.
    pub chunks: Vec<u32>,
    /// The shared captures, resolved against the creating frame.
    pub captures: Vec<CaptureSrc>,
    /// Frame slots the member closures are stored into.
    pub slots: Vec<u16>,
}

/// A compiled top-level binding.
#[derive(Debug, Clone, Copy)]
pub enum GlobalDef {
    /// A function: entered directly via [`Op::CallGlobal`].
    Func {
        /// The chunk holding its body.
        chunk: u32,
        /// Curried arity.
        arity: u16,
    },
    /// A value binding, evaluated once at startup.
    Value {
        /// The chunk holding its initializer.
        chunk: u32,
    },
}

/// A whole compiled program.
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    /// All code units.
    pub chunks: Vec<Chunk>,
    /// Closure creation sites referenced by [`Op::MakeClosure`].
    pub closures: Vec<ClosureSite>,
    /// Recursive-group sites referenced by [`Op::MakeRec`].
    pub recs: Vec<RecSite>,
    /// Top-level bindings, parallel to `IrProgram::funcs`.
    pub globals: Vec<GlobalDef>,
    /// The program body's chunk.
    pub main: u32,
}

/// Compiles an IR program to bytecode (slot resolution plus flattening).
pub fn compile(p: &IrProgram) -> BytecodeProgram {
    let r = resolve_program(p);
    let globals: Vec<GlobalDef> = r
        .globals
        .iter()
        .map(|g| match *g {
            ResolvedGlobal::Func { unit, arity } => GlobalDef::Func { chunk: unit, arity },
            ResolvedGlobal::Value { unit } => GlobalDef::Value { chunk: unit },
        })
        .collect();
    let mut closures = Vec::new();
    let mut recs = Vec::new();
    let chunks = r
        .units
        .iter()
        .map(|u| {
            let mut e = Emitter {
                code: Vec::new(),
                closures: &mut closures,
                recs: &mut recs,
                globals: &globals,
            };
            e.emit(&u.body, true);
            Chunk {
                name: u.name,
                n_params: u.n_params,
                n_slots: u.n_slots,
                // Two rounds: the second fuses pairs whose first half was
                // itself produced by the first (e.g. the null-test branch).
                code: peephole(peephole(e.code)),
            }
        })
        .collect();
    BytecodeProgram {
        chunks,
        closures,
        recs,
        globals,
        main: r.main,
    }
}

/// The peephole pass: fuses adjacent load/apply pairs into
/// superinstructions, then remaps jump targets over the shortened code.
/// A pair is only fused when its second instruction is not a jump
/// target, and never for allocating primitives (the VM polls the GC at
/// allocation instructions while the operands are still rooted, so the
/// set of allocation instructions must survive fusion unchanged).
fn peephole(code: Vec<Op>) -> Vec<Op> {
    let mut is_target = vec![false; code.len() + 1];
    for op in &code {
        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfPairLocal(_, t) = op {
            is_target[*t as usize] = true;
        }
    }
    // old pc -> new pc, for jump remapping.
    let mut map = vec![0u32; code.len() + 1];
    let mut out = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        map[i] = out.len() as u32;
        let fused = if i + 1 < code.len() && !is_target[i + 1] {
            match (code[i], code[i + 1]) {
                (Op::LoadLocal(s), Op::Prim1(p)) => Some(Op::Prim1Local(p, s)),
                (Op::LoadLocal(s), Op::Prim2(p)) if !p.allocates() => Some(Op::Prim2Local(p, s)),
                (Op::PushInt(n), Op::Prim2(p)) if !p.allocates() => Some(Op::Prim2Imm(p, n)),
                // Second-round fusion: the `if (null l)` loop header. The
                // jump target is an *old* pc here; the remap below fixes it.
                (Op::Prim1Local(Prim::Null, s), Op::JumpIfFalse(t)) => {
                    Some(Op::JumpIfPairLocal(s, t))
                }
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = fused {
            map[i + 1] = out.len() as u32;
            out.push(op);
            i += 2;
        } else {
            out.push(code[i]);
            i += 1;
        }
    }
    map[code.len()] = out.len() as u32;
    for op in &mut out {
        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfPairLocal(_, t) = op {
            *t = map[*t as usize];
        }
    }
    out
}

struct Emitter<'a> {
    code: Vec<Op>,
    closures: &'a mut Vec<ClosureSite>,
    recs: &'a mut Vec<RecSite>,
    globals: &'a [GlobalDef],
}

impl Emitter<'_> {
    /// Emits `e`; when `tail` is set the emitted code is guaranteed to
    /// end the chunk (via `Return` or a tail call) — control never falls
    /// through past a tail expression.
    fn emit(&mut self, e: &RExpr, tail: bool) {
        match e {
            RExpr::Const(c) => {
                self.code.push(match c {
                    Const::Int(n) => Op::PushInt(*n),
                    Const::Bool(b) => Op::PushBool(*b),
                    Const::Nil => Op::PushNil,
                    Const::Prim(p) => Op::PushPrim(*p),
                });
                self.ret_if(tail);
            }
            RExpr::Var(x, slot) => {
                self.emit_load(*x, *slot);
                self.ret_if(tail);
            }
            RExpr::App(..) => self.emit_app(e, tail),
            RExpr::MakeClosure { unit, captures } => {
                let idx = self.closures.len() as u32;
                self.closures.push(ClosureSite {
                    chunk: *unit,
                    captures: captures.clone(),
                });
                self.code.push(Op::MakeClosure(idx));
                self.ret_if(tail);
            }
            RExpr::If(c, t, f) => {
                self.emit(c, false);
                let jf = self.jump_placeholder(Op::JumpIfFalse(0));
                self.emit(t, tail);
                if tail {
                    // Both branches end the chunk; no join point needed.
                    self.patch(jf);
                    self.emit(f, true);
                } else {
                    let jend = self.jump_placeholder(Op::Jump(0));
                    self.patch(jf);
                    self.emit(f, false);
                    self.patch(jend);
                }
            }
            RExpr::Letrec {
                group,
                values,
                body,
            } => {
                let mut bound: Vec<u16> = Vec::new();
                if let Some(g) = group {
                    let idx = self.recs.len() as u32;
                    self.recs.push(RecSite {
                        chunks: g.units.clone(),
                        captures: g.captures.clone(),
                        slots: g.slots.clone(),
                    });
                    self.code.push(Op::MakeRec(idx));
                    bound.extend(&g.slots);
                }
                for (slot, v) in values {
                    self.emit(v, false);
                    self.code.push(Op::StoreLocal(*slot));
                    bound.push(*slot);
                }
                self.emit(body, tail);
                if !tail {
                    // Scope exit: drop the bindings so the frame keeps
                    // nothing alive past its lexical extent. (In tail
                    // position the whole frame unwinds instead.)
                    for s in bound {
                        self.code.push(Op::ClearLocal(s));
                    }
                }
            }
            RExpr::Cons {
                alloc,
                head,
                tail: t,
                site,
            } => {
                self.emit(head, false);
                self.emit(t, false);
                self.code.push(Op::Cons {
                    mode: *alloc,
                    site: *site,
                });
                self.ret_if(tail);
            }
            RExpr::Dcons {
                reused,
                target,
                head,
                tail: t,
                site,
            } => {
                self.emit_load(*reused, *target);
                self.code.push(Op::CheckPair);
                self.emit(head, false);
                self.emit(t, false);
                self.code.push(Op::Dcons(*site));
                self.ret_if(tail);
            }
            RExpr::Prim1(p, a) => {
                self.emit(a, false);
                self.code.push(Op::Prim1(*p));
                self.ret_if(tail);
            }
            RExpr::Prim2(p, a, b) => {
                self.emit(a, false);
                self.emit(b, false);
                self.code.push(Op::Prim2(*p));
                self.ret_if(tail);
            }
            RExpr::Region { kind, inner } => {
                self.code.push(Op::EnterRegion(*kind));
                self.emit(inner, false);
                self.code.push(Op::ExitRegion);
                self.ret_if(tail);
            }
        }
    }

    /// Flattens an application spine. A head resolving to a top-level
    /// function with enough arguments becomes a direct chunk call;
    /// everything else goes through one-argument `Call`s, mirroring the
    /// interpreter's currying (same evaluation order, same errors).
    fn emit_app(&mut self, e: &RExpr, tail: bool) {
        let mut args = Vec::new();
        let mut head = e;
        while let RExpr::App(f, a) = head {
            args.push(a.as_ref());
            head = f;
        }
        args.reverse();
        if let RExpr::Var(_, SlotRef::GlobalFunc(i)) = head {
            let GlobalDef::Func { chunk, arity } = self.globals[*i as usize] else {
                unreachable!("GlobalFunc resolves to a function binding");
            };
            let arity = arity as usize;
            if args.len() >= arity {
                for a in &args[..arity] {
                    self.emit(a, false);
                }
                let rest = &args[arity..];
                if rest.is_empty() {
                    self.code.push(if tail {
                        Op::TailCallGlobal(chunk)
                    } else {
                        Op::CallGlobal(chunk)
                    });
                    return;
                }
                // Over-application: the saturated call produces a
                // function value, applied to the leftovers one by one.
                self.code.push(Op::CallGlobal(chunk));
                self.emit_arg_calls(rest, tail);
                return;
            }
        }
        self.emit(head, false);
        self.emit_arg_calls(&args, tail);
    }

    fn emit_arg_calls(&mut self, args: &[&RExpr], tail: bool) {
        for (k, a) in args.iter().enumerate() {
            self.emit(a, false);
            let last = k + 1 == args.len();
            self.code
                .push(if last && tail { Op::TailCall } else { Op::Call });
        }
    }

    fn emit_load(&mut self, name: Symbol, slot: SlotRef) {
        self.code.push(match slot {
            SlotRef::Local(i) => Op::LoadLocal(i),
            SlotRef::Capture(i) => Op::LoadCapture(i),
            SlotRef::Rec(j) => Op::LoadRec(j),
            SlotRef::GlobalFunc(i) => Op::LoadGlobalFunc(i),
            SlotRef::GlobalVal(i) => Op::LoadGlobalVal(i),
            SlotRef::Unbound => Op::Unbound(name),
        });
    }

    fn ret_if(&mut self, tail: bool) {
        if tail {
            self.code.push(Op::Return);
        }
    }

    fn jump_placeholder(&mut self, op: Op) -> usize {
        let at = self.code.len();
        self.code.push(op);
        at
    }

    /// Points the placeholder at `at` to the current end of code.
    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_opt::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn compile_src(src: &str) -> BytecodeProgram {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        compile(&lower_program(&p, &info))
    }

    fn chunk<'a>(b: &'a BytecodeProgram, name: &str) -> &'a Chunk {
        let n = Symbol::intern(name);
        b.chunks
            .iter()
            .find(|c| c.name == Some(n))
            .expect("named chunk")
    }

    #[test]
    fn every_chunk_ends_with_terminal_control() {
        let b = compile_src(
            "letrec rev l = if null l then nil else app (rev (cdr l)) (cons (car l) nil);
                    app a b = if null a then b else cons (car a) (app (cdr a) b)
             in rev [1, 2, 3]",
        );
        for c in &b.chunks {
            assert!(
                matches!(
                    c.code.last(),
                    Some(Op::Return | Op::TailCall | Op::TailCallGlobal(_))
                ),
                "chunk {:?} ends in {:?} (would fall through)",
                c.name,
                c.code.last()
            );
        }
    }

    #[test]
    fn self_recursive_tail_call_compiles_to_tail_call_global() {
        let b = compile_src("letrec loop n = if n = 0 then 0 else loop (n - 1) in loop 10");
        let c = chunk(&b, "loop");
        assert!(
            c.code.iter().any(|o| matches!(o, Op::TailCallGlobal(_))),
            "{:?}",
            c.code
        );
        assert!(
            !c.code
                .iter()
                .any(|o| matches!(o, Op::Call | Op::CallGlobal(_))),
            "no general dispatch on the recursion: {:?}",
            c.code
        );
    }

    #[test]
    fn non_tail_recursion_uses_call_global() {
        let b = compile_src("letrec sum l = if null l then 0 else car l + sum (cdr l) in sum [1]");
        let c = chunk(&b, "sum");
        assert!(c.code.iter().any(|o| matches!(o, Op::CallGlobal(_))));
        assert!(!c.code.iter().any(|o| matches!(o, Op::TailCallGlobal(_))));
    }

    #[test]
    fn if_branch_offsets_are_patched() {
        let b = compile_src("letrec f x = if x = 0 then 1 else 2 in f 3");
        let c = chunk(&b, "f");
        for (i, op) in c.code.iter().enumerate() {
            if let Op::Jump(t) | Op::JumpIfFalse(t) = op {
                assert!(
                    (*t as usize) <= c.code.len() && (*t as usize) > i,
                    "jump at {i} targets {t} (len {})",
                    c.code.len()
                );
            }
        }
    }

    #[test]
    fn letrec_bindings_clear_on_scope_exit_in_non_tail_position() {
        // The letrec is an operand of `+`, so its body is non-tail and
        // its slot must be cleared afterwards.
        let b = compile_src("letrec f n = (letrec a = cons n nil in car a) + 1 in f 4");
        let c = chunk(&b, "f");
        assert!(
            c.code.iter().any(|o| matches!(o, Op::ClearLocal(_))),
            "{:?}",
            c.code
        );
    }

    #[test]
    fn dcons_checks_target_before_head() {
        // DCONS is introduced by the reuse transformation, not parsed;
        // build the IR directly.
        use nml_opt::{IrExpr, IrFunc};
        let l = Symbol::intern("l");
        let ir = nml_opt::IrProgram {
            funcs: vec![IrFunc {
                name: Symbol::intern("f"),
                params: vec![l],
                body: IrExpr::Dcons {
                    reused: l,
                    head: Box::new(IrExpr::Const(Const::Int(9))),
                    tail: Box::new(IrExpr::Const(Const::Nil)),
                    site: SiteId(0),
                },
            }],
            body: IrExpr::Const(Const::Nil),
            next_site: 1,
        };
        let b = compile(&ir);
        let c = chunk(&b, "f");
        let check = c.code.iter().position(|o| matches!(o, Op::CheckPair));
        let head = c.code.iter().position(|o| matches!(o, Op::PushInt(9)));
        let (check, head) = (check.expect("CheckPair"), head.expect("head push"));
        assert!(check < head, "target checked before head evaluates");
    }

    #[test]
    fn under_application_goes_through_generic_call() {
        let b = compile_src(
            "letrec add x y = x + y;
                    use f = f 1
             in use (add 5)",
        );
        let main = &b.chunks[b.main as usize];
        // `add 5` under-applies a 2-ary global: generic Call path.
        assert!(
            main.code.iter().any(|o| matches!(o, Op::LoadGlobalFunc(_))),
            "{:?}",
            main.code
        );
        assert!(main
            .code
            .iter()
            .any(|o| matches!(o, Op::Call | Op::TailCall)));
    }
}
