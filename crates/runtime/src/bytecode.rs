//! Flat bytecode for the register/stack VM ([`crate::vm`]).
//!
//! The compiler consumes the slot-resolved tree produced by
//! [`nml_opt::resolve_program`] and flattens it into compact instruction
//! sequences with explicit jump offsets. Each [`nml_opt::ResolvedUnit`]
//! becomes one [`Chunk`] (same index), so a resolved `GlobalFunc`
//! reference is directly a chunk to enter.
//!
//! Design points:
//!
//! - **Tail calls are resolved statically.** The emitter threads a
//!   tail-position flag; an application in tail position compiles to
//!   [`Op::TailCall`]/[`Op::TailCallGlobal`], which replace the current
//!   frame in place, and every other tail expression ends in
//!   [`Op::Return`]. Compiled code never falls off the end of a chunk.
//! - **Saturated global calls skip closure creation.** An application
//!   spine whose head resolves to a top-level function with enough
//!   arguments compiles to a single [`Op::CallGlobal`]: the arguments
//!   are moved from the operand stack straight into the callee's frame
//!   slots, with no intermediate partial-application values.
//! - **`DCONS` keeps the interpreter's error ordering.** The reuse
//!   target is loaded and checked ([`Op::CheckPair`]) *before* the head
//!   and tail evaluate, exactly like the tree-walker.
//! - **`letrec` slots are cleared on scope exit** ([`Op::ClearLocal`]),
//!   so a dead binding in a frame slot does not outlive its scope — the
//!   VM's root set stays as tight as the tree-walker's environment
//!   chains (this matters for region validation, which proves
//!   *unreachability*).

use nml_opt::{
    resolve_program, AllocMode, CaptureSrc, IrProgram, RExpr, RecGroup, RegionKind, ResolvedGlobal,
    SiteId, SlotRef,
};
use nml_syntax::ast::Const;
use nml_syntax::{Prim, Symbol};

/// One VM instruction. `Copy` so the dispatch loop can fetch by value
/// and keep no borrow of the code while it mutates the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push the empty list.
    PushNil,
    /// Push a primitive as a first-class function value.
    PushPrim(Prim),
    /// Push frame slot `i`.
    LoadLocal(u16),
    /// Push capture `i` of the current closure.
    LoadCapture(u16),
    /// Materialize member `j` of the current recursive group (shares the
    /// current capture environment).
    LoadRec(u16),
    /// Push top-level function `i` (a partial-application seed).
    LoadGlobalFunc(u32),
    /// Push top-level value binding `i`; raises `Unbound` when startup
    /// has not initialized it yet.
    LoadGlobalVal(u32),
    /// A statically unbound name: raises `Unbound` with this name.
    Unbound(Symbol),
    /// Pop into frame slot `i`.
    StoreLocal(u16),
    /// Overwrite frame slot `i` with nil (scope exit).
    ClearLocal(u16),
    /// Build a closure from closure-site `i`, copying its captures out
    /// of the current frame.
    MakeClosure(u32),
    /// Build a mutually recursive closure group from rec-site `i`: one
    /// shared capture environment, one materialized closure per member,
    /// stored into the site's frame slots.
    MakeRec(u32),
    /// Unconditional jump to an absolute offset in the current chunk.
    Jump(u32),
    /// Pop a bool; jump to the offset when it is `false`.
    JumpIfFalse(u32),
    /// Pop argument then callee; apply one argument.
    Call,
    /// Like [`Op::Call`] but replaces the current frame (tail position).
    TailCall,
    /// Enter chunk `c` directly; its `n_params` arguments move from the
    /// operand stack into the new frame's slots.
    CallGlobal(u32),
    /// Like [`Op::CallGlobal`] but replaces the current frame.
    TailCallGlobal(u32),
    /// Pop the result and return to the calling frame.
    Return,
    /// Pop tail then head; allocate a cons cell with the given mode.
    Cons {
        /// Storage decision from the escape analysis.
        mode: AllocMode,
        /// Allocation site (for statistics and checked-mode claims).
        site: SiteId,
    },
    /// Assert the top of stack is a pair (the `DCONS` target check,
    /// *before* head/tail evaluate).
    CheckPair,
    /// Pop tail, head, and target cell; reuse the target in place (or
    /// copy-and-retire in checked mode).
    Dcons(SiteId),
    /// A scalar-replaced (SROA'd) cons site: head and tail were just
    /// stored into frame slots and **no cell exists**. Only bumps the
    /// `allocs_elided` statistic — no stack effect, and no GC poll is
    /// needed because nothing allocates (the scalar slots are rooted by
    /// the frame scan like any other local).
    ElideCons(SiteId),
    /// Pop one value, apply a unary primitive, push the result.
    Prim1(Prim),
    /// Pop two values, apply a binary primitive, push the result.
    Prim2(Prim),
    /// Fused `LoadLocal(i); Prim1(p)`: apply the primitive straight to
    /// frame slot `i` (peephole superinstruction — no operand-stack
    /// round trip).
    Prim1Local(Prim, u16),
    /// Fused `Prim1Local(p1, i); Prim1(p2)`: apply `p1` to frame slot
    /// `i`, then `p2` to the result — the chained pair projection
    /// (`car (cdr x)`, `car (car l)`) that dominates tuple-shaped
    /// workloads like `map_pair`. Unary primitives never allocate, so
    /// the GC-poll instruction set is unaffected, and both applications
    /// replay the generic path's type errors verbatim.
    Proj2Local(Prim, Prim, u16),
    /// Fused `LoadLocal(i); Prim2(p)`: pop the left operand, take the
    /// *right* operand from frame slot `i`. Never emitted for
    /// allocating primitives (keeps the GC-poll sites exact).
    Prim2Local(Prim, u16),
    /// Fused `PushInt(n); Prim2(p)`: pop the left operand, use `n` as
    /// the right. Never emitted for allocating primitives.
    Prim2Imm(Prim, i64),
    /// Fused `Prim1Local(Null, i); JumpIfFalse(t)` — the ubiquitous
    /// `if (null l)` loop header: jump when frame slot `i` holds a cons
    /// cell, fall through when nil.
    JumpIfPairLocal(u16, u32),
    /// Open a dynamic extent (stack region or block).
    EnterRegion(RegionKind),
    /// Close the innermost extent opened by this chunk.
    ExitRegion,
}

/// One compiled code unit (a top-level binding body, a lambda, or the
/// program body). Chunk indices coincide with resolved-unit indices.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Name, when the chunk is a named binding (diagnostics only).
    pub name: Option<Symbol>,
    /// Number of parameters, occupying slots `0..n_params` on entry.
    pub n_params: u16,
    /// Total frame slots (parameters plus `letrec` bindings).
    pub n_slots: u16,
    /// The instructions.
    pub code: Vec<Op>,
}

/// A closure creation site: which chunk the closure runs and where its
/// captures are copied from in the *creating* frame.
#[derive(Debug, Clone)]
pub struct ClosureSite {
    /// The code unit the closure executes.
    pub chunk: u32,
    /// Capture sources, resolved against the creating frame.
    pub captures: Vec<CaptureSrc>,
}

/// A `letrec` lambda-group creation site. All members share one capture
/// environment; each materialized member closure lands in a frame slot.
#[derive(Debug, Clone)]
pub struct RecSite {
    /// Member chunks, in binding order.
    pub chunks: Vec<u32>,
    /// The shared captures, resolved against the creating frame.
    pub captures: Vec<CaptureSrc>,
    /// Frame slots the member closures are stored into.
    pub slots: Vec<u16>,
}

/// A compiled top-level binding.
#[derive(Debug, Clone, Copy)]
pub enum GlobalDef {
    /// A function: entered directly via [`Op::CallGlobal`].
    Func {
        /// The chunk holding its body.
        chunk: u32,
        /// Curried arity.
        arity: u16,
    },
    /// A value binding, evaluated once at startup.
    Value {
        /// The chunk holding its initializer.
        chunk: u32,
    },
}

/// A whole compiled program.
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    /// All code units.
    pub chunks: Vec<Chunk>,
    /// Closure creation sites referenced by [`Op::MakeClosure`].
    pub closures: Vec<ClosureSite>,
    /// Recursive-group sites referenced by [`Op::MakeRec`].
    pub recs: Vec<RecSite>,
    /// Top-level bindings, parallel to `IrProgram::funcs`.
    pub globals: Vec<GlobalDef>,
    /// The program body's chunk.
    pub main: u32,
}

/// Compiles an IR program to bytecode (slot resolution plus flattening).
pub fn compile(p: &IrProgram) -> BytecodeProgram {
    let r = resolve_program(p);
    let globals: Vec<GlobalDef> = r
        .globals
        .iter()
        .map(|g| match *g {
            ResolvedGlobal::Func { unit, arity } => GlobalDef::Func { chunk: unit, arity },
            ResolvedGlobal::Value { unit } => GlobalDef::Value { chunk: unit },
        })
        .collect();
    let mut closures = Vec::new();
    let mut recs = Vec::new();
    let chunks = r
        .units
        .iter()
        .map(|u| {
            let mut e = Emitter {
                code: Vec::new(),
                closures: &mut closures,
                recs: &mut recs,
                globals: &globals,
                next_slot: u.n_slots,
            };
            e.emit(&u.body, true);
            let n_slots = e.next_slot;
            Chunk {
                name: u.name,
                n_params: u.n_params,
                // Includes any scalar slots minted for SROA'd cons cells.
                n_slots,
                // Two rounds: the second fuses pairs whose first half was
                // itself produced by the first (e.g. the null-test branch).
                code: peephole(peephole(e.code)),
            }
        })
        .collect();
    BytecodeProgram {
        chunks,
        closures,
        recs,
        globals,
        main: r.main,
    }
}

/// The peephole pass: fuses adjacent load/apply pairs into
/// superinstructions, then remaps jump targets over the shortened code.
/// A pair is only fused when its second instruction is not a jump
/// target, and never for allocating primitives (the VM polls the GC at
/// allocation instructions while the operands are still rooted, so the
/// set of allocation instructions must survive fusion unchanged).
fn peephole(code: Vec<Op>) -> Vec<Op> {
    let mut is_target = vec![false; code.len() + 1];
    for op in &code {
        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfPairLocal(_, t) = op {
            is_target[*t as usize] = true;
        }
    }
    // old pc -> new pc, for jump remapping.
    let mut map = vec![0u32; code.len() + 1];
    let mut out = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        map[i] = out.len() as u32;
        let fused = if i + 1 < code.len() && !is_target[i + 1] {
            match (code[i], code[i + 1]) {
                (Op::LoadLocal(s), Op::Prim1(p)) => Some(Op::Prim1Local(p, s)),
                (Op::LoadLocal(s), Op::Prim2(p)) if !p.allocates() => Some(Op::Prim2Local(p, s)),
                (Op::PushInt(n), Op::Prim2(p)) if !p.allocates() => Some(Op::Prim2Imm(p, n)),
                // Second-round fusion: the `if (null l)` loop header. The
                // jump target is an *old* pc here; the remap below fixes it.
                (Op::Prim1Local(Prim::Null, s), Op::JumpIfFalse(t)) => {
                    Some(Op::JumpIfPairLocal(s, t))
                }
                // Second-round fusion: the chained projection of a local
                // (`car (cdr x)` and friends). Unary primitives never
                // allocate, so GC-poll sites survive.
                (Op::Prim1Local(p1, s), Op::Prim1(p2)) => Some(Op::Proj2Local(p1, p2, s)),
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = fused {
            map[i + 1] = out.len() as u32;
            out.push(op);
            i += 2;
        } else {
            out.push(code[i]);
            i += 1;
        }
    }
    map[code.len()] = out.len() as u32;
    for op in &mut out {
        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfPairLocal(_, t) = op {
            *t = map[*t as usize];
        }
    }
    out
}

struct Emitter<'a> {
    code: Vec<Op>,
    closures: &'a mut Vec<ClosureSite>,
    recs: &'a mut Vec<RecSite>,
    globals: &'a [GlobalDef],
    /// Next free frame slot; starts at the resolver's `n_slots` and
    /// grows when SROA mints scalar slots for an elided cons cell.
    next_slot: u16,
}

impl Emitter<'_> {
    /// Emits `e`; when `tail` is set the emitted code is guaranteed to
    /// end the chunk (via `Return` or a tail call) — control never falls
    /// through past a tail expression.
    fn emit(&mut self, e: &RExpr, tail: bool) {
        match e {
            RExpr::Const(c) => {
                self.code.push(match c {
                    Const::Int(n) => Op::PushInt(*n),
                    Const::Bool(b) => Op::PushBool(*b),
                    Const::Nil => Op::PushNil,
                    Const::Prim(p) => Op::PushPrim(*p),
                });
                self.ret_if(tail);
            }
            RExpr::Var(x, slot) => {
                self.emit_load(*x, *slot);
                self.ret_if(tail);
            }
            RExpr::App(..) => self.emit_app(e, tail),
            RExpr::MakeClosure { unit, captures } => {
                let idx = self.closures.len() as u32;
                self.closures.push(ClosureSite {
                    chunk: *unit,
                    captures: captures.clone(),
                });
                self.code.push(Op::MakeClosure(idx));
                self.ret_if(tail);
            }
            RExpr::If(c, t, f) => {
                self.emit(c, false);
                let jf = self.jump_placeholder(Op::JumpIfFalse(0));
                self.emit(t, tail);
                if tail {
                    // Both branches end the chunk; no join point needed.
                    self.patch(jf);
                    self.emit(f, true);
                } else {
                    let jend = self.jump_placeholder(Op::Jump(0));
                    self.patch(jf);
                    self.emit(f, false);
                    self.patch(jend);
                }
            }
            RExpr::Letrec {
                group,
                values,
                body,
            } => {
                let mut bound: Vec<u16> = Vec::new();
                if let Some(g) = group {
                    let idx = self.recs.len() as u32;
                    self.recs.push(RecSite {
                        chunks: g.units.clone(),
                        captures: g.captures.clone(),
                        slots: g.slots.clone(),
                    });
                    self.code.push(Op::MakeRec(idx));
                    bound.extend(&g.slots);
                }
                let any_elided = values.iter().any(|(_, v)| {
                    matches!(
                        v,
                        RExpr::Cons {
                            alloc: AllocMode::Elided,
                            ..
                        }
                    )
                });
                if !any_elided {
                    for (slot, v) in values {
                        self.emit(v, false);
                        self.code.push(Op::StoreLocal(*slot));
                        bound.push(*slot);
                    }
                    self.emit(body, tail);
                } else {
                    self.emit_letrec_scalarized(group, values, body, tail, &mut bound);
                }
                if !tail {
                    // Scope exit: drop the bindings so the frame keeps
                    // nothing alive past its lexical extent. (In tail
                    // position the whole frame unwinds instead.)
                    for s in bound {
                        self.code.push(Op::ClearLocal(s));
                    }
                }
            }
            RExpr::Cons {
                alloc,
                head,
                tail: t,
                site,
            } => {
                self.emit(head, false);
                self.emit(t, false);
                self.code.push(Op::Cons {
                    mode: *alloc,
                    site: *site,
                });
                self.ret_if(tail);
            }
            RExpr::Dcons {
                reused,
                target,
                head,
                tail: t,
                site,
            } => {
                self.emit_load(*reused, *target);
                self.code.push(Op::CheckPair);
                self.emit(head, false);
                self.emit(t, false);
                self.code.push(Op::Dcons(*site));
                self.ret_if(tail);
            }
            RExpr::Prim1(p, a) => {
                self.emit(a, false);
                self.code.push(Op::Prim1(*p));
                self.ret_if(tail);
            }
            RExpr::Prim2(p, a, b) => {
                self.emit(a, false);
                self.emit(b, false);
                self.code.push(Op::Prim2(*p));
                self.ret_if(tail);
            }
            RExpr::Region { kind, inner } => {
                self.code.push(Op::EnterRegion(*kind));
                self.emit(inner, false);
                self.code.push(Op::ExitRegion);
                self.ret_if(tail);
            }
        }
    }

    /// Flattens an application spine. A head resolving to a top-level
    /// function with enough arguments becomes a direct chunk call;
    /// everything else goes through one-argument `Call`s, mirroring the
    /// interpreter's currying (same evaluation order, same errors).
    fn emit_app(&mut self, e: &RExpr, tail: bool) {
        let mut args = Vec::new();
        let mut head = e;
        while let RExpr::App(f, a) = head {
            args.push(a.as_ref());
            head = f;
        }
        args.reverse();
        if let RExpr::Var(_, SlotRef::GlobalFunc(i)) = head {
            let GlobalDef::Func { chunk, arity } = self.globals[*i as usize] else {
                unreachable!("GlobalFunc resolves to a function binding");
            };
            let arity = arity as usize;
            if args.len() >= arity {
                for a in &args[..arity] {
                    self.emit(a, false);
                }
                let rest = &args[arity..];
                if rest.is_empty() {
                    self.code.push(if tail {
                        Op::TailCallGlobal(chunk)
                    } else {
                        Op::CallGlobal(chunk)
                    });
                    return;
                }
                // Over-application: the saturated call produces a
                // function value, applied to the leftovers one by one.
                self.code.push(Op::CallGlobal(chunk));
                self.emit_arg_calls(rest, tail);
                return;
            }
        }
        self.emit(head, false);
        self.emit_arg_calls(&args, tail);
    }

    /// The `letrec` path taken when at least one binding carries an
    /// [`AllocMode::Elided`] license. Each licensed `cons` binding is
    /// **re-verified syntactically** against everything that can see its
    /// slot (the same letrec's rec-group captures, later sibling values,
    /// and the body): every reference must be directly under `car`,
    /// `cdr`, or `null`. Only then is the cell scalar-replaced — head
    /// and tail land in two fresh frame slots, projections become plain
    /// slot loads, `null` folds to `false`, and [`Op::ElideCons`] records
    /// the vanished allocation. A binding that fails the re-check (a
    /// wrong or sabotaged mark, a bare use, a capture, a dcons target,
    /// slot exhaustion) is emitted unchanged and its `Elided` mode
    /// allocates on the heap — the mark is a license, never an
    /// obligation, so it can never change program meaning.
    fn emit_letrec_scalarized(
        &mut self,
        group: &Option<RecGroup>,
        values: &[(u16, RExpr)],
        body: &RExpr,
        tail: bool,
        bound: &mut Vec<u16>,
    ) {
        let group_caps: &[CaptureSrc] = group.as_ref().map_or(&[], |g| &g.captures);
        let mut rest: Vec<(u16, RExpr)> = values.to_vec();
        let mut body = body.clone();
        let mut i = 0;
        while i < rest.len() {
            let (slot, v) = rest[i].clone();
            let scalarized = match &v {
                RExpr::Cons {
                    alloc: AllocMode::Elided,
                    head,
                    tail: t,
                    site,
                } if self.scalarize_ok(slot, head, t, group_caps, &rest[i + 1..], &body) => {
                    let h = self.next_slot;
                    let ts = self.next_slot + 1;
                    self.next_slot += 2;
                    // Same evaluation order as the cons it replaces:
                    // head first, then tail. The head is rooted in its
                    // slot before the tail can allocate.
                    self.emit(head, false);
                    self.code.push(Op::StoreLocal(h));
                    self.emit(t, false);
                    self.code.push(Op::StoreLocal(ts));
                    self.code.push(Op::ElideCons(*site));
                    for (_, r) in rest[i + 1..].iter_mut() {
                        subst_scalar(r, slot, h, ts);
                    }
                    subst_scalar(&mut body, slot, h, ts);
                    bound.push(h);
                    bound.push(ts);
                    true
                }
                _ => false,
            };
            if !scalarized {
                self.emit(&v, false);
                self.code.push(Op::StoreLocal(slot));
                bound.push(slot);
            }
            i += 1;
        }
        self.emit(&body, tail);
    }

    /// The authoritative SROA safety check: slot budget, no
    /// self-reference from the cell's own head/tail, no capture by the
    /// letrec's own rec group, and projection-only use everywhere the
    /// slot is visible.
    fn scalarize_ok(
        &self,
        slot: u16,
        head: &RExpr,
        tail: &RExpr,
        group_caps: &[CaptureSrc],
        later: &[(u16, RExpr)],
        body: &RExpr,
    ) -> bool {
        self.next_slot as u32 + 2 <= u16::MAX as u32
            && !group_caps.contains(&CaptureSrc::Local(slot))
            && !uses_slot(head, slot)
            && !uses_slot(tail, slot)
            && later.iter().all(|(_, r)| scalar_safe(r, slot))
            && scalar_safe(body, slot)
    }

    fn emit_arg_calls(&mut self, args: &[&RExpr], tail: bool) {
        for (k, a) in args.iter().enumerate() {
            self.emit(a, false);
            let last = k + 1 == args.len();
            self.code
                .push(if last && tail { Op::TailCall } else { Op::Call });
        }
    }

    fn emit_load(&mut self, name: Symbol, slot: SlotRef) {
        self.code.push(match slot {
            SlotRef::Local(i) => Op::LoadLocal(i),
            SlotRef::Capture(i) => Op::LoadCapture(i),
            SlotRef::Rec(j) => Op::LoadRec(j),
            SlotRef::GlobalFunc(i) => Op::LoadGlobalFunc(i),
            SlotRef::GlobalVal(i) => Op::LoadGlobalVal(i),
            SlotRef::Unbound => Op::Unbound(name),
        });
    }

    fn ret_if(&mut self, tail: bool) {
        if tail {
            self.code.push(Op::Return);
        }
    }

    fn jump_placeholder(&mut self, op: Op) -> usize {
        let at = self.code.len();
        self.code.push(op);
        at
    }

    /// Points the placeholder at `at` to the current end of code.
    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }
}

/// Does `e` reference frame slot `slot` in any way — bare load,
/// projection operand, `dcons` target, or closure capture? (Slots are
/// allocated monotonically per unit, so a slot index is never reused by
/// shadowing; a plain scan is exact.)
fn uses_slot(e: &RExpr, slot: u16) -> bool {
    match e {
        RExpr::Const(_) => false,
        RExpr::Var(_, s) => *s == SlotRef::Local(slot),
        RExpr::App(f, a) => uses_slot(f, slot) || uses_slot(a, slot),
        RExpr::MakeClosure { captures, .. } => captures.contains(&CaptureSrc::Local(slot)),
        RExpr::If(c, t, f) => uses_slot(c, slot) || uses_slot(t, slot) || uses_slot(f, slot),
        RExpr::Letrec {
            group,
            values,
            body,
        } => {
            group
                .as_ref()
                .is_some_and(|g| g.captures.contains(&CaptureSrc::Local(slot)))
                || values.iter().any(|(_, v)| uses_slot(v, slot))
                || uses_slot(body, slot)
        }
        RExpr::Cons { head, tail, .. } => uses_slot(head, slot) || uses_slot(tail, slot),
        RExpr::Dcons {
            target, head, tail, ..
        } => *target == SlotRef::Local(slot) || uses_slot(head, slot) || uses_slot(tail, slot),
        RExpr::Prim1(_, a) => uses_slot(a, slot),
        RExpr::Prim2(_, a, b) => uses_slot(a, slot) || uses_slot(b, slot),
        RExpr::Region { inner, .. } => uses_slot(inner, slot),
    }
}

/// Is every reference to `slot` in `e` directly under `car`, `cdr`, or
/// `null`? Those are the only shapes [`subst_scalar`] can rewrite; any
/// other use (a bare load, a capture, a `dcons` target, `fst`/`snd`)
/// makes the cell observable as a value and vetoes scalarization.
fn scalar_safe(e: &RExpr, slot: u16) -> bool {
    match e {
        RExpr::Const(_) => true,
        RExpr::Var(_, s) => *s != SlotRef::Local(slot),
        RExpr::App(f, a) => scalar_safe(f, slot) && scalar_safe(a, slot),
        RExpr::MakeClosure { captures, .. } => !captures.contains(&CaptureSrc::Local(slot)),
        RExpr::If(c, t, f) => scalar_safe(c, slot) && scalar_safe(t, slot) && scalar_safe(f, slot),
        RExpr::Letrec {
            group,
            values,
            body,
        } => {
            !group
                .as_ref()
                .is_some_and(|g| g.captures.contains(&CaptureSrc::Local(slot)))
                && values.iter().all(|(_, v)| scalar_safe(v, slot))
                && scalar_safe(body, slot)
        }
        RExpr::Cons { head, tail, .. } => scalar_safe(head, slot) && scalar_safe(tail, slot),
        RExpr::Dcons {
            target, head, tail, ..
        } => *target != SlotRef::Local(slot) && scalar_safe(head, slot) && scalar_safe(tail, slot),
        RExpr::Prim1(p, a) => {
            if let RExpr::Var(_, SlotRef::Local(s)) = **a {
                if s == slot {
                    return matches!(p, Prim::Car | Prim::Cdr | Prim::Null);
                }
            }
            scalar_safe(a, slot)
        }
        RExpr::Prim2(_, a, b) => scalar_safe(a, slot) && scalar_safe(b, slot),
        RExpr::Region { inner, .. } => scalar_safe(inner, slot),
    }
}

/// Rewrites every projection of `slot` to its scalar form: `car` →
/// load of `h`, `cdr` → load of `t`, `null` → `false` (the cell is a
/// cons by construction). Callers must have established
/// [`scalar_safe`]; no other reference shape can remain.
fn subst_scalar(e: &mut RExpr, slot: u16, h: u16, t: u16) {
    if let RExpr::Prim1(p, a) = e {
        if let RExpr::Var(x, SlotRef::Local(s)) = **a {
            if s == slot {
                *e = match p {
                    Prim::Car => RExpr::Var(x, SlotRef::Local(h)),
                    Prim::Cdr => RExpr::Var(x, SlotRef::Local(t)),
                    Prim::Null => RExpr::Const(Const::Bool(false)),
                    other => unreachable!("scalar_safe admits only car/cdr/null, got {other:?}"),
                };
                return;
            }
        }
    }
    match e {
        RExpr::Const(_) | RExpr::Var(..) | RExpr::MakeClosure { .. } => {}
        RExpr::App(f, a) => {
            subst_scalar(f, slot, h, t);
            subst_scalar(a, slot, h, t);
        }
        RExpr::If(c, th, el) => {
            subst_scalar(c, slot, h, t);
            subst_scalar(th, slot, h, t);
            subst_scalar(el, slot, h, t);
        }
        RExpr::Letrec { values, body, .. } => {
            for (_, v) in values.iter_mut() {
                subst_scalar(v, slot, h, t);
            }
            subst_scalar(body, slot, h, t);
        }
        RExpr::Cons { head, tail, .. } | RExpr::Dcons { head, tail, .. } => {
            subst_scalar(head, slot, h, t);
            subst_scalar(tail, slot, h, t);
        }
        RExpr::Prim1(_, a) => subst_scalar(a, slot, h, t),
        RExpr::Prim2(_, a, b) => {
            subst_scalar(a, slot, h, t);
            subst_scalar(b, slot, h, t);
        }
        RExpr::Region { inner, .. } => subst_scalar(inner, slot, h, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_opt::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn compile_src(src: &str) -> BytecodeProgram {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        compile(&lower_program(&p, &info))
    }

    fn chunk<'a>(b: &'a BytecodeProgram, name: &str) -> &'a Chunk {
        let n = Symbol::intern(name);
        b.chunks
            .iter()
            .find(|c| c.name == Some(n))
            .expect("named chunk")
    }

    #[test]
    fn every_chunk_ends_with_terminal_control() {
        let b = compile_src(
            "letrec rev l = if null l then nil else app (rev (cdr l)) (cons (car l) nil);
                    app a b = if null a then b else cons (car a) (app (cdr a) b)
             in rev [1, 2, 3]",
        );
        for c in &b.chunks {
            assert!(
                matches!(
                    c.code.last(),
                    Some(Op::Return | Op::TailCall | Op::TailCallGlobal(_))
                ),
                "chunk {:?} ends in {:?} (would fall through)",
                c.name,
                c.code.last()
            );
        }
    }

    #[test]
    fn self_recursive_tail_call_compiles_to_tail_call_global() {
        let b = compile_src("letrec loop n = if n = 0 then 0 else loop (n - 1) in loop 10");
        let c = chunk(&b, "loop");
        assert!(
            c.code.iter().any(|o| matches!(o, Op::TailCallGlobal(_))),
            "{:?}",
            c.code
        );
        assert!(
            !c.code
                .iter()
                .any(|o| matches!(o, Op::Call | Op::CallGlobal(_))),
            "no general dispatch on the recursion: {:?}",
            c.code
        );
    }

    #[test]
    fn non_tail_recursion_uses_call_global() {
        let b = compile_src("letrec sum l = if null l then 0 else car l + sum (cdr l) in sum [1]");
        let c = chunk(&b, "sum");
        assert!(c.code.iter().any(|o| matches!(o, Op::CallGlobal(_))));
        assert!(!c.code.iter().any(|o| matches!(o, Op::TailCallGlobal(_))));
    }

    #[test]
    fn if_branch_offsets_are_patched() {
        let b = compile_src("letrec f x = if x = 0 then 1 else 2 in f 3");
        let c = chunk(&b, "f");
        for (i, op) in c.code.iter().enumerate() {
            if let Op::Jump(t) | Op::JumpIfFalse(t) = op {
                assert!(
                    (*t as usize) <= c.code.len() && (*t as usize) > i,
                    "jump at {i} targets {t} (len {})",
                    c.code.len()
                );
            }
        }
    }

    #[test]
    fn chained_projection_fuses_into_proj2local() {
        // `car (cdr x)` — map_pair's hot pair-projection sequence — must
        // collapse to a single superinstruction in the second peephole
        // round: LoadLocal;Cdr;Car → Prim1Local(Cdr);Car → Proj2Local.
        let b = compile_src("letrec second x = car (cdr x) in second [1, 2]");
        let c = chunk(&b, "second");
        assert!(
            c.code
                .iter()
                .any(|o| matches!(o, Op::Proj2Local(Prim::Cdr, Prim::Car, 0))),
            "{:?}",
            c.code
        );
        assert_eq!(
            count_op(c, |o| matches!(o, Op::Prim1(_) | Op::Prim1Local(..))),
            0,
            "{:?}",
            c.code
        );
    }

    #[test]
    fn letrec_bindings_clear_on_scope_exit_in_non_tail_position() {
        // The letrec is an operand of `+`, so its body is non-tail and
        // its slot must be cleared afterwards.
        let b = compile_src("letrec f n = (letrec a = cons n nil in car a) + 1 in f 4");
        let c = chunk(&b, "f");
        assert!(
            c.code.iter().any(|o| matches!(o, Op::ClearLocal(_))),
            "{:?}",
            c.code
        );
    }

    #[test]
    fn dcons_checks_target_before_head() {
        // DCONS is introduced by the reuse transformation, not parsed;
        // build the IR directly.
        use nml_opt::{IrExpr, IrFunc};
        let l = Symbol::intern("l");
        let ir = nml_opt::IrProgram {
            funcs: vec![IrFunc {
                name: Symbol::intern("f"),
                params: vec![l],
                body: IrExpr::Dcons {
                    reused: l,
                    head: Box::new(IrExpr::Const(Const::Int(9))),
                    tail: Box::new(IrExpr::Const(Const::Nil)),
                    site: SiteId(0),
                },
            }],
            body: IrExpr::Const(Const::Nil),
            next_site: 1,
        };
        let b = compile(&ir);
        let c = chunk(&b, "f");
        let check = c.code.iter().position(|o| matches!(o, Op::CheckPair));
        let head = c.code.iter().position(|o| matches!(o, Op::PushInt(9)));
        let (check, head) = (check.expect("CheckPair"), head.expect("head push"));
        assert!(check < head, "target checked before head evaluates");
    }

    /// Forces the SROA license onto every cons site, then compiles. The
    /// emitter's syntactic re-check must sort the safe sites from the
    /// unsafe ones on its own — exactly the sabotage scenario.
    fn compile_all_elided(src: &str) -> BytecodeProgram {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let mut ir = lower_program(&p, &info);
        let mut mark = |e: &mut nml_opt::IrExpr| {
            if let nml_opt::IrExpr::Cons { alloc, .. } = e {
                *alloc = AllocMode::Elided;
            }
        };
        let mut funcs = std::mem::take(&mut ir.funcs);
        for f in &mut funcs {
            nml_opt::walk_ir_mut(&mut f.body, &mut mark);
        }
        ir.funcs = funcs;
        nml_opt::walk_ir_mut(&mut ir.body, &mut mark);
        compile(&ir)
    }

    fn count_op(c: &Chunk, pred: impl Fn(&Op) -> bool) -> usize {
        c.code.iter().filter(|o| pred(o)).count()
    }

    #[test]
    fn projected_binding_scalarizes() {
        let b = compile_all_elided("letrec f n = letrec p = cons n nil in car p + 1 in f 3");
        let c = chunk(&b, "f");
        assert_eq!(
            count_op(c, |o| matches!(o, Op::ElideCons(_))),
            1,
            "{:?}",
            c.code
        );
        assert_eq!(
            count_op(c, |o| matches!(o, Op::Cons { .. })),
            0,
            "{:?}",
            c.code
        );
    }

    #[test]
    fn bare_use_defuses_the_license() {
        // `p` is returned as a value: the cell is observable, so the
        // forced mark must fall back to a plain heap allocation.
        let b = compile_all_elided("letrec f n = letrec p = cons n nil in p in f 3");
        let c = chunk(&b, "f");
        assert_eq!(
            count_op(c, |o| matches!(o, Op::ElideCons(_))),
            0,
            "{:?}",
            c.code
        );
        assert_eq!(
            count_op(c, |o| matches!(
                o,
                Op::Cons {
                    mode: AllocMode::Elided,
                    ..
                }
            )),
            1,
            "{:?}",
            c.code
        );
    }

    #[test]
    fn null_projection_folds_to_false() {
        let b = compile_all_elided(
            "letrec f n = letrec p = cons n nil in if null p then 0 else car p in f 7",
        );
        let c = chunk(&b, "f");
        assert_eq!(
            count_op(c, |o| matches!(o, Op::ElideCons(_))),
            1,
            "{:?}",
            c.code
        );
        assert!(
            c.code.iter().any(|o| matches!(o, Op::PushBool(false))),
            "null of a scalarized cons folds to false: {:?}",
            c.code
        );
    }

    #[test]
    fn closure_capture_defuses_the_license() {
        // The nested letrec's rec group captures `p`'s slot (rec-group
        // members see the scope *outside* their own letrec), so the cell
        // must stay materialized.
        let b = compile_all_elided(
            "letrec f n = letrec p = cons n nil in
                          letrec g x = x + car p in g 1
             in f 5",
        );
        let c = chunk(&b, "f");
        assert_eq!(
            count_op(c, |o| matches!(o, Op::ElideCons(_))),
            0,
            "{:?}",
            c.code
        );
        assert_eq!(
            count_op(c, |o| matches!(
                o,
                Op::Cons {
                    mode: AllocMode::Elided,
                    ..
                }
            )),
            1,
            "{:?}",
            c.code
        );
    }

    #[test]
    fn sibling_projections_scalarize_in_chain() {
        // `p` feeds `q` through a projection and `q` is itself only
        // projected: both cells vanish.
        let b = compile_all_elided(
            "letrec f n = letrec p = cons n nil; q = cons (car p) nil in car q in f 2",
        );
        let c = chunk(&b, "f");
        assert_eq!(
            count_op(c, |o| matches!(o, Op::ElideCons(_))),
            2,
            "{:?}",
            c.code
        );
        assert_eq!(
            count_op(c, |o| matches!(o, Op::Cons { .. })),
            0,
            "{:?}",
            c.code
        );
    }

    #[test]
    fn scalar_slots_extend_the_frame() {
        let src = "letrec f n = letrec p = cons n nil in car p + 1 in f 3";
        let plain = compile_src(src);
        let elided = compile_all_elided(src);
        assert_eq!(
            chunk(&elided, "f").n_slots,
            chunk(&plain, "f").n_slots + 2,
            "one scalarized cell mints exactly two scalar slots"
        );
    }

    #[test]
    fn under_application_goes_through_generic_call() {
        let b = compile_src(
            "letrec add x y = x + y;
                    use f = f 1
             in use (add 5)",
        );
        let main = &b.chunks[b.main as usize];
        // `add 5` under-applies a 2-ary global: generic Call path.
        assert!(
            main.code.iter().any(|o| matches!(o, Op::LoadGlobalFunc(_))),
            "{:?}",
            main.code
        );
        assert!(main
            .code
            .iter()
            .any(|o| matches!(o, Op::Call | Op::TailCall)));
    }
}
