//! Runtime instrumentation counters.
//!
//! These counters are the "measurements" of our synthetic testbed: the
//! paper predicts that escape-based optimizations reduce allocation and
//! reclamation work, and every prediction maps onto one of these fields.

use std::fmt;

/// Counters collected during one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Cons cells allocated on the GC'd heap.
    pub heap_allocs: u64,
    /// Cons cells allocated into stack regions.
    pub stack_allocs: u64,
    /// Cons cells allocated into block regions.
    pub block_allocs: u64,
    /// `DCONS` in-place reuses (allocations avoided entirely).
    pub dcons_reuses: u64,
    /// Cons cells scalar-replaced (SROA) by the bytecode compiler: the
    /// cell never existed, its head/tail lived in frame slots. Like
    /// `dcons_reuses`, these are allocations *avoided*, not performed,
    /// so they do not count toward [`RuntimeStats::total_allocs`].
    pub allocs_elided: u64,
    /// Heap allocations served from the free list (vs. fresh growth).
    pub freelist_reuses: u64,
    /// Stack/block allocations that found no active region and fell back
    /// to the heap (an annotated function called outside a region).
    pub region_fallbacks: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Minor (nursery-only) collections.
    pub minor_gcs: u64,
    /// Major (full mark–sweep) collections.
    pub major_gcs: u64,
    /// Young cells promoted to the old generation (minor-GC survivors).
    pub promoted: u64,
    /// Cells allocated directly into the old generation because the
    /// escape analysis proved the site escaping (`AllocMode::Pretenured`
    /// in `nml-opt` terms).
    pub pretenured: u64,
    /// Plain heap allocations that went old because the nursery was full
    /// and no minor collection had run (GC disabled, or allocations
    /// between collection polls).
    pub nursery_fallbacks: u64,
    /// Total cells marked (traversal work) across all GCs.
    pub gc_marked: u64,
    /// Total cells reclaimed by sweeps.
    pub gc_swept: u64,
    /// Total cells visited by sweeps (sweep work: the whole heap each GC).
    pub gc_sweep_visits: u64,
    /// Cells freed by stack-region exits (zero-cost frame pops).
    pub stack_freed: u64,
    /// Cells freed by block-region exits.
    pub block_freed: u64,
    /// Block-region exits (each is a single free-list splice).
    pub block_frees: u64,
    /// Maximum number of live (allocated, unreclaimed) cells.
    pub peak_live: u64,
    /// Machine steps executed.
    pub steps: u64,
    /// Optimized (stack/block) allocations that an injected fault forced
    /// back to plain heap `CONS`.
    pub fault_alloc_retreats: u64,
    /// `DCONS` reuses that an injected fault turned into fresh heap
    /// allocations.
    pub fault_dcons_retreats: u64,
    /// Region pushes denied by an injected fault.
    pub fault_region_denials: u64,
    /// Garbage collections forced by an injected fault.
    pub forced_gcs: u64,
    /// Checked mode: cells quarantined by claim-driven frees (region
    /// pops and `DCONS` retirements) instead of recycled.
    pub tombstoned: u64,
    /// Checked mode: `DCONS` reuses executed as copy-then-retire (the
    /// allocation the unchecked runtime would have avoided).
    pub reuse_copies: u64,
    /// Checked mode: soundness violations detected (tombstone accesses).
    pub violations: u64,
    /// Checked mode: sites quarantined by the re-execution loop.
    pub quarantined_sites: u64,
    /// Checked mode: re-executions performed after violations.
    pub retries: u64,
}

impl RuntimeStats {
    /// Total cons-cell allocations, by any mechanism (excluding `DCONS`
    /// reuses, which allocate nothing).
    pub fn total_allocs(&self) -> u64 {
        self.heap_allocs + self.stack_allocs + self.block_allocs
    }

    /// Total *reclamation work*: cells traversed by GC plus cells swept
    /// plus one unit per block splice. Stack frees are counted as zero,
    /// following the paper's model (the activation record pop is free).
    pub fn reclamation_work(&self) -> u64 {
        self.gc_marked + self.gc_sweep_visits + self.block_frees
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "allocs: heap={} stack={} block={} dcons-reuse={} elided={} (freelist {})",
            self.heap_allocs,
            self.stack_allocs,
            self.block_allocs,
            self.dcons_reuses,
            self.allocs_elided,
            self.freelist_reuses
        )?;
        writeln!(
            f,
            "gc: runs={} marked={} swept={} sweep-visits={}",
            self.gc_runs, self.gc_marked, self.gc_swept, self.gc_sweep_visits
        )?;
        writeln!(
            f,
            "gen: minor={} major={} promoted={} pretenured={} nursery-fallbacks={}",
            self.minor_gcs, self.major_gcs, self.promoted, self.pretenured, self.nursery_fallbacks
        )?;
        writeln!(
            f,
            "regions: stack-freed={} block-freed={} (splices {}) fallbacks={}",
            self.stack_freed, self.block_freed, self.block_frees, self.region_fallbacks
        )?;
        write!(f, "peak live: {}; steps: {}", self.peak_live, self.steps)?;
        let faults = self.fault_alloc_retreats
            + self.fault_dcons_retreats
            + self.fault_region_denials
            + self.forced_gcs;
        if faults > 0 {
            write!(
                f,
                "\nfaults: alloc-retreats={} dcons-retreats={} region-denials={} forced-gcs={}",
                self.fault_alloc_retreats,
                self.fault_dcons_retreats,
                self.fault_region_denials,
                self.forced_gcs
            )?;
        }
        let checked = self.tombstoned
            + self.reuse_copies
            + self.violations
            + self.quarantined_sites
            + self.retries;
        if checked > 0 {
            write!(
                f,
                "\nchecked: tombstoned={} reuse-copies={} violations={} quarantined={} retries={}",
                self.tombstoned,
                self.reuse_copies,
                self.violations,
                self.quarantined_sites,
                self.retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = RuntimeStats {
            heap_allocs: 3,
            stack_allocs: 2,
            block_allocs: 1,
            ..Default::default()
        };
        assert_eq!(s.total_allocs(), 6);
    }

    #[test]
    fn reclamation_counts_gc_and_splices() {
        let s = RuntimeStats {
            gc_marked: 10,
            gc_sweep_visits: 20,
            block_frees: 2,
            stack_freed: 100, // free
            ..Default::default()
        };
        assert_eq!(s.reclamation_work(), 32);
    }

    #[test]
    fn display_is_nonempty() {
        let s = RuntimeStats::default();
        assert!(s.to_string().contains("allocs"));
    }
}
