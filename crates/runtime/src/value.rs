//! Runtime values and environments.

use crate::heap::CellRef;
use nml_opt::{IrExpr, IrFunc};
use nml_syntax::{Prim, Symbol};
use std::fmt;
use std::rc::Rc;

/// A runtime value. `'p` is the lifetime of the executed [`nml_opt::IrProgram`].
///
/// The representation is deliberately compact: every variant's payload
/// fits in one word, so the whole enum is 16 bytes (pinned by
/// `value_fits_two_words` below). Partial applications — which need more
/// than a word of state — live behind an `Rc` box ([`PartialApp`],
/// [`PrimApp`]); the common zero-applied cases ([`Value::Func`],
/// [`Value::Prim`]) stay inline and allocation-free.
#[derive(Debug, Clone)]
pub enum Value<'p> {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// The empty list.
    Nil,
    /// A cons cell in the instrumented heap.
    Pair(CellRef),
    /// A tuple cell in the instrumented heap (`pair`/`fst`/`snd` — the
    /// paper's §1 tuple extension). Stored like a cons cell but distinct
    /// at the value level so lists and tuples never confuse each other.
    Tuple(CellRef),
    /// A user closure.
    Closure(Rc<Closure<'p>>),
    /// A top-level function with no arguments applied yet (the hot case:
    /// loading a global for a saturated call allocates nothing).
    Func(&'p IrFunc),
    /// A partially applied top-level function.
    PartialFunc(Rc<PartialApp<'p>>),
    /// A primitive constant used as a first-class function, with no
    /// argument applied yet.
    Prim(Prim),
    /// A binary primitive applied to its first argument.
    PrimApp(Rc<PrimApp<'p>>),
    /// A closure of the bytecode engine: a code unit plus a flat capture
    /// array (no `Env` chain — see [`crate::vm`]).
    VmClosure(Rc<VmClosure<'p>>),
}

/// A partially applied top-level function: the function plus the
/// arguments received so far (always fewer than `func.params.len()`).
#[derive(Debug)]
pub struct PartialApp<'p> {
    /// The function.
    pub func: &'p IrFunc,
    /// Arguments received so far.
    pub applied: Vec<Value<'p>>,
}

/// A binary primitive holding its first argument.
#[derive(Debug)]
pub struct PrimApp<'p> {
    /// Which primitive.
    pub prim: Prim,
    /// The first argument.
    pub first: Value<'p>,
}

/// The guts of a [`Value::VmClosure`]: chunk index plus shared captures.
#[derive(Debug)]
pub struct VmClosure<'p> {
    /// Index of the compiled chunk.
    pub chunk: u32,
    /// The captured values (shared by a whole recursive group).
    pub env: Rc<CaptureEnv<'p>>,
}

/// The flat capture environment of a [`Value::VmClosure`]: the values a
/// closure (or a whole mutually recursive `letrec` group) closed over,
/// copied out of the creating frame. Members of a recursive group share
/// one `CaptureEnv` and reach each other through `rec` (the sibling's
/// chunk index), materializing the sibling closure on demand — the flat
/// analogue of the tree-walker's lazy `Rec` env node, and just as free of
/// reference cycles.
#[derive(Debug)]
pub struct CaptureEnv<'p> {
    /// Captured values, indexed by the compiler's capture slots.
    pub values: Vec<Value<'p>>,
    /// Chunk indices of the recursive group's members (empty for a plain
    /// lambda).
    pub rec: Vec<u32>,
}

/// A user closure: parameter, body, captured environment.
#[derive(Debug)]
pub struct Closure<'p> {
    /// The parameter.
    pub param: Symbol,
    /// The body expression.
    pub body: &'p IrExpr,
    /// The captured environment.
    pub env: Env<'p>,
}

impl<'p> Value<'p> {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Nil => "nil",
            Value::Pair(_) => "pair",
            Value::Tuple(_) => "tuple",
            Value::Closure(_) => "closure",
            Value::Func(_) | Value::PartialFunc(_) => "function",
            Value::Prim(_) | Value::PrimApp(_) => "primitive",
            Value::VmClosure(_) => "closure",
        }
    }

    /// Whether this is a list value (`nil` or a pair).
    pub fn is_list(&self) -> bool {
        matches!(self, Value::Nil | Value::Pair(_))
    }
}

impl fmt::Display for Value<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Nil => f.write_str("[]"),
            Value::Pair(c) => write!(f, "<cell {}>", c.0),
            Value::Tuple(c) => write!(f, "<tuple {}>", c.0),
            Value::Closure(_) => f.write_str("<closure>"),
            Value::Func(func) => write!(f, "<{}/{}>", func.name, func.params.len()),
            Value::PartialFunc(p) => {
                let PartialApp { func, applied } = &**p;
                write!(f, "<{}/{}>", func.name, func.params.len() - applied.len())
            }
            Value::Prim(prim) => write!(f, "<prim {prim}>"),
            Value::PrimApp(p) => write!(f, "<prim {} _>", p.prim),
            Value::VmClosure(_) => f.write_str("<closure>"),
        }
    }
}

/// A persistent environment: an immutable linked list of bindings plus
/// recursive `letrec` nodes resolved lazily (so recursive closures need
/// not contain themselves).
#[derive(Debug, Clone, Default)]
pub struct Env<'p> {
    node: Option<Rc<EnvNode<'p>>>,
}

#[derive(Debug)]
enum EnvNode<'p> {
    /// An ordinary binding.
    Bind {
        name: Symbol,
        value: Value<'p>,
        next: Env<'p>,
    },
    /// A group of mutually recursive lambda bindings from a nested
    /// `letrec`. Looking up a name builds the closure on demand with an
    /// environment that *includes this node*, tying the knot without
    /// mutation.
    Rec {
        /// (name, parameter, body) of each lambda binding.
        lambdas: Rc<Vec<(Symbol, Symbol, &'p IrExpr)>>,
        next: Env<'p>,
    },
}

impl<'p> Env<'p> {
    /// The empty environment.
    pub fn empty() -> Self {
        Env { node: None }
    }

    /// Extends with one binding.
    #[must_use]
    pub fn bind(&self, name: Symbol, value: Value<'p>) -> Env<'p> {
        Env {
            node: Some(Rc::new(EnvNode::Bind {
                name,
                value,
                next: self.clone(),
            })),
        }
    }

    /// Extends with a recursive lambda group.
    #[must_use]
    pub fn bind_rec(&self, lambdas: Rc<Vec<(Symbol, Symbol, &'p IrExpr)>>) -> Env<'p> {
        Env {
            node: Some(Rc::new(EnvNode::Rec {
                lambdas,
                next: self.clone(),
            })),
        }
    }

    /// Looks up `name`, constructing recursive closures on demand.
    pub fn lookup(&self, name: Symbol) -> Option<Value<'p>> {
        let mut cur = self;
        loop {
            match cur.node.as_deref()? {
                EnvNode::Bind {
                    name: n,
                    value,
                    next,
                } => {
                    if *n == name {
                        return Some(value.clone());
                    }
                    cur = next;
                }
                EnvNode::Rec { lambdas, next } => {
                    if let Some((_, param, body)) = lambdas.iter().find(|(n, _, _)| *n == name) {
                        return Some(Value::Closure(Rc::new(Closure {
                            param: *param,
                            body,
                            env: cur.clone(),
                        })));
                    }
                    cur = next;
                }
            }
        }
    }

    /// Visits every value bound in the environment (for GC marking).
    /// `seen` deduplicates shared nodes by address.
    pub(crate) fn for_each_value(
        &self,
        seen: &mut std::collections::HashSet<*const ()>,
        f: &mut impl FnMut(&Value<'p>),
    ) {
        let mut cur = self.clone();
        while let Some(rc) = cur.node {
            let ptr = Rc::as_ptr(&rc) as *const ();
            if !seen.insert(ptr) {
                return; // shared suffix already visited
            }
            match &*rc {
                EnvNode::Bind { value, next, .. } => {
                    f(value);
                    cur = next.clone();
                }
                EnvNode::Rec { next, .. } => {
                    cur = next.clone();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let env = Env::empty()
            .bind(Symbol::intern("x"), Value::Int(1))
            .bind(Symbol::intern("y"), Value::Int(2));
        assert!(matches!(
            env.lookup(Symbol::intern("x")),
            Some(Value::Int(1))
        ));
        assert!(matches!(
            env.lookup(Symbol::intern("y")),
            Some(Value::Int(2))
        ));
        assert!(env.lookup(Symbol::intern("z")).is_none());
    }

    #[test]
    fn shadowing_finds_innermost() {
        let env = Env::empty()
            .bind(Symbol::intern("x"), Value::Int(1))
            .bind(Symbol::intern("x"), Value::Int(2));
        assert!(matches!(
            env.lookup(Symbol::intern("x")),
            Some(Value::Int(2))
        ));
    }

    #[test]
    fn value_kinds() {
        assert_eq!(Value::Int(1).kind(), "int");
        assert_eq!(Value::Nil.kind(), "nil");
        assert!(Value::Nil.is_list());
        assert!(!Value::Bool(true).is_list());
    }

    /// The compact representation is load-bearing for VM locals, frame
    /// slots, and heap cells — a variant growing past one word would
    /// silently fatten all three. Pin it.
    #[test]
    fn value_fits_two_words() {
        assert!(
            std::mem::size_of::<Value<'_>>() <= 16,
            "Value grew past 16 bytes: {}",
            std::mem::size_of::<Value<'_>>()
        );
        assert!(std::mem::size_of::<Option<Value<'_>>>() <= 24);
    }
}
