//! Checked-optimization support: claims, tombstones, and structured
//! soundness violations.
//!
//! Every storage optimization in this workspace rests on an escape
//! *claim*: "this cell is dead when its region pops" (stack/block
//! allocation) or "this cell is unshared, overwrite it" (`DCONS` reuse).
//! The paper proves those claims for the analysis it describes — but an
//! injected fault, a stale summary-cache entry, or a plain bug can ship a
//! wrong claim, and in the default runtime a wrong claim silently
//! recycles live storage.
//!
//! Checked mode (ASAN-style, after the sanitizer practice in PAPERS.md)
//! makes every claim *self-verifying*:
//!
//! - optimized allocations are stamped with their [`SiteId`] and
//!   [`ClaimKind`];
//! - claim-driven frees (region pops, `DCONS` retirement) **tombstone**
//!   the cell instead of recycling it — the index is quarantined forever,
//!   its payload dropped;
//! - any later access to a tombstoned cell is a structured
//!   [`SoundnessViolation`] naming the site that made the claim, the kind
//!   of claim, the access that disproved it, and the region backtrace at
//!   free time — exactly the evidence the pipeline's quarantine-and-retry
//!   loop needs to disable that one site and re-execute.
//!
//! GC frees are *not* tombstoned: the collector only reclaims provably
//! unreachable cells, so no claim is involved and recycling is safe.

use nml_opt::{RegionKind, SiteId};
use std::fmt;

/// The kind of escape claim behind an optimized allocation or free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// Stack allocation: the cell dies no later than its stack region.
    Stack,
    /// Block allocation: the cell dies no later than its block region.
    Block,
    /// `DCONS` in-place reuse: the target cell is unshared and dead.
    Reuse,
}

impl fmt::Display for ClaimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimKind::Stack => f.write_str("stack"),
            ClaimKind::Block => f.write_str("block"),
            ClaimKind::Reuse => f.write_str("reuse"),
        }
    }
}

impl From<RegionKind> for ClaimKind {
    fn from(kind: RegionKind) -> Self {
        match kind {
            RegionKind::Stack => ClaimKind::Stack,
            RegionKind::Block => ClaimKind::Block,
        }
    }
}

/// The heap access that disproved a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Reading the head of the cell.
    Car,
    /// Reading the tail of the cell.
    Cdr,
    /// Overwriting the cell (`DCONS` or `set`).
    Set,
    /// Reading or writing the provenance tag.
    Tag,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Car => f.write_str("car"),
            AccessKind::Cdr => f.write_str("cdr"),
            AccessKind::Set => f.write_str("set"),
            AccessKind::Tag => f.write_str("tag"),
        }
    }
}

/// One entry of a region backtrace: a region that was active (or the one
/// that performed the free) when a cell was tombstoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionNote {
    /// The region's generation id.
    pub id: u64,
    /// Stack or block.
    pub kind: RegionKind,
}

impl fmt::Display for RegionNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind, self.id)
    }
}

/// A detected escape-claim violation: a tombstoned cell was accessed, so
/// the claim that licensed its reclamation was wrong.
///
/// This is the structured report the pipeline's quarantine loop consumes:
/// `site` (when known) is the allocation/reuse site whose optimization
/// must be disabled before re-execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoundnessViolation {
    /// The tombstoned cell that was accessed.
    pub cell: u32,
    /// The site whose claim freed the cell (`None` for harness-built
    /// cells with no site attribution — unquarantinable).
    pub site: Option<SiteId>,
    /// The kind of claim that was violated.
    pub claim: ClaimKind,
    /// The access that hit the tombstone.
    pub access: AccessKind,
    /// The region whose pop freed the cell (`None` for `DCONS`
    /// retirement, which frees without a region).
    pub freed_by: Option<RegionNote>,
    /// The regions still active at free time, innermost last — the
    /// dynamic-extent backtrace of the free.
    pub regions: Vec<RegionNote>,
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soundness violation: {} of cell #{} freed by a {} claim",
            self.access, self.cell, self.claim
        )?;
        match self.site {
            Some(s) => write!(f, " at site {}", s.0)?,
            None => f.write_str(" at an unattributed site")?,
        }
        if let Some(r) = self.freed_by {
            write!(f, " (freed by region {r}")?;
            if !self.regions.is_empty() {
                f.write_str(", active:")?;
                for r in &self.regions {
                    write!(f, " {r}")?;
                }
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// The quarantined remains of a claim-freed cell: enough context to turn
/// any later access into a full [`SoundnessViolation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tombstone {
    /// The site whose claim freed the cell.
    pub site: Option<SiteId>,
    /// The claim kind.
    pub claim: ClaimKind,
    /// The region whose pop freed the cell, if any.
    pub freed_by: Option<RegionNote>,
    /// Regions active at free time.
    pub regions: Vec<RegionNote>,
}

impl Tombstone {
    /// Builds the violation report for an access to this tombstone.
    pub fn violation(&self, cell: u32, access: AccessKind) -> SoundnessViolation {
        SoundnessViolation {
            cell,
            site: self.site,
            claim: self.claim,
            access,
            freed_by: self.freed_by,
            regions: self.regions.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_site_claim_and_access() {
        let v = SoundnessViolation {
            cell: 7,
            site: Some(SiteId(3)),
            claim: ClaimKind::Stack,
            access: AccessKind::Car,
            freed_by: Some(RegionNote {
                id: 1,
                kind: RegionKind::Stack,
            }),
            regions: vec![RegionNote {
                id: 0,
                kind: RegionKind::Block,
            }],
        };
        let s = v.to_string();
        assert!(s.contains("car of cell #7"), "{s}");
        assert!(s.contains("stack claim"), "{s}");
        assert!(s.contains("site 3"), "{s}");
        assert!(s.contains("stack#1"), "{s}");
        assert!(s.contains("block#0"), "{s}");
    }

    #[test]
    fn reuse_violation_renders_without_region() {
        let t = Tombstone {
            site: None,
            claim: ClaimKind::Reuse,
            freed_by: None,
            regions: vec![],
        };
        let s = t.violation(2, AccessKind::Set).to_string();
        assert!(s.contains("set of cell #2"), "{s}");
        assert!(s.contains("unattributed"), "{s}");
        assert!(!s.contains("freed by region"), "{s}");
    }
}
