//! Deterministic runtime fault injection.
//!
//! A [`FaultPlan`] describes adverse runtime conditions — a bounded heap,
//! spurious garbage collections, allocation sites losing their region,
//! `DCONS` targets becoming unavailable — under which the optimized
//! programs must still behave exactly like their unoptimized versions.
//! Every optimization in this codebase has a semantics-preserving
//! fallback (plain heap `CONS`); the plan forces those fallbacks to
//! actually run, and the differential test-suite checks that the
//! observable results never change.
//!
//! Decisions are driven by a seeded splitmix64 stream, so a failing
//! configuration is reproducible from `(seed, knobs)` alone — no
//! wall-clock or OS entropy is involved.

use std::fmt;

/// One fault probability, as a `num`-in-`den` chance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRate {
    /// Numerator (0 disables the fault).
    pub num: u32,
    /// Denominator (must be nonzero).
    pub den: u32,
}

impl FaultRate {
    /// A rate that never fires.
    pub const OFF: FaultRate = FaultRate { num: 0, den: 1 };

    /// A `num`-in-`den` chance.
    pub fn new(num: u32, den: u32) -> FaultRate {
        assert!(den > 0, "fault rate denominator must be nonzero");
        FaultRate { num, den }
    }

    /// Whether this rate can ever fire.
    pub fn is_off(&self) -> bool {
        self.num == 0
    }
}

/// A deterministic schedule of runtime faults.
///
/// The default plan injects nothing; faults are enabled knob by knob with
/// the `with_*` builders. The plan is carried by
/// [`crate::InterpConfig::fault`] and consulted by the heap and the
/// interpreter at each fault point.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    /// Hard bound on live cells: program allocations beyond it fail with
    /// [`crate::RuntimeError::OutOfMemory`] (after a rescue GC attempt).
    heap_capacity: Option<u64>,
    /// Chance that an *optimized* allocation (stack/block `CONS`, or a
    /// `DCONS` reuse) retreats to a plain heap `CONS`.
    alloc_retreat: FaultRate,
    /// Chance that a region push fails (the dynamic extent never opens;
    /// its allocations fall back outward).
    region_denial: FaultRate,
    /// Chance, per allocation, of forcing a GC before the next step.
    forced_gc: FaultRate,
    /// Explicit allocation indices (0-based, across all program
    /// allocations) at which a GC is forced.
    forced_gc_at: Vec<u64>,
    /// Explicit allocation index (0-based) at which the runtime panics —
    /// a stand-in for "worker hit a bug" in crash-isolation tests. The
    /// panic is injected *inside* the engine, exactly where a real
    /// invariant failure would unwind from.
    panic_at_alloc: Option<u64>,
    allocs_seen: u64,
    gc_requested: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A plan with the given RNG seed and every fault disabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            state: seed,
            heap_capacity: None,
            alloc_retreat: FaultRate::OFF,
            region_denial: FaultRate::OFF,
            forced_gc: FaultRate::OFF,
            forced_gc_at: Vec::new(),
            panic_at_alloc: None,
            allocs_seen: 0,
            gc_requested: false,
        }
    }

    /// Bounds the heap at `cells` live cells.
    pub fn with_heap_capacity(mut self, cells: u64) -> FaultPlan {
        self.heap_capacity = Some(cells);
        self
    }

    /// Makes optimized allocations retreat to plain heap `CONS` at the
    /// given rate.
    pub fn with_alloc_retreats(mut self, rate: FaultRate) -> FaultPlan {
        self.alloc_retreat = rate;
        self
    }

    /// Makes region pushes fail at the given rate.
    pub fn with_region_denials(mut self, rate: FaultRate) -> FaultPlan {
        self.region_denial = rate;
        self
    }

    /// Forces a GC after each allocation at the given rate.
    pub fn with_forced_gc(mut self, rate: FaultRate) -> FaultPlan {
        self.forced_gc = rate;
        self
    }

    /// Forces a GC right after the given (0-based) allocation indices.
    pub fn with_forced_gc_at(mut self, indices: Vec<u64>) -> FaultPlan {
        self.forced_gc_at = indices;
        self
    }

    /// Panics the engine at the given (0-based) allocation index, for
    /// crash-isolation tests (the panic unwinds through the engine like
    /// a genuine bug would).
    pub fn with_panic_at_alloc(mut self, index: u64) -> FaultPlan {
        self.panic_at_alloc = Some(index);
        self
    }

    /// Whether any fault can fire under this plan.
    pub fn is_active(&self) -> bool {
        self.heap_capacity.is_some()
            || !self.alloc_retreat.is_off()
            || !self.region_denial.is_off()
            || !self.forced_gc.is_off()
            || !self.forced_gc_at.is_empty()
            || self.panic_at_alloc.is_some()
    }

    /// The configured heap capacity, if bounded.
    pub fn heap_capacity(&self) -> Option<u64> {
        self.heap_capacity
    }

    /// splitmix64: deterministic, full-period, and cheap.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn decide(&mut self, rate: FaultRate) -> bool {
        // An OFF rate consumes no randomness, so an inert plan costs
        // nothing and enabling one fault never shifts another's stream.
        if rate.is_off() {
            return false;
        }
        self.next() % u64::from(rate.den) < u64::from(rate.num)
    }

    /// Should this optimized allocation retreat to a plain heap `CONS`?
    pub(crate) fn retreat_alloc(&mut self) -> bool {
        self.decide(self.alloc_retreat)
    }

    /// Should this region push fail?
    pub(crate) fn deny_region(&mut self) -> bool {
        self.decide(self.region_denial)
    }

    /// Records one program allocation; may arm a forced GC, or fire the
    /// injected panic.
    pub(crate) fn note_alloc(&mut self) {
        if self.panic_at_alloc == Some(self.allocs_seen) {
            panic!(
                "fault plan: injected panic at allocation #{}",
                self.allocs_seen
            );
        }
        if self.forced_gc_at.contains(&self.allocs_seen) || self.decide(self.forced_gc) {
            self.gc_requested = true;
        }
        self.allocs_seen += 1;
    }

    /// Consumes a pending forced-GC request.
    pub(crate) fn take_gc_request(&mut self) -> bool {
        std::mem::take(&mut self.gc_requested)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_active() {
            return f.write_str("faults: none");
        }
        f.write_str("faults:")?;
        if let Some(c) = self.heap_capacity {
            write!(f, " heap-capacity={c}")?;
        }
        if !self.alloc_retreat.is_off() {
            write!(
                f,
                " alloc-retreat={}/{}",
                self.alloc_retreat.num, self.alloc_retreat.den
            )?;
        }
        if !self.region_denial.is_off() {
            write!(
                f,
                " region-denial={}/{}",
                self.region_denial.num, self.region_denial.den
            )?;
        }
        if !self.forced_gc.is_off() {
            write!(
                f,
                " forced-gc={}/{}",
                self.forced_gc.num, self.forced_gc.den
            )?;
        }
        if !self.forced_gc_at.is_empty() {
            write!(f, " forced-gc-at={:?}", self.forced_gc_at)?;
        }
        if let Some(i) = self.panic_at_alloc {
            write!(f, " panic-at-alloc={i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let mut p = FaultPlan::default();
        assert!(!p.is_active());
        for _ in 0..100 {
            assert!(!p.retreat_alloc());
            assert!(!p.deny_region());
            p.note_alloc();
            assert!(!p.take_gc_request());
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut p = FaultPlan::new(seed).with_alloc_retreats(FaultRate::new(1, 3));
            (0..64).map(|_| p.retreat_alloc()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn always_rate_always_fires() {
        let mut p = FaultPlan::new(7).with_region_denials(FaultRate::new(1, 1));
        for _ in 0..32 {
            assert!(p.deny_region());
        }
    }

    #[test]
    fn forced_gc_at_named_indices() {
        let mut p = FaultPlan::new(0).with_forced_gc_at(vec![0, 2]);
        p.note_alloc();
        assert!(p.take_gc_request());
        p.note_alloc();
        assert!(!p.take_gc_request());
        p.note_alloc();
        assert!(p.take_gc_request(), "index 2 forces a GC");
        assert!(!p.take_gc_request(), "request is consumed");
    }

    #[test]
    fn display_summarizes_knobs() {
        let p = FaultPlan::new(0)
            .with_heap_capacity(64)
            .with_alloc_retreats(FaultRate::new(1, 4));
        let s = p.to_string();
        assert!(s.contains("heap-capacity=64"), "{s}");
        assert!(s.contains("alloc-retreat=1/4"), "{s}");
        assert_eq!(FaultPlan::default().to_string(), "faults: none");
    }
}
