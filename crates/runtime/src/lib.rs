//! # nml-runtime
//!
//! The instrumented execution substrate for *Escape Analysis on Lists*
//! (Park & Goldberg, PLDI 1992). The 1992 paper had no implementation;
//! this runtime is the synthetic testbed on which the paper's predicted
//! storage optimizations become measurable:
//!
//! - an explicit cons [`heap`] with a free list and full allocation
//!   accounting;
//! - a mark–sweep garbage collector ([`gc`]) with exact roots;
//! - **stack regions** and **blocks** (dynamic extents freed wholesale,
//!   §A.3.1/§A.3.3), with optional per-pop validation that no region cell
//!   is still reachable — the analysis's safety claim as a runtime check;
//! - the destructive **`DCONS`** of the in-place-reuse transformation
//!   (§6);
//! - **provenance tracking** ([`provenance`]): the paper's *exact* escape
//!   semantics (§3.2) realized dynamically, used by the soundness tests
//!   (`dynamic ⊑ abstract`);
//! - **checked-optimization mode** ([`checked`]): claim-driven frees
//!   tombstone their cells instead of recycling them, so a wrong escape
//!   claim surfaces as a structured [`SoundnessViolation`] (naming the
//!   offending site) instead of silent heap corruption.
//!
//! ## Example
//!
//! ```
//! use nml_opt::lower_program;
//! use nml_runtime::Interp;
//! use nml_syntax::parse_program;
//! use nml_types::infer_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "letrec rev l = if (null l) then nil
//!                     else letrec put xs y = if (null xs) then cons y nil
//!                                            else cons (car xs) (put (cdr xs) y)
//!                          in put (rev (cdr l)) (car l)
//!      in rev [1, 2, 3]",
//! )?;
//! let info = infer_program(&program)?;
//! let ir = lower_program(&program, &info);
//! let mut interp = Interp::new(&ir)?;
//! let result = interp.run()?;
//! assert_eq!(interp.read_int_list(result)?, vec![3, 2, 1]);
//! println!("{}", interp.heap.stats);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod checked;
pub mod error;
pub mod fault;
pub mod gc;
pub mod heap;
pub mod interp;
pub mod provenance;
pub mod stats;
pub mod value;
pub mod vm;

pub use bytecode::{compile, BytecodeProgram, Chunk, Op};
pub use checked::{AccessKind, ClaimKind, RegionNote, SoundnessViolation, Tombstone};
pub use error::RuntimeError;
pub use fault::{FaultPlan, FaultRate};
pub use gc::mark;
pub use heap::{CellRef, Heap, HeapConfig, ProvTag, RegionId};
pub use interp::{Interp, InterpConfig};
pub use provenance::{dynamic_escape, max_escaping_level, tag_spines, DynamicEscape};
pub use stats::RuntimeStats;
pub use value::{CaptureEnv, Closure, Env, Value};
pub use vm::{Engine, Vm};
