//! The dynamic (exact) escape semantics, via provenance tracking.
//!
//! The paper's *exact* escape semantics (§3.2) needs an oracle to resolve
//! conditionals; at run time the oracle is free — the program takes the
//! branch it takes. This module implements that semantics operationally:
//! before a call, every spine cell of the interesting argument is tagged
//! with its spine level (counted from the bottom, matching `⟨1,i⟩`);
//! after the call, the result is scanned for tagged cells. The maximum
//! level found is the *dynamic* escape count, and the abstract analysis
//! is safe iff `dynamic ⊑ static` on every run — which the soundness
//! test-suite checks over the whole corpus and on random programs.

use crate::error::RuntimeError;
use crate::heap::{Heap, ProvTag};
use crate::interp::Interp;
use crate::value::Value;
use nml_syntax::Symbol;
use std::collections::HashSet;

/// Tags every spine cell of `v` (a list with `spines` spines) with the
/// argument index and its bottom-up spine level: the top spine gets
/// `spines`, elements' top spines get `spines - 1`, and so on.
///
/// # Errors
///
/// Propagates heap access failures (dangling cells).
pub fn tag_spines<'p>(
    heap: &mut Heap<'p>,
    v: &Value<'p>,
    arg: u8,
    spines: u32,
) -> Result<(), RuntimeError> {
    let mut seen = HashSet::new();
    go_tag(heap, v, arg, spines, &mut seen)
}

fn go_tag<'p>(
    heap: &mut Heap<'p>,
    v: &Value<'p>,
    arg: u8,
    spines: u32,
    seen: &mut HashSet<u32>,
) -> Result<(), RuntimeError> {
    if spines == 0 {
        return Ok(());
    }
    let mut cur = v.clone();
    while let Value::Pair(c) = cur {
        if !seen.insert(c.0) {
            return Ok(());
        }
        heap.set_tag(
            c,
            ProvTag {
                arg,
                level: spines.min(u8::MAX as u32) as u8,
            },
        )?;
        let head = heap.car(c)?;
        go_tag(heap, &head, arg, spines - 1, seen)?;
        cur = heap.cdr(c)?;
    }
    Ok(())
}

/// Scans everything reachable from `v` and returns the highest spine
/// level among cells tagged for `arg` — the dynamic escape count. `None`
/// means no tagged cell is reachable (`⟨0,0⟩` over spines).
///
/// # Errors
///
/// Propagates heap access failures.
pub fn max_escaping_level<'p>(
    heap: &Heap<'p>,
    v: &Value<'p>,
    arg: u8,
) -> Result<Option<u8>, RuntimeError> {
    let mut best: Option<u8> = None;
    let mut seen_cells = HashSet::new();
    let mut seen_envs = HashSet::new();
    let mut work = vec![v.clone()];
    while let Some(v) = work.pop() {
        match v {
            Value::Int(_) | Value::Bool(_) | Value::Nil => {}
            Value::Pair(c) | Value::Tuple(c) => {
                if !seen_cells.insert(c.0) {
                    continue;
                }
                if let Some(tag) = heap.tag(c)? {
                    if tag.arg == arg {
                        best = Some(best.map_or(tag.level, |b| b.max(tag.level)));
                    }
                }
                work.push(heap.car(c)?);
                work.push(heap.cdr(c)?);
            }
            Value::Closure(clo) => {
                clo.env
                    .for_each_value(&mut seen_envs, &mut |x| work.push(x.clone()));
            }
            Value::Func(_) | Value::Prim(_) => {}
            Value::PartialFunc(p) => {
                for a in &p.applied {
                    work.push(a.clone());
                }
            }
            Value::PrimApp(p) => {
                work.push(p.first.clone());
            }
            Value::VmClosure(c) => {
                for x in &c.env.values {
                    work.push(x.clone());
                }
            }
        }
    }
    Ok(best)
}

/// The outcome of one dynamic escape measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicEscape {
    /// Spine count of the interesting argument.
    pub spines: u32,
    /// Highest escaping spine level observed (`None`: no spine cell of
    /// the argument reached the result).
    pub escaped_level: Option<u8>,
}

impl DynamicEscape {
    /// The number of bottom spines that escaped (`k` in `⟨1,k⟩`); zero if
    /// no spine escaped.
    pub fn escaping_spines(&self) -> u32 {
        self.escaped_level.map_or(0, u32::from)
    }
}

/// Runs `f args` with argument `interesting` tagged, and measures the
/// dynamic escape of that argument's spines into the result.
///
/// # Errors
///
/// Any [`RuntimeError`] from tagging, the call, or the scan.
///
/// ```
/// use nml_opt::lower_program;
/// use nml_runtime::{dynamic_escape, Interp};
/// use nml_syntax::{parse_program, Symbol};
/// use nml_types::infer_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = parse_program(
///     "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
///      in sum [1]",
/// )?;
/// let info = infer_program(&program)?;
/// let ir = lower_program(&program, &info);
/// let mut interp = Interp::new(&ir)?;
/// let input = interp.make_int_list(&[1, 2, 3]);
/// let d = dynamic_escape(&mut interp, Symbol::intern("sum"), vec![input], 0, 1)?;
/// // sum consumes its list: no spine cell reaches the result.
/// assert_eq!(d.escaped_level, None);
/// # Ok(())
/// # }
/// ```
pub fn dynamic_escape<'p>(
    interp: &mut Interp<'p>,
    f: Symbol,
    args: Vec<Value<'p>>,
    interesting: usize,
    spines: u32,
) -> Result<DynamicEscape, RuntimeError> {
    let tagged = args[interesting].clone();
    tag_spines(&mut interp.heap, &tagged, interesting as u8, spines)?;
    let result = interp.call(f, args)?;
    let escaped_level = max_escaping_level(&interp.heap, &result, interesting as u8)?;
    Ok(DynamicEscape {
        spines,
        escaped_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_opt::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn with_interp<R>(src: &str, f: impl FnOnce(&mut Interp<'_>) -> R) -> R {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let ir = lower_program(&p, &info);
        let mut interp = Interp::new(&ir).expect("init");
        f(&mut interp)
    }

    const APPEND: &str = "letrec append x y = if (null x) then y
                                              else cons (car x) (append (cdr x) y)
                          in append [1] [2]";

    #[test]
    fn append_first_argument_spine_does_not_escape() {
        with_interp(APPEND, |i| {
            let x = i.make_int_list(&[1, 2, 3]);
            let y = i.make_int_list(&[4]);
            let d = dynamic_escape(i, Symbol::intern("append"), vec![x, y], 0, 1).unwrap();
            // Static says ⟨1,0⟩ (elements only); dynamically no spine cell
            // of x reaches the result either.
            assert_eq!(d.escaped_level, None);
            assert_eq!(d.escaping_spines(), 0);
        });
    }

    #[test]
    fn append_second_argument_escapes_fully() {
        with_interp(APPEND, |i| {
            let x = i.make_int_list(&[1, 2, 3]);
            let y = i.make_int_list(&[4, 5]);
            let d = dynamic_escape(i, Symbol::intern("append"), vec![x, y], 1, 1).unwrap();
            assert_eq!(d.escaped_level, Some(1));
            assert_eq!(d.escaping_spines(), 1);
        });
    }

    #[test]
    fn sum_consumes_without_escape() {
        let src = "letrec sum l = if (null l) then 0 else car l + sum (cdr l) in sum [1]";
        with_interp(src, |i| {
            let l = i.make_int_list(&[1, 2, 3]);
            let d = dynamic_escape(i, Symbol::intern("sum"), vec![l], 0, 1).unwrap();
            assert_eq!(d.escaped_level, None);
        });
    }

    #[test]
    fn identity_escapes_whole_list() {
        let src = "letrec idl l = cons (car l) (cdr l) in idl [9]";
        with_interp(src, |i| {
            let l = i.make_int_list(&[1, 2]);
            let d = dynamic_escape(i, Symbol::intern("idl"), vec![l], 0, 1).unwrap();
            // The tail cells (part of the top spine) are in the result.
            assert_eq!(d.escaped_level, Some(1));
        });
    }

    #[test]
    fn nested_list_levels() {
        // first returns the first element: the element's spine (level 1)
        // escapes, the top spine (level 2) does not.
        let src = "letrec first l = car l in first [[1]]";
        with_interp(src, |i| {
            let inner1 = i.make_int_list(&[1, 2]);
            let inner2 = i.make_int_list(&[3]);
            let l = i.make_list([inner1, inner2]);
            let d = dynamic_escape(i, Symbol::intern("first"), vec![l], 0, 2).unwrap();
            assert_eq!(d.escaped_level, Some(1));
            assert_eq!(d.escaping_spines(), 1);
        });
    }

    #[test]
    fn tagging_handles_cycles() {
        with_interp("0", |i| {
            let a = i
                .heap
                .alloc(Value::Int(1), Value::Nil, nml_opt::AllocMode::Heap);
            i.heap.set(a, Value::Int(1), Value::Pair(a)).unwrap();
            tag_spines(&mut i.heap, &Value::Pair(a), 0, 1).unwrap();
            let lvl = max_escaping_level(&i.heap, &Value::Pair(a), 0).unwrap();
            assert_eq!(lvl, Some(1));
        });
    }

    #[test]
    fn escape_through_closure_capture_is_seen() {
        // keep returns a closure (of a *nested* lambda, so it is not
        // flattened into parameters) capturing l.
        let src = "letrec keep l = (lambda(z). lambda(y). car l) 0 in keep [1]";
        with_interp(src, |i| {
            let l = i.make_int_list(&[1, 2]);
            let d = dynamic_escape(i, Symbol::intern("keep"), vec![l], 0, 1).unwrap();
            assert_eq!(d.escaped_level, Some(1), "spine reachable via closure env");
        });
    }
}
