//! The bytecode execution engine.
//!
//! Where the tree-walker ([`crate::interp`]) re-resolves every variable
//! against a linked `Env` chain and allocates an `Rc` node per binding,
//! the VM executes the flat [`crate::bytecode`] form:
//!
//! - **flat call frames** in one contiguous `Vec` of [`Value`] slots —
//!   entering a function extends the vector, returning truncates it;
//! - **Rc-free access to non-escaping locals**: `LoadLocal`/`StoreLocal`
//!   index the slot vector directly; only values captured by a closure
//!   ever move into a shared [`CaptureEnv`];
//! - **statically resolved tail calls** that replace the current frame
//!   in place, so tail-recursive loops run in constant frame depth;
//! - **inline allocation fast paths**: when the fault plan is inert,
//!   `CONS` and `DCONS` skip the fault bookkeeping of
//!   [`Heap::alloc_at`] and go straight to the allocator (which still
//!   honors [`nml_opt::AllocMode`] region routing, site counters, and
//!   checked-mode tombstone semantics).
//!
//! The engine is observationally equivalent to the tree-walker: same
//! results, same errors, and — absent SROA — the same allocation
//! sequence (so deterministic fault plans fire identically under both).
//! [`nml_opt::AllocMode::Elided`] marks break the sequence match on
//! purpose: the VM scalarizes those cons cells into frame slots and
//! never allocates them, so fault-plan differentials must strip the
//! marks first. The differential suite in `tests/differential.rs` holds
//! the two engines against each other over generated programs; the
//! tree-walker stays as the oracle.

use crate::bytecode::{compile, BytecodeProgram, GlobalDef, Op};
use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::gc::Marker;
use crate::heap::{GcKind, Heap, RegionId};
use crate::interp::{prim1, prim2, InterpConfig, CANCEL_POLL_MASK};
use crate::value::{
    CaptureEnv, PartialApp, PrimApp as PrimAppData, Value, VmClosure as VmClosureData,
};
use nml_opt::{AllocMode, CaptureSrc, IrFunc, IrProgram};
use nml_syntax::{Prim, Symbol};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which execution engine runs a program. Both produce identical
/// observable behavior; the VM is the default, the tree-walker remains
/// as the differential oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The CEK-style tree-walking interpreter ([`crate::Interp`]).
    Tree,
    /// The bytecode VM ([`Vm`]).
    #[default]
    Vm,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree" => Ok(Engine::Tree),
            "vm" => Ok(Engine::Vm),
            other => Err(format!("unknown engine '{other}' (expected tree|vm)")),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Tree => "tree",
            Engine::Vm => "vm",
        })
    }
}

/// The bytecode VM for one IR program.
pub struct Vm<'p> {
    program: &'p IrProgram,
    code: BytecodeProgram,
    /// The instrumented heap (public for inspection in tests/benches).
    pub heap: Heap<'p>,
    /// Top-level binding values, parallel to `IrProgram::funcs`.
    globals: Vec<Value<'p>>,
    /// Startup watermark: value bindings `0..init_done` are initialized.
    init_done: usize,
    /// First-occurrence function chunks, for saturating partial
    /// applications (`Value::Func`).
    func_index: HashMap<Symbol, u32>,
    config: InterpConfig,
    /// No fault can ever fire: allocation ops may use the straight-line
    /// [`Heap::alloc_fast`] path.
    fault_inert: bool,
}

impl<'p> Vm<'p> {
    /// Compiles `program` and evaluates its top-level *value* bindings
    /// in order, exactly like [`crate::Interp::new`].
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised while evaluating a value binding.
    pub fn new(program: &'p IrProgram) -> Result<Self, RuntimeError> {
        Vm::with_config(program, InterpConfig::default())
    }

    /// Creates a VM with explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`Vm::new`].
    pub fn with_config(program: &'p IrProgram, config: InterpConfig) -> Result<Self, RuntimeError> {
        let code = compile(program);
        let mut heap = Heap::new(config.heap.clone());
        heap.set_fault_plan(config.fault.clone());
        let mut func_index = HashMap::new();
        let mut globals = Vec::with_capacity(code.globals.len());
        for (i, def) in code.globals.iter().enumerate() {
            match def {
                GlobalDef::Func { chunk, .. } => {
                    func_index.entry(program.funcs[i].name).or_insert(*chunk);
                    globals.push(Value::Func(&program.funcs[i]));
                }
                // Placeholder until startup evaluates the binding; loads
                // check `init_done` first, so it is never observed.
                GlobalDef::Value { .. } => globals.push(Value::Nil),
            }
        }
        let fault_inert = !config.fault.is_active();
        let mut vm = Vm {
            program,
            code,
            heap,
            globals,
            init_done: 0,
            func_index,
            config,
            fault_inert,
        };
        for i in 0..vm.code.globals.len() {
            if let GlobalDef::Value { chunk } = vm.code.globals[i] {
                vm.init_done = i;
                let v = vm.exec(chunk, Vec::new())?;
                vm.globals[i] = v;
            }
        }
        vm.init_done = vm.code.globals.len();
        Ok(vm)
    }

    /// Runs the program body to a value.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution.
    pub fn run(&mut self) -> Result<Value<'p>, RuntimeError> {
        self.exec(self.code.main, Vec::new())
    }

    /// Replaces the per-entry fuel budget (`None` = unlimited). A server
    /// worker calls this before each request; every `run`/`call` entry
    /// meters from its own start.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.config.fuel = fuel;
    }

    /// Installs (or clears) the shared cooperative-cancellation flag.
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.config.cancel = cancel;
    }

    /// Replaces the fault plan for subsequent entries (a server worker
    /// installs each request's plan, then resets to the inert default).
    /// Re-derives the allocation fast-path flag, which is keyed on plan
    /// inertness at construction time.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_inert = !plan.is_active();
        self.heap.set_fault_plan(plan);
    }

    /// Calls top-level function `name` with exactly its arity in `args`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unbound`] for unknown names, a
    /// [`RuntimeError::TypeMismatch`] for arity mismatch, and any error
    /// raised by the body.
    pub fn call(&mut self, name: Symbol, args: Vec<Value<'p>>) -> Result<Value<'p>, RuntimeError> {
        let (i, func) = self
            .program
            .funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name && f.is_function())
            .ok_or_else(|| RuntimeError::Unbound {
                name: name.to_string(),
            })?;
        if func.params.len() != args.len() {
            return Err(RuntimeError::TypeMismatch {
                expected: "full application",
                found: "wrong arity",
                op: "call",
            });
        }
        let GlobalDef::Func { chunk, .. } = self.code.globals[i] else {
            // A function binding always compiles to `GlobalDef::Func`.
            return Err(RuntimeError::Internal {
                what: "function binding did not compile to a function chunk",
            });
        };
        self.exec(chunk, args)
    }

    fn exec(&mut self, chunk: u32, args: Vec<Value<'p>>) -> Result<Value<'p>, RuntimeError> {
        let code = &self.code;
        let heap = &mut self.heap;
        let mut m = Machine {
            locals: args,
            stack: Vec::new(),
            frames: vec![Activation {
                chunk,
                ret_chunk: 0,
                ret_pc: 0,
                locals_base: 0,
                stack_base: 0,
                env: None,
            }],
            regions: Vec::new(),
            scratch: Vec::new(),
            ops: code.chunks[chunk as usize].code.as_slice(),
            lb: 0,
            ci: chunk as usize,
            pc: 0,
            steps: heap.stats.steps,
            step_limit: self.config.step_limit,
            // Fuel is metered from this entry, not machine birth, so
            // every `run`/`call` gets the full budget.
            fuel_limit: self
                .config
                .fuel
                .map_or(u64::MAX, |f| heap.stats.steps.saturating_add(f)),
            code,
            heap,
            globals: &self.globals,
            program: self.program,
            init_done: self.init_done,
            func_index: &self.func_index,
            config: &self.config,
            fault_inert: self.fault_inert,
        };
        let n_slots = code.chunks[chunk as usize].n_slots as usize;
        m.locals.resize(n_slots, Value::Nil);
        m.run()
    }

    /// Builds a proper list from `items` (testing/benchmark helper).
    pub fn make_list(&mut self, items: impl IntoIterator<Item = Value<'p>>) -> Value<'p> {
        let items: Vec<Value<'p>> = items.into_iter().collect();
        let mut acc = Value::Nil;
        for v in items.into_iter().rev() {
            let cell = self.heap.alloc(v, acc, AllocMode::Heap);
            acc = Value::Pair(cell);
        }
        acc
    }

    /// Builds a list of integers.
    pub fn make_int_list(&mut self, items: &[i64]) -> Value<'p> {
        self.make_list(items.iter().map(|&n| Value::Int(n)))
    }

    /// Reads a list of integers back out of the heap.
    ///
    /// # Errors
    ///
    /// Type mismatches if the value is not a proper `int list`, or
    /// [`RuntimeError::UseAfterFree`] for dangling cells.
    pub fn read_int_list(&self, mut v: Value<'p>) -> Result<Vec<i64>, RuntimeError> {
        let mut out = Vec::new();
        loop {
            match v {
                Value::Nil => return Ok(out),
                Value::Pair(c) => {
                    match self.heap.car(c)? {
                        Value::Int(n) => out.push(n),
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "int",
                                found: other.kind(),
                                op: "read_int_list",
                            })
                        }
                    }
                    v = self.heap.cdr(c)?;
                }
                other => {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "list",
                        found: other.kind(),
                        op: "read_int_list",
                    })
                }
            }
        }
    }
}

/// One call frame. Locals and operand-stack storage live in the shared
/// machine vectors; the activation records only the bases.
struct Activation<'p> {
    chunk: u32,
    ret_chunk: u32,
    ret_pc: u32,
    locals_base: usize,
    stack_base: usize,
    env: Option<Rc<CaptureEnv<'p>>>,
}

/// The running machine. Holds the [`Vm`]'s parts as *split* borrows so
/// the dispatch loop can keep a direct reference to the current chunk's
/// instructions (`ops`) alongside the mutable heap — one bounds check
/// per fetch instead of a double indirection through the `Vm`.
struct Machine<'v, 'p> {
    /// All frames' local slots, contiguous.
    locals: Vec<Value<'p>>,
    /// The operand stack, shared across frames.
    stack: Vec<Value<'p>>,
    frames: Vec<Activation<'p>>,
    /// Open dynamic extents; `None` marks a fault-denied push (the
    /// matching `ExitRegion` then pops nothing from the heap).
    regions: Vec<Option<RegionId>>,
    /// Staging buffer for moving call arguments (reused, no per-call
    /// allocation).
    scratch: Vec<Value<'p>>,
    /// The current chunk's instructions (cache of `code.chunks[ci].code`;
    /// refreshed on every frame switch).
    ops: &'v [Op],
    /// The current frame's locals base (cache of
    /// `frames.last().locals_base`; refreshed on every frame switch).
    lb: usize,
    ci: usize,
    pc: usize,
    /// Running step counter (flushed to `heap.stats.steps` on exit).
    steps: u64,
    step_limit: u64,
    /// Absolute step count at which this entry's fuel runs out
    /// (`u64::MAX` when unmetered).
    fuel_limit: u64,
    code: &'v BytecodeProgram,
    heap: &'v mut Heap<'p>,
    globals: &'v [Value<'p>],
    program: &'p IrProgram,
    init_done: usize,
    func_index: &'v HashMap<Symbol, u32>,
    config: &'v InterpConfig,
    fault_inert: bool,
}

/// Resolves closure-capture sources against the creating frame.
fn resolve_captures<'p>(
    srcs: &[CaptureSrc],
    locals: &[Value<'p>],
    env: Option<&Rc<CaptureEnv<'p>>>,
) -> Result<Vec<Value<'p>>, RuntimeError> {
    srcs.iter()
        .map(|s| {
            Ok(match *s {
                CaptureSrc::Local(i) => locals[i as usize].clone(),
                CaptureSrc::Capture(i) => {
                    let e = env.ok_or(RuntimeError::Internal {
                        what: "capturing frame has no capture env",
                    })?;
                    e.values[i as usize].clone()
                }
                CaptureSrc::Rec(j) => {
                    let e = env.ok_or(RuntimeError::Internal {
                        what: "capturing frame has no rec group",
                    })?;
                    Value::VmClosure(Rc::new(VmClosureData {
                        chunk: e.rec[j as usize],
                        env: e.clone(),
                    }))
                }
            })
        })
        .collect()
}

impl<'p> Machine<'_, 'p> {
    fn run(&mut self) -> Result<Value<'p>, RuntimeError> {
        let r = self.run_loop();
        self.heap.stats.steps = self.steps;
        if r.is_err() {
            // Close the dynamic extents the aborted computation left
            // open (innermost first), so the heap is consistent for the
            // next `run`/`call` entry on the same `Vm`. No live value
            // can reference these cells: the computation that owned
            // them produced no result.
            for id in self.regions.drain(..).rev().flatten() {
                let _ = self.heap.pop_region(id);
            }
        }
        r
    }

    /// Pops an operand; a miss is a bytecode invariant violation
    /// surfaced as a typed error (never a worker-killing panic).
    #[inline]
    fn pop(&mut self, what: &'static str) -> Result<Value<'p>, RuntimeError> {
        self.stack.pop().ok_or(RuntimeError::Internal { what })
    }

    /// GC poll. With an inert fault plan this is only called from the
    /// allocation ops (the heap cannot need collecting anywhere else,
    /// and forced-GC requests cannot exist); with an active plan the
    /// dispatch loop polls every step, like the tree-walker.
    #[inline]
    fn maybe_collect(&mut self) {
        let forced = self.heap.take_forced_gc();
        if forced || self.heap.should_collect() {
            self.collect(forced);
        }
    }

    fn run_loop(&mut self) -> Result<Value<'p>, RuntimeError> {
        loop {
            // Checked *before* the increment with `>=`, so exactly
            // `fuel` steps of the uninterrupted execution have run when
            // this trips (the prefix-determinism property the fuel
            // proptest pins down).
            if self.steps >= self.fuel_limit {
                return Err(RuntimeError::FuelExhausted {
                    fuel: self.config.fuel.unwrap_or(0),
                });
            }
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(RuntimeError::StepLimitExceeded {
                    limit: self.step_limit,
                });
            }
            if self.steps & CANCEL_POLL_MASK == 0 {
                if let Some(c) = &self.config.cancel {
                    if c.load(Ordering::Relaxed) {
                        return Err(RuntimeError::Cancelled);
                    }
                }
            }
            if !self.fault_inert {
                self.maybe_collect();
            }
            let op = self.ops[self.pc];
            self.pc += 1;
            match op {
                Op::PushInt(n) => self.stack.push(Value::Int(n)),
                Op::PushBool(b) => self.stack.push(Value::Bool(b)),
                Op::PushNil => self.stack.push(Value::Nil),
                Op::PushPrim(p) => self.stack.push(Value::Prim(p)),
                Op::LoadLocal(i) => {
                    self.stack.push(self.locals[self.lb + i as usize].clone());
                }
                Op::LoadCapture(i) => {
                    let env = self.frames.last().and_then(|f| f.env.as_ref()).ok_or(
                        RuntimeError::Internal {
                            what: "chunk with captures ran without a closure env",
                        },
                    )?;
                    self.stack.push(env.values[i as usize].clone());
                }
                Op::LoadRec(j) => {
                    let env = self.frames.last().and_then(|f| f.env.as_ref()).ok_or(
                        RuntimeError::Internal {
                            what: "chunk with rec refs ran without a closure env",
                        },
                    )?;
                    self.stack.push(Value::VmClosure(Rc::new(VmClosureData {
                        chunk: env.rec[j as usize],
                        env: env.clone(),
                    })));
                }
                Op::LoadGlobalFunc(i) => self.stack.push(self.globals[i as usize].clone()),
                Op::LoadGlobalVal(i) => {
                    if (i as usize) < self.init_done {
                        self.stack.push(self.globals[i as usize].clone());
                    } else {
                        return Err(RuntimeError::Unbound {
                            name: self.program.funcs[i as usize].name.to_string(),
                        });
                    }
                }
                Op::Unbound(x) => {
                    return Err(RuntimeError::Unbound {
                        name: x.to_string(),
                    })
                }
                Op::StoreLocal(i) => {
                    let v = self.pop("operand stack underflow on store")?;
                    self.locals[self.lb + i as usize] = v;
                }
                Op::ClearLocal(i) => {
                    self.locals[self.lb + i as usize] = Value::Nil;
                }
                Op::MakeClosure(i) => {
                    let fr = self.frames.last().ok_or(RuntimeError::Internal {
                        what: "no active frame at MakeClosure",
                    })?;
                    let site = &self.code.closures[i as usize];
                    let values = resolve_captures(
                        &site.captures,
                        &self.locals[fr.locals_base..],
                        fr.env.as_ref(),
                    )?;
                    self.stack.push(Value::VmClosure(Rc::new(VmClosureData {
                        chunk: site.chunk,
                        env: Rc::new(CaptureEnv {
                            values,
                            rec: Vec::new(),
                        }),
                    })));
                }
                Op::MakeRec(i) => {
                    let fr = self.frames.last().ok_or(RuntimeError::Internal {
                        what: "no active frame at MakeRec",
                    })?;
                    let base = fr.locals_base;
                    let site = &self.code.recs[i as usize];
                    let values =
                        resolve_captures(&site.captures, &self.locals[base..], fr.env.as_ref())?;
                    let env = Rc::new(CaptureEnv {
                        values,
                        rec: site.chunks.clone(),
                    });
                    for (k, &slot) in site.slots.iter().enumerate() {
                        self.locals[base + slot as usize] =
                            Value::VmClosure(Rc::new(VmClosureData {
                                chunk: site.chunks[k],
                                env: env.clone(),
                            }));
                    }
                }
                Op::Jump(t) => self.pc = t as usize,
                Op::JumpIfFalse(t) => match self.pop("operand stack underflow on branch")? {
                    Value::Bool(true) => {}
                    Value::Bool(false) => self.pc = t as usize,
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "bool",
                            found: other.kind(),
                            op: "if",
                        })
                    }
                },
                Op::Call | Op::TailCall => {
                    let arg = self.pop("missing call argument")?;
                    let fun = self.pop("missing callee")?;
                    if let Some(v) = self.apply(fun, arg, matches!(op, Op::TailCall))? {
                        return Ok(v);
                    }
                }
                Op::CallGlobal(c) => {
                    // Non-tail entry: move the arguments straight from
                    // the operand stack into the new frame's slots (no
                    // scratch round-trip).
                    if self.frames.len() >= self.config.max_depth {
                        return Err(RuntimeError::StackOverflow {
                            limit: self.config.max_depth,
                        });
                    }
                    let chunk = &self.code.chunks[c as usize];
                    let start = self
                        .stack
                        .len()
                        .checked_sub(chunk.n_params as usize)
                        .ok_or(RuntimeError::Internal {
                            what: "operand stack underflow on global call",
                        })?;
                    let lb = self.locals.len();
                    self.locals.extend(self.stack.drain(start..));
                    self.locals.resize(lb + chunk.n_slots as usize, Value::Nil);
                    self.frames.push(Activation {
                        chunk: c,
                        ret_chunk: self.ci as u32,
                        ret_pc: self.pc as u32,
                        locals_base: lb,
                        stack_base: self.stack.len(),
                        env: None,
                    });
                    self.lb = lb;
                    self.ci = c as usize;
                    self.pc = 0;
                    self.ops = chunk.code.as_slice();
                }
                Op::TailCallGlobal(c) => {
                    let n = self.code.chunks[c as usize].n_params as usize;
                    let start = self
                        .stack
                        .len()
                        .checked_sub(n)
                        .ok_or(RuntimeError::Internal {
                            what: "operand stack underflow on global tail call",
                        })?;
                    self.scratch.extend(self.stack.drain(start..));
                    self.push_frame(c, None, true)?;
                }
                Op::Return => {
                    let v = self.pop("missing return value")?;
                    if let Some(v) = self.do_return(v)? {
                        return Ok(v);
                    }
                }
                Op::Cons { mode, site } => {
                    // The GC poll happens while head and tail are still
                    // on the operand stack, so both are rooted.
                    let cell = if self.fault_inert {
                        self.maybe_collect();
                        let tail = self.pop("missing cons tail")?;
                        let head = self.pop("missing cons head")?;
                        self.heap.alloc_fast(head, tail, mode, site)
                    } else {
                        let tail = self.pop("missing cons tail")?;
                        let head = self.pop("missing cons head")?;
                        self.heap.alloc_at(head, tail, mode, Some(site))?
                    };
                    self.stack.push(Value::Pair(cell));
                }
                Op::CheckPair => {
                    let v = self.stack.last().ok_or(RuntimeError::Internal {
                        what: "missing dcons target",
                    })?;
                    if !matches!(v, Value::Pair(_)) {
                        return Err(RuntimeError::DconsOnNonPair { found: v.kind() });
                    }
                }
                Op::Dcons(site) => {
                    if self.fault_inert {
                        // Poll before the operands leave the stack.
                        self.maybe_collect();
                    }
                    let tail = self.pop("missing dcons tail")?;
                    let head = self.pop("missing dcons head")?;
                    let Some(Value::Pair(cell)) = self.stack.pop() else {
                        // CheckPair runs before Dcons in well-formed
                        // bytecode; anything else is a compiler bug.
                        return Err(RuntimeError::Internal {
                            what: "dcons target is not a pair",
                        });
                    };
                    // Same three-way split as the tree-walker's Dcons2
                    // frame: fault retreat, checked copy-and-retire, or
                    // true in-place reuse.
                    if !self.fault_inert && self.heap.fault_dcons_retreat() {
                        let fresh = self
                            .heap
                            .alloc_at(head, tail, AllocMode::Heap, Some(site))?;
                        self.stack.push(Value::Pair(fresh));
                    } else if self.config.heap.checked {
                        let fresh = if self.fault_inert {
                            self.heap.alloc_fast(head, tail, AllocMode::Heap, site)
                        } else {
                            self.heap
                                .alloc_at(head, tail, AllocMode::Heap, Some(site))?
                        };
                        self.heap.retire_reused(cell, Some(site))?;
                        self.heap.stats.reuse_copies += 1;
                        self.heap.record_reuse(site);
                        self.stack.push(Value::Pair(fresh));
                    } else {
                        self.heap.set(cell, head, tail)?;
                        self.heap.stats.dcons_reuses += 1;
                        self.heap.record_reuse(site);
                        self.stack.push(Value::Pair(cell));
                    }
                }
                Op::ElideCons(_) => {
                    // Scalar-replaced cons: head and tail already sit in
                    // frame slots, no cell exists. Just count it.
                    self.heap.stats.allocs_elided += 1;
                }
                Op::Prim1(p) => {
                    let v = self.pop("missing prim operand")?;
                    let r = prim1(self.heap, p, v)?;
                    self.stack.push(r);
                }
                Op::Prim2(p) => {
                    if self.fault_inert && p.allocates() {
                        // First-class cons/pair construction allocates;
                        // poll while the operands are still rooted.
                        self.maybe_collect();
                    }
                    let b = self.pop("missing prim rhs")?;
                    let a = self.pop("missing prim lhs")?;
                    let r = prim2(self.heap, p, a, b)?;
                    self.stack.push(r);
                }
                Op::JumpIfPairLocal(i, t) => match &self.locals[self.lb + i as usize] {
                    Value::Nil => {}
                    Value::Pair(_) => self.pc = t as usize,
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "list",
                            found: other.kind(),
                            op: "null",
                        })
                    }
                },
                Op::Prim1Local(p, i) => {
                    // In-place fast paths for the hot list probes; the
                    // generic call covers everything else (including the
                    // error cases, which need the owned value).
                    let r = match (p, &self.locals[self.lb + i as usize]) {
                        (Prim::Car, Value::Pair(c)) => self.heap.car(*c)?,
                        (Prim::Cdr, Value::Pair(c)) => self.heap.cdr(*c)?,
                        (Prim::Null, Value::Nil) => Value::Bool(true),
                        (Prim::Null, Value::Pair(_)) => Value::Bool(false),
                        (_, v) => prim1(self.heap, p, v.clone())?,
                    };
                    self.stack.push(r);
                }
                Op::Proj2Local(p1, p2, i) => {
                    // The chained pair projection: `p1` straight off the
                    // frame slot, `p2` on its result, no operand-stack
                    // round trips. Fast paths mirror `Prim1Local`; the
                    // generic calls reproduce the unfused type errors.
                    let mid = match (p1, &self.locals[self.lb + i as usize]) {
                        (Prim::Car, Value::Pair(c)) => self.heap.car(*c)?,
                        (Prim::Cdr, Value::Pair(c)) => self.heap.cdr(*c)?,
                        (Prim::Null, Value::Nil) => Value::Bool(true),
                        (Prim::Null, Value::Pair(_)) => Value::Bool(false),
                        (_, v) => prim1(self.heap, p1, v.clone())?,
                    };
                    let r = match (p2, mid) {
                        (Prim::Car, Value::Pair(c)) => self.heap.car(c)?,
                        (Prim::Cdr, Value::Pair(c)) => self.heap.cdr(c)?,
                        (Prim::Null, Value::Nil) => Value::Bool(true),
                        (Prim::Null, Value::Pair(_)) => Value::Bool(false),
                        (_, v) => prim1(self.heap, p2, v)?,
                    };
                    self.stack.push(r);
                }
                Op::Prim2Local(p, i) => {
                    let a = self.pop("missing prim lhs")?;
                    let b = self.locals[self.lb + i as usize].clone();
                    let r = prim2(self.heap, p, a, b)?;
                    self.stack.push(r);
                }
                Op::Prim2Imm(p, n) => {
                    let a = self.pop("missing prim lhs")?;
                    let r = prim2(self.heap, p, a, Value::Int(n))?;
                    self.stack.push(r);
                }
                Op::EnterRegion(kind) => {
                    if self.heap.fault_deny_region() {
                        self.regions.push(None);
                    } else {
                        self.regions.push(Some(self.heap.push_region(kind)));
                    }
                }
                Op::ExitRegion => {
                    let slot = self.regions.pop().ok_or(RuntimeError::Internal {
                        what: "region exit with no region entered",
                    })?;
                    if let Some(id) = slot {
                        if self.config.validate_regions {
                            self.validate_region()?;
                        }
                        self.heap.pop_region(id)?;
                    }
                }
            }
        }
    }

    /// Applies `fun` to one argument. Returns the machine's final value
    /// when a tail-position result pops the last frame.
    fn apply(
        &mut self,
        fun: Value<'p>,
        arg: Value<'p>,
        tail: bool,
    ) -> Result<Option<Value<'p>>, RuntimeError> {
        match fun {
            Value::VmClosure(clo) => {
                self.scratch.push(arg);
                self.push_frame(clo.chunk, Some(clo.env.clone()), tail)?;
                Ok(None)
            }
            Value::Func(func) => self.apply_func(func, &[], arg, tail),
            Value::PartialFunc(p) => self.apply_func(p.func, &p.applied, arg, tail),
            Value::Prim(prim) => {
                if prim.arity() == 1 {
                    let v = prim1(self.heap, prim, arg)?;
                    self.ret_or_push(v, tail)
                } else {
                    self.ret_or_push(
                        Value::PrimApp(Rc::new(PrimAppData { prim, first: arg })),
                        tail,
                    )
                }
            }
            Value::PrimApp(p) => {
                let v = prim2(self.heap, p.prim, p.first.clone(), arg)?;
                self.ret_or_push(v, tail)
            }
            other => Err(RuntimeError::TypeMismatch {
                expected: "function",
                found: other.kind(),
                op: "application",
            }),
        }
    }

    /// Applies a top-level function carrying `applied` earlier arguments
    /// to one more, saturating into a frame entry when the arity is met.
    fn apply_func(
        &mut self,
        func: &'p IrFunc,
        applied: &[Value<'p>],
        arg: Value<'p>,
        tail: bool,
    ) -> Result<Option<Value<'p>>, RuntimeError> {
        if applied.len() + 1 == func.params.len() {
            // Saturating application: stage the arguments directly, with
            // no intermediate `applied` vector.
            let chunk =
                self.func_index
                    .get(&func.name)
                    .copied()
                    .ok_or_else(|| RuntimeError::Unbound {
                        name: func.name.to_string(),
                    })?;
            self.scratch.extend(applied.iter().cloned());
            self.scratch.push(arg);
            self.push_frame(chunk, None, tail)?;
            Ok(None)
        } else {
            let mut args = applied.to_vec();
            args.push(arg);
            self.ret_or_push(
                Value::PartialFunc(Rc::new(PartialApp {
                    func,
                    applied: args,
                })),
                tail,
            )
        }
    }

    /// Enters `chunk` with the staged arguments in `scratch`. A tail
    /// entry replaces the current frame (constant-depth recursion, so it
    /// can never overflow); a normal entry pushes a new one, subject to
    /// the configured depth limit.
    fn push_frame(
        &mut self,
        chunk: u32,
        env: Option<Rc<CaptureEnv<'p>>>,
        tail: bool,
    ) -> Result<(), RuntimeError> {
        let n_slots = self.code.chunks[chunk as usize].n_slots as usize;
        if tail {
            let fr = self.frames.last_mut().ok_or(RuntimeError::Internal {
                what: "tail call with no active frame",
            })?;
            let lb = fr.locals_base;
            fr.chunk = chunk;
            fr.env = env;
            let sb = fr.stack_base;
            self.locals.truncate(lb);
            self.stack.truncate(sb);
            self.locals.append(&mut self.scratch);
            self.locals.resize(lb + n_slots, Value::Nil);
            self.lb = lb;
        } else {
            if self.frames.len() >= self.config.max_depth {
                // The staged arguments must not leak into the next call.
                self.scratch.clear();
                return Err(RuntimeError::StackOverflow {
                    limit: self.config.max_depth,
                });
            }
            let lb = self.locals.len();
            self.locals.append(&mut self.scratch);
            self.locals.resize(lb + n_slots, Value::Nil);
            self.frames.push(Activation {
                chunk,
                ret_chunk: self.ci as u32,
                ret_pc: self.pc as u32,
                locals_base: lb,
                stack_base: self.stack.len(),
                env,
            });
            self.lb = lb;
        }
        self.ci = chunk as usize;
        self.pc = 0;
        self.ops = self.code.chunks[chunk as usize].code.as_slice();
        Ok(())
    }

    /// Returns `v` from the current frame; yields the machine's final
    /// value when this was the bottom frame.
    fn do_return(&mut self, v: Value<'p>) -> Result<Option<Value<'p>>, RuntimeError> {
        let fr = self.frames.pop().ok_or(RuntimeError::Internal {
            what: "return with no active frame",
        })?;
        let Some(caller) = self.frames.last() else {
            return Ok(Some(v));
        };
        self.lb = caller.locals_base;
        self.locals.truncate(fr.locals_base);
        self.stack.truncate(fr.stack_base);
        self.stack.push(v);
        self.ci = fr.ret_chunk as usize;
        self.pc = fr.ret_pc as usize;
        self.ops = self.code.chunks[self.ci].code.as_slice();
        Ok(None)
    }

    /// An immediate result in tail position behaves like `Return`;
    /// otherwise the value just lands on the operand stack.
    fn ret_or_push(&mut self, v: Value<'p>, tail: bool) -> Result<Option<Value<'p>>, RuntimeError> {
        if tail {
            self.do_return(v)
        } else {
            self.stack.push(v);
            Ok(None)
        }
    }

    /// Registers the machine's exact root set: globals, every live
    /// frame's locals, the operand stack, and closure capture arrays.
    fn mark_roots(&self, m: &mut Marker<'p>) {
        for v in self.globals {
            m.root_value(v);
        }
        for v in &self.locals {
            m.root_value(v);
        }
        for v in &self.stack {
            m.root_value(v);
        }
        for fr in &self.frames {
            if let Some(env) = &fr.env {
                m.root_captures(env);
            }
        }
    }

    /// Same minor/major dispatch as the tree-walker (the engines must
    /// collect at identical points with identical scopes for the
    /// differential suite to hold): forced GCs are major, a minor that
    /// fails to relieve pressure escalates within the same poll.
    fn collect(&mut self, force_major: bool) {
        if !force_major && self.heap.collect_kind() == GcKind::Minor {
            let mut m = Marker::new(self.heap);
            self.mark_roots(&mut m);
            m.root_remset(self.heap);
            let marked = m.finish_minor(self.heap);
            self.heap.sweep_minor(&marked);
            if !self.heap.should_collect() {
                return;
            }
        }
        let mut m = Marker::new(self.heap);
        self.mark_roots(&mut m);
        let marked = m.finish(self.heap);
        self.heap.sweep(&marked);
    }

    /// Proves no cell of the innermost region is reachable from the
    /// machine state (the region's result is on the operand stack).
    fn validate_region(&mut self) -> Result<(), RuntimeError> {
        let mut m = Marker::new(self.heap);
        self.mark_roots(&mut m);
        let marked = m.finish(self.heap);
        for &idx in self.heap.innermost_region_cells() {
            if marked[idx as usize] {
                return Err(RuntimeError::EscapedRegionCell { cell: idx });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use nml_opt::lower_program;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn lower(src: &str) -> nml_opt::IrProgram {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        lower_program(&p, &info)
    }

    fn vm_ints(src: &str) -> Vec<i64> {
        let ir = lower(src);
        let mut vm = Vm::new(&ir).expect("startup");
        let v = vm.run().expect("run");
        vm.read_int_list(v).expect("int list")
    }

    fn vm_int(src: &str) -> i64 {
        let ir = lower(src);
        let mut vm = Vm::new(&ir).expect("startup");
        match vm.run().expect("run") {
            Value::Int(n) => n,
            other => panic!("expected int, got {other}"),
        }
    }

    /// Runs both engines and asserts the rendered int result agrees.
    fn both_int(src: &str) -> i64 {
        let ir = lower(src);
        let mut interp = Interp::new(&ir).expect("tree startup");
        let tree = match interp.run().expect("tree run") {
            Value::Int(n) => n,
            other => panic!("tree returned {other}"),
        };
        let got = vm_int(src);
        assert_eq!(got, tree, "engines disagree on {src}");
        got
    }

    #[test]
    fn arithmetic_and_calls() {
        assert_eq!(both_int("letrec add x y = x + y in add 2 (add 3 4)"), 9);
    }

    #[test]
    fn list_reversal_matches_tree() {
        let src = "letrec rev l = if null l then nil
                       else app (rev (cdr l)) (cons (car l) nil);
                   app a b = if null a then b else cons (car a) (app (cdr a) b)
               in rev [1, 2, 3, 4, 5]";
        assert_eq!(vm_ints(src), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn closures_capture_locals() {
        assert_eq!(
            both_int(
                "letrec pass f = f 10;
                        make k = pass (lambda(x). x + k)
                 in make 32"
            ),
            42
        );
    }

    #[test]
    fn nested_letrec_mutual_recursion() {
        assert_eq!(
            both_int(
                "letrec go n =
                   letrec ev x = if x = 0 then 1 else od (x - 1);
                          od x = if x = 0 then 0 else ev (x - 1)
                   in ev n
                 in go 10"
            ),
            1
        );
    }

    #[test]
    fn tail_recursion_runs_in_constant_frame_depth() {
        // Deep enough that per-call frame growth would exhaust memory;
        // TailCallGlobal keeps the frame vector at depth 1.
        assert_eq!(
            vm_int("letrec loop n acc = if n = 0 then acc else loop (n - 1) (acc + 1) in loop 200000 0"),
            200_000
        );
    }

    #[test]
    fn value_bindings_and_sequencing() {
        assert_eq!(both_int("letrec k = 2 + 3; f x = x * k in f 4"), 20);
    }

    /// Lowers `src` and runs the real escape lattice + SROA annotator
    /// over it, then executes both engines on the *same* annotated IR.
    /// Returns (result, tree stats, vm stats).
    fn both_with_sroa(src: &str) -> (i64, crate::RuntimeStats, crate::RuntimeStats) {
        let mut ir = lower(src);
        let analysis = nml_escape::analyze_source(src).expect("analysis");
        nml_opt::annotate_sroa(&mut ir, &analysis);
        let mut interp = Interp::new(&ir).expect("tree startup");
        let tree = match interp.run().expect("tree run") {
            Value::Int(n) => n,
            other => panic!("tree returned {other}"),
        };
        let tree_stats = interp.heap.stats;
        let mut vm = Vm::new(&ir).expect("vm startup");
        let got = match vm.run().expect("vm run") {
            Value::Int(n) => n,
            other => panic!("vm returned {other}"),
        };
        assert_eq!(got, tree, "engines disagree on {src}");
        (got, tree_stats, vm.heap.stats)
    }

    #[test]
    fn sroa_elides_allocation_and_matches_tree() {
        let (v, tree, vm) = both_with_sroa(
            "letrec f n = letrec p = cons n (cons 1 nil) in car p + car (cdr p) in f 20",
        );
        assert_eq!(v, 21);
        // Tree-walker treats the mark as plain heap; only the VM elides.
        assert_eq!(tree.allocs_elided, 0);
        assert_eq!(tree.heap_allocs, 2);
        assert_eq!(vm.allocs_elided, 1, "outer pair scalarized");
        assert_eq!(vm.heap_allocs, 1, "inner cell still materialized");
    }

    #[test]
    fn sroa_in_a_loop_elides_per_iteration() {
        let src = "letrec loop n acc =
                     if n = 0 then acc
                     else letrec p = cons n (cons acc nil)
                          in loop (n - 1) (car p + car (cdr p))
                   in loop 100 0";
        let (v, tree, vm) = both_with_sroa(src);
        assert_eq!(v, both_int(src), "same value as the unannotated IR");
        assert_eq!(vm.allocs_elided, 100, "one elision per iteration");
        assert_eq!(tree.heap_allocs, vm.heap_allocs + 100);
        assert_eq!(v, tree_int_unannotated(src));
    }

    fn tree_int_unannotated(src: &str) -> i64 {
        let ir = lower(src);
        let mut interp = Interp::new(&ir).expect("tree startup");
        match interp.run().expect("tree run") {
            Value::Int(n) => n,
            other => panic!("tree returned {other}"),
        }
    }

    #[test]
    fn partial_application_of_globals() {
        assert_eq!(
            both_int(
                "letrec add x y = x + y;
                        twice f z = f (f z)
                 in twice (add 3) 1"
            ),
            7
        );
    }

    #[test]
    fn prims_as_first_class_values() {
        // `car` passed as a function value.
        assert_eq!(
            vm_ints("letrec map f l = if null l then nil else cons (f (car l)) (map f (cdr l)) in map car [[8]]"),
            vec![8]
        );
        // A binary prim applied once is a partial application.
        assert_eq!(
            vm_ints("letrec apply f x = f x in apply (cons 7) nil"),
            vec![7]
        );
    }

    #[test]
    fn runtime_errors_match_tree() {
        let srcs = [
            "letrec f x = car x in f nil", // EmptyList
            "letrec f x = x / 0 in f 1",   // DivisionByZero
        ];
        for src in srcs {
            let ir = lower(src);
            let tree = Interp::new(&ir).and_then(|mut i| i.run()).unwrap_err();
            let vm = Vm::new(&ir).and_then(|mut v| v.run()).unwrap_err();
            assert_eq!(format!("{vm}"), format!("{tree}"), "on {src}");
        }
    }

    #[test]
    fn gc_collects_dead_cells_mid_run() {
        use crate::heap::HeapConfig;
        let src = "letrec churn n = if n = 0 then 0
                       else churn (n - 1) + car (cons n nil)
               in churn 500";
        let ir = lower(src);
        let config = InterpConfig {
            heap: HeapConfig {
                gc_threshold: 64,
                ..HeapConfig::default()
            },
            ..InterpConfig::default()
        };
        let mut vm = Vm::with_config(&ir, config).expect("startup");
        let v = vm.run().expect("run");
        // churn n = churn (n-1) + n, so the result is 1 + 2 + … + 500.
        assert!(matches!(v, Value::Int(125_250)));
        assert!(vm.heap.stats.gc_runs > 0, "GC ran under pressure");
        assert!(vm.heap.live() < 500, "dead churn cells were reclaimed");
    }

    #[test]
    fn call_entry_point_matches_interp() {
        let src = "letrec sum l = if null l then 0 else car l + sum (cdr l) in sum nil";
        let ir = lower(src);
        let mut vm = Vm::new(&ir).expect("startup");
        let l = vm.make_int_list(&[1, 2, 3, 4]);
        let v = vm.call(Symbol::intern("sum"), vec![l]).expect("call");
        assert!(matches!(v, Value::Int(10)));
        let missing = vm.call(Symbol::intern("nope"), vec![]);
        assert!(matches!(missing, Err(RuntimeError::Unbound { .. })));
    }
}
