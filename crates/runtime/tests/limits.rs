//! Resource-limit behavior: typed stack-overflow at the configured
//! depth limit (tail calls unaffected), per-entry fuel, cooperative
//! cancellation, and re-entry after an interrupted run — under both
//! engines.

use nml_opt::lower_program;
use nml_runtime::{Interp, InterpConfig, RuntimeError, Value, Vm};
use nml_syntax::parse_program;
use nml_types::infer_program;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn lower(src: &str) -> nml_opt::IrProgram {
    let p = parse_program(src).unwrap();
    let info = infer_program(&p).unwrap();
    lower_program(&p, &info)
}

/// Runs `src` under both engines with `config` and returns both results
/// (startup errors surface as run errors).
fn run_both(src: &str, config: &InterpConfig) -> [Result<Option<i64>, RuntimeError>; 2] {
    let as_int = |v: Value| match v {
        Value::Int(n) => Some(n),
        _ => None,
    };
    let ir = lower(src);
    let tree = Interp::with_config(&ir, config.clone())
        .and_then(|mut i| i.run())
        .map(as_int);
    let ir = lower(src);
    let vm = Vm::with_config(&ir, config.clone())
        .and_then(|mut v| v.run())
        .map(as_int);
    [tree, vm]
}

// A non-tail sum: every recursive call leaves a pending `1 +` frame.
const NON_TAIL_DEEP: &str = "letrec down n = if n = 0 then 0 else 1 + down (n - 1) in down 100000";

// A tail loop of the same length: constant frame depth in the VM and a
// bounded continuation stack in the tree-walker.
const TAIL_DEEP: &str =
    "letrec loop n acc = if n = 0 then acc else loop (n - 1) (acc + 1) in loop 100000 0";

#[test]
fn non_tail_recursion_overflows_at_depth_limit() {
    let config = InterpConfig {
        max_depth: 1000,
        ..Default::default()
    };
    for r in run_both(NON_TAIL_DEEP, &config) {
        assert!(
            matches!(r, Err(RuntimeError::StackOverflow { limit: 1000 })),
            "expected typed overflow, got {r:?}"
        );
    }
}

#[test]
fn tail_calls_run_below_any_depth_limit() {
    // A limit far below the iteration count: only non-tail growth can
    // trip it, so the loop must complete.
    let config = InterpConfig {
        max_depth: 64,
        ..Default::default()
    };
    for r in run_both(TAIL_DEEP, &config) {
        assert_eq!(r.expect("tail loop completes"), Some(100_000));
    }
}

#[test]
fn default_depth_limit_admits_legitimate_deep_programs() {
    // The default must not regress the existing deep-recursion suite's
    // envelope (200k-element non-tail list folds).
    for r in run_both(NON_TAIL_DEEP, &InterpConfig::default()) {
        assert_eq!(r.expect("runs under default limit"), Some(100_000));
    }
}

#[test]
fn fuel_exhaustion_is_typed_and_carries_the_budget() {
    let config = InterpConfig {
        fuel: Some(500),
        ..Default::default()
    };
    for r in run_both(TAIL_DEEP, &config) {
        assert!(
            matches!(r, Err(RuntimeError::FuelExhausted { fuel: 500 })),
            "expected fuel exhaustion, got {r:?}"
        );
    }
}

#[test]
fn fuel_is_per_entry_and_the_machine_reenters_cleanly() {
    let src = "letrec sum n acc = if n = 0 then acc else sum (n - 1) (acc + n) in sum 3 0";
    let ir = lower(src);
    let mut vm = Vm::new(&ir).expect("startup");
    vm.set_fuel(Some(10));
    let err = vm.run().expect_err("10 steps is not enough");
    assert!(matches!(err, RuntimeError::FuelExhausted { fuel: 10 }));
    // Refueled, the same machine runs the same entry to completion:
    // the interrupted run left no residue.
    vm.set_fuel(Some(1_000_000));
    assert!(matches!(vm.run().expect("refueled run"), Value::Int(6)));
    vm.set_fuel(None);
    assert!(matches!(vm.run().expect("unmetered run"), Value::Int(6)));

    let ir = lower(src);
    let mut interp = Interp::new(&ir).expect("startup");
    interp.set_fuel(Some(10));
    let err = interp.run().expect_err("10 steps is not enough");
    assert!(matches!(err, RuntimeError::FuelExhausted { fuel: 10 }));
    interp.set_fuel(None);
    assert!(matches!(
        interp.run().expect("unmetered run"),
        Value::Int(6)
    ));
}

#[test]
fn cancellation_interrupts_both_engines() {
    // The flag is raised before entry; the poll (every 1024 steps)
    // trips it early in a 100k-iteration loop.
    let flag = Arc::new(AtomicBool::new(true));
    let config = InterpConfig {
        cancel: Some(flag.clone()),
        ..Default::default()
    };
    for r in run_both(TAIL_DEEP, &config) {
        assert!(
            matches!(r, Err(RuntimeError::Cancelled)),
            "expected cancellation, got {r:?}"
        );
    }
    // Lowered, the same config runs normally.
    flag.store(false, Ordering::SeqCst);
    for r in run_both(TAIL_DEEP, &config) {
        assert_eq!(r.expect("uncancelled run"), Some(100_000));
    }
}
