//! GC transparency: collection must be unobservable. Random first-order
//! list programs are run with garbage collection disabled, with an
//! aggressive threshold, and with region validation enabled — all three
//! must produce identical results and never touch a reclaimed cell.

use nml_opt::lower_program;
use nml_runtime::{HeapConfig, Interp, InterpConfig, Value};
use nml_syntax::parse_program;
use nml_types::infer_program;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Body {
    L,
    M,
    Nil,
    SafeCdr(Box<Body>),
    ConsInc(Box<Body>, Box<Body>),
    Append(Box<Body>, Box<Body>),
    Rev(Box<Body>),
    RecL(Box<Body>),
    IfNull(Box<Body>, Box<Body>, Box<Body>),
}

impl Body {
    fn render(&self) -> String {
        match self {
            Body::L => "l".into(),
            Body::M => "m".into(),
            Body::Nil => "nil".into(),
            Body::SafeCdr(e) => format!("(safecdr {})", e.render()),
            Body::ConsInc(a, b) => {
                format!("(cons (safecar {} + 1) {})", a.render(), b.render())
            }
            Body::Append(a, b) => format!("(append {} {})", a.render(), b.render()),
            Body::Rev(e) => format!("(rev {})", e.render()),
            // Recursion is well-founded by construction: it only fires
            // when `l` is non-empty and always recurses on `cdr l`, so
            // every generated program terminates. (An inner expression
            // like `subject (safecdr m) m` would diverge.)
            Body::RecL(e) => format!("(if (null l) then {} else (subject (cdr l) m))", e.render()),
            Body::IfNull(c, t, f) => format!(
                "(if (null {}) then {} else {})",
                c.render(),
                t.render(),
                f.render()
            ),
        }
    }
}

fn body_strategy() -> impl Strategy<Value = Body> {
    let leaf = prop_oneof![Just(Body::L), Just(Body::M), Just(Body::Nil)];
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Body::SafeCdr(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Body::ConsInc(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Body::Append(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Body::Rev(Box::new(e))),
            inner.clone().prop_map(|e| Body::RecL(Box::new(e))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| Body::IfNull(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn program_for(body: &Body, la: &[i64], lb: &[i64]) -> String {
    fn lit(l: &[i64]) -> String {
        let items: Vec<String> = l.iter().map(|n| n.to_string()).collect();
        format!("[{}]", items.join(", "))
    }
    format!(
        "letrec
           safecar l = if (null l) then 0 else car l;
           safecdr l = if (null l) then nil else cdr l;
           append x y = if (null x) then y
                        else cons (car x) (append (cdr x) y);
           rev l = if (null l) then nil
                   else append (rev (cdr l)) (cons (car l) nil);
           subject l m = {}
         in subject {} {}",
        body.render(),
        lit(la),
        lit(lb)
    )
}

fn run_with(src: &str, config: InterpConfig) -> (String, u64) {
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    let ir = lower_program(&p, &info);
    let mut interp = Interp::with_config(&ir, config).expect("interp");
    let v = interp.run().expect("run");
    let rendered = render(&interp, &v);
    (rendered, interp.heap.stats.gc_runs)
}

fn render(interp: &Interp<'_>, v: &Value<'_>) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Nil => "[]".to_string(),
        Value::Pair(c) => {
            let h = interp.heap.car(*c).expect("live");
            let t = interp.heap.cdr(*c).expect("live");
            format!("({} . {})", render(interp, &h), render(interp, &t))
        }
        other => format!("<{}>", other.kind()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gc_is_transparent(
        body in body_strategy(),
        la in proptest::collection::vec(0i64..50, 0..6),
        lb in proptest::collection::vec(0i64..50, 0..6),
    ) {
        let src = program_for(&body, &la, &lb);
        let (no_gc, runs_off) = run_with(&src, InterpConfig {
            heap: HeapConfig { gc_threshold: usize::MAX, gc_enabled: false, checked: false, ..HeapConfig::default() },
            step_limit: 2_000_000,
            validate_regions: false,
            ..Default::default()
        });
        prop_assert_eq!(runs_off, 0);
        let (stressed, _) = run_with(&src, InterpConfig {
            heap: HeapConfig { gc_threshold: 4, gc_enabled: true, checked: false, ..HeapConfig::default() },
            validate_regions: true,
            step_limit: 2_000_000,
            ..Default::default()
        });
        prop_assert_eq!(no_gc, stressed, "GC changed the result of {}", body.render());
    }
}
