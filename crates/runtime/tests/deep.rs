//! Deep-recursion stress: the explicit-stack machine must handle inputs
//! far beyond what Rust-stack recursion could, with GC active.

use nml_opt::lower_program;
use nml_runtime::{HeapConfig, Interp, InterpConfig, Value};
use nml_syntax::{parse_program, Symbol};
use nml_types::infer_program;

fn config() -> InterpConfig {
    InterpConfig {
        heap: HeapConfig {
            gc_threshold: 4096,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        ..Default::default()
    }
}

#[test]
fn sum_of_two_hundred_thousand_elements() {
    let src = "letrec sum l = if (null l) then 0 else car l + sum (cdr l) in sum [1]";
    let p = parse_program(src).unwrap();
    let info = infer_program(&p).unwrap();
    let ir = lower_program(&p, &info);
    let mut i = Interp::with_config(&ir, config()).unwrap();
    let n: i64 = 200_000;
    let input: Vec<i64> = (1..=n).collect();
    let l = i.make_int_list(&input);
    let out = i
        .call(Symbol::intern("sum"), vec![l])
        .expect("no stack overflow");
    assert!(matches!(out, Value::Int(x) if x == n * (n + 1) / 2));
}

#[test]
fn accumulator_reverse_of_one_hundred_thousand() {
    let src = "letrec revonto l acc = if (null l) then acc
                                      else revonto (cdr l) (cons (car l) acc)
               in revonto [1] nil";
    let p = parse_program(src).unwrap();
    let info = infer_program(&p).unwrap();
    let ir = lower_program(&p, &info);
    let mut i = Interp::with_config(&ir, config()).unwrap();
    let n = 100_000usize;
    let input: Vec<i64> = (0..n as i64).collect();
    let l = i.make_int_list(&input);
    let out = i
        .call(Symbol::intern("revonto"), vec![l, Value::Nil])
        .expect("runs");
    let ints = i.read_int_list(out).expect("list");
    assert_eq!(ints.len(), n);
    assert_eq!(ints[0], n as i64 - 1);
    assert_eq!(ints[n - 1], 0);
    // At least the n result cells are live; the consumed input prefix is
    // legitimately collectable (and the GC did run at this threshold).
    assert!(i.heap.live() >= n as u64);
    assert!(i.heap.stats.gc_runs > 0);
}

#[test]
fn deeply_nested_non_tail_recursion() {
    // len is not tail recursive: 50k pending continuation frames on the
    // machine's *explicit* stack.
    let src = "letrec len l = if (null l) then 0 else 1 + len (cdr l) in len [1]";
    let p = parse_program(src).unwrap();
    let info = infer_program(&p).unwrap();
    let ir = lower_program(&p, &info);
    let mut i = Interp::with_config(&ir, config()).unwrap();
    let input: Vec<i64> = (0..50_000).collect();
    let l = i.make_int_list(&input);
    let out = i.call(Symbol::intern("len"), vec![l]).expect("no overflow");
    assert!(matches!(out, Value::Int(50_000)));
}
