//! Fuel determinism: interrupting a run is observationally a *prefix*
//! of the uninterrupted run, under both engines and under deterministic
//! fault plans.
//!
//! For a fixed program and plan:
//!
//! - an interrupted run at fuel `F` consumes exactly `F` steps;
//! - rerunning at the same `F` on a fresh machine reproduces the same
//!   outcome and the same counters bit-for-bit;
//! - counters at fuel `F1 <= F2` are monotone (a longer prefix can only
//!   have seen more allocations/collections);
//! - fuel at or past the program's natural step count changes nothing:
//!   same result, same counters as the unmetered run.
//!
//! These are the properties a serving layer leans on when it maps
//! deadlines to fuel: metering can only truncate an execution, never
//! perturb it.

use nml_opt::{lower_program, IrProgram};
use nml_runtime::{
    Engine, FaultPlan, FaultRate, Heap, Interp, InterpConfig, RuntimeError, Value, Vm,
};
use nml_syntax::parse_program;
use nml_types::infer_program;
use proptest::prelude::*;

fn compile(src: &str) -> IrProgram {
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    lower_program(&p, &info)
}

fn program_for(la: &[i64], lb: &[i64]) -> String {
    fn lit(l: &[i64]) -> String {
        let items: Vec<String> = l.iter().map(|n| n.to_string()).collect();
        format!("[{}]", items.join(", "))
    }
    // Enough cons churn that forced-GC plans have something to collect
    // and fuel cuts land mid-structure.
    format!(
        "letrec
           append x y = if (null x) then y
                        else cons (car x) (append (cdr x) y);
           rev l = if (null l) then nil
                   else append (rev (cdr l)) (cons (car l) nil);
           len l = if (null l) then 0 else 1 + len (cdr l)
         in len (append (rev {}) (append {} (rev {})))",
        lit(la),
        lit(lb),
        lit(la),
    )
}

fn digest(heap: &Heap<'_>, v: &Value<'_>) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Nil => "[]".to_string(),
        Value::Pair(c) | Value::Tuple(c) => {
            let h = heap.car(*c).expect("live");
            let t = heap.cdr(*c).expect("live");
            format!("({} . {})", digest(heap, &h), digest(heap, &t))
        }
        other => format!("<{}>", other.kind()),
    }
}

/// Counters that must evolve monotonically along a single execution.
type Counters = [u64; 4];

/// One fresh-machine run: `(outcome, steps consumed by the entry,
/// counters at exit)`.
fn measure(
    ir: &IrProgram,
    engine: Engine,
    fuel: Option<u64>,
    plan: &FaultPlan,
) -> (Result<String, RuntimeError>, u64, Counters) {
    let config = InterpConfig {
        fault: plan.clone(),
        fuel,
        ..InterpConfig::default()
    };
    let (outcome, entry_steps, stats) = match engine {
        Engine::Tree => {
            let mut m = Interp::with_config(ir, config).expect("startup");
            let s0 = m.heap.stats.steps;
            let r = m.run().map(|v| digest(&m.heap, &v));
            (r, m.heap.stats.steps - s0, m.heap.stats.clone())
        }
        Engine::Vm => {
            let mut m = Vm::with_config(ir, config).expect("startup");
            let s0 = m.heap.stats.steps;
            let r = m.run().map(|v| digest(&m.heap, &v));
            (r, m.heap.stats.steps - s0, m.heap.stats.clone())
        }
    };
    let counters = [
        stats.steps,
        stats.heap_allocs,
        stats.gc_runs,
        stats.forced_gcs,
    ];
    (outcome, entry_steps, counters)
}

fn plan_of(seed: u64, gc_num: u32) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    if gc_num > 0 {
        plan = plan.with_forced_gc(FaultRate::new(gc_num, 7));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interrupted_runs_are_deterministic_prefixes(
        la in proptest::collection::vec(0i64..50, 1..7),
        lb in proptest::collection::vec(0i64..50, 0..7),
        seed in 0u64..1000,
        gc_num in 0u32..3,
        frac in 1u64..130,
    ) {
        let src = program_for(&la, &lb);
        let ir = compile(&src);
        let plan = plan_of(seed, gc_num);
        for engine in [Engine::Tree, Engine::Vm] {
            // The unmetered baseline: natural step count S.
            let (full, s, full_counters) = measure(&ir, engine, None, &plan);
            let full = full.expect("baseline run succeeds");
            prop_assert!(s > 0);

            // A fuel budget somewhere in (0, 1.3 * S].
            let f = (s * frac).div_ceil(100);
            let (r1, used1, c1) = measure(&ir, engine, Some(f), &plan);
            // Bit-for-bit determinism on a fresh machine.
            let (r2, used2, c2) = measure(&ir, engine, Some(f), &plan);
            prop_assert_eq!(&r1, &r2, "same fuel, same outcome ({engine:?})");
            prop_assert_eq!(used1, used2);
            prop_assert_eq!(c1, c2);

            if f >= s {
                // Enough fuel: metering is invisible.
                prop_assert_eq!(r1.as_deref(), Ok(full.as_str()));
                prop_assert_eq!(used1, s);
                prop_assert_eq!(c1, full_counters);
            } else {
                // Interrupted: typed error after exactly `f` steps, and
                // every counter is a prefix of the full run's.
                prop_assert!(
                    matches!(r1, Err(RuntimeError::FuelExhausted { fuel }) if fuel == f),
                    "expected FuelExhausted({f}), got {r1:?} ({engine:?})"
                );
                prop_assert_eq!(used1, f);
                for (a, b) in c1.iter().zip(full_counters.iter()) {
                    prop_assert!(a <= b, "counter regressed: {c1:?} vs {full_counters:?}");
                }

                // Monotonicity between two interrupted prefixes.
                let f2 = f + (s - f) / 2;
                let (_, used3, c3) = measure(&ir, engine, Some(f2), &plan);
                prop_assert!(used3 >= used1);
                for (a, b) in c1.iter().zip(c3.iter()) {
                    prop_assert!(a <= b, "prefix not monotone: {c1:?} vs {c3:?}");
                }
            }
        }
    }
}
