//! Property-based tests of the abstract domain and the engine.
//!
//! - lattice laws of `B_e`, `FunVal`, and `AbsVal` joins over randomly
//!   generated values;
//! - `sub^s` monotonicity and its interplay with join;
//! - monotonicity of the engine on randomly generated first-order
//!   programs: larger abstract inputs give larger outputs (the heart of
//!   the §3.5 termination/safety argument);
//! - agreement of the symbolic engine with the exhaustive tabulated
//!   reference on random first-order programs (differential testing).

use nml_escape::{tabulate_program, AbsVal, Be, Engine, FunVal};
use nml_syntax::parse_program;
use nml_types::infer_program;
use proptest::prelude::*;
use std::sync::Arc;

const D: u32 = 3;

fn be_strategy() -> impl Strategy<Value = Be> {
    prop_oneof![Just(Be::bottom()), (0..=D).prop_map(Be::escaping),]
}

/// Random function components (closure-free: closures need a program;
/// their join behaviour is covered by the engine tests).
fn funval_strategy() -> impl Strategy<Value = FunVal> {
    let leaf = prop_oneof![
        Just(FunVal::Err),
        Just(FunVal::Cons0),
        Just(FunVal::Cdr),
        Just(FunVal::Null),
        Just(FunVal::Arith0),
        Just(FunVal::Arith1),
        (1u32..=3).prop_map(|s| FunVal::Car { s }),
        ((1u32..=4), be_strategy()).prop_map(|(remaining, acc)| FunVal::Worst { remaining, acc }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner, be_strategy()).prop_map(|(f, be)| FunVal::Cons1(Arc::new(AbsVal { be, fun: f })))
    })
}

fn absval_strategy() -> impl Strategy<Value = AbsVal> {
    (be_strategy(), funval_strategy()).prop_map(|(be, fun)| AbsVal { be, fun })
}

proptest! {
    #[test]
    fn be_join_laws(a in be_strategy(), b in be_strategy(), c in be_strategy()) {
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert!(a.le(a.join(b)));
        prop_assert!(b.le(a.join(b)));
    }

    #[test]
    fn be_sub_monotone_and_reductive(a in be_strategy(), b in be_strategy(), s in 0u32..=D) {
        if a.le(b) {
            prop_assert!(a.sub(s).le(b.sub(s)));
        }
        // sub never increases a value.
        prop_assert!(a.sub(s).le(a));
    }

    #[test]
    fn funval_join_laws(a in funval_strategy(), b in funval_strategy(), c in funval_strategy()) {
        prop_assert_eq!(a.join(&a), a.clone(), "idempotent");
        prop_assert_eq!(a.join(&b), b.join(&a), "commutative");
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)), "associative");
        prop_assert_eq!(FunVal::Err.join(&a), a.clone(), "err is identity");
    }

    #[test]
    fn absval_join_laws(a in absval_strategy(), b in absval_strategy()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&a), a.clone());
        prop_assert_eq!(AbsVal::bottom().join(&a), a.clone());
        // Join dominates both components.
        prop_assert!(a.be.le(a.join(&b).be));
    }

    #[test]
    fn widening_dominates_be(a in absval_strategy(), arity in 1u32..16) {
        let w = a.widen(arity);
        prop_assert_eq!(w.be, a.be);
        let is_worst = matches!(w.fun, FunVal::Worst { .. });
        prop_assert!(is_worst);
    }
}

// ---- engine monotonicity on random first-order programs ------------------

/// Random single-parameter list-to-list function bodies (over `l` and the
/// helpers), total by construction.
#[derive(Debug, Clone)]
enum Body {
    L,
    Nil,
    SafeCdr(Box<Body>),
    ConsHead(Box<Body>, Box<Body>),
    Rec(Box<Body>),
    IfNull(Box<Body>, Box<Body>),
}

impl Body {
    fn render(&self) -> String {
        match self {
            Body::L => "l".into(),
            Body::Nil => "nil".into(),
            Body::SafeCdr(e) => format!("(safecdr {})", e.render()),
            Body::ConsHead(a, b) => format!("(cons (safecar {}) {})", a.render(), b.render()),
            // Recursion always on a structurally smaller list.
            Body::Rec(e) => format!("(subject (safecdr {}))", e.render()),
            Body::IfNull(t, f) => {
                format!("(if (null l) then {} else {})", t.render(), f.render())
            }
        }
    }
}

fn body_strategy() -> impl Strategy<Value = Body> {
    let leaf = prop_oneof![Just(Body::L), Just(Body::Nil)];
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Body::SafeCdr(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Body::ConsHead(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Body::Rec(Box::new(e))),
            (inner.clone(), inner).prop_map(|(t, f)| Body::IfNull(Box::new(t), Box::new(f))),
        ]
    })
}

fn program_for(b: &Body) -> String {
    format!(
        "letrec
           safecar l = if (null l) then 0 else car l;
           safecdr l = if (null l) then nil else cdr l;
           subject l = {}
         in subject [1]",
        b.render()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Monotonicity: a ⊑ b implies subject(a) ⊑ subject(b).
    #[test]
    fn engine_is_monotone_on_random_programs(body in body_strategy()) {
        let src = program_for(&body);
        let program = parse_program(&src).expect("parse");
        let info = infer_program(&program).expect("infer");
        let d = info.max_spines;
        let points: Vec<Be> = Be::all(d).collect();
        let name = nml_syntax::Symbol::intern("subject");
        let mut results = Vec::new();
        for &p in &points {
            let mut en = Engine::new(&program, &info);
            let r = en
                .run(|en| {
                    let f = en.top_value(name);
                    en.apply(&f, &AbsVal::base(p)).be
                })
                .expect("fixpoint");
            results.push(r);
        }
        for (i, &a) in points.iter().enumerate() {
            for (j, &b) in points.iter().enumerate() {
                if a.le(b) {
                    prop_assert!(
                        results[i].le(results[j]),
                        "not monotone: f({a}) = {} > f({b}) = {} in {}",
                        results[i], results[j], body.render()
                    );
                }
            }
        }
    }

    /// Differential: the symbolic engine matches the exhaustive tabulated
    /// reference at every domain point on random first-order programs.
    #[test]
    fn engine_matches_reference_on_random_programs(body in body_strategy()) {
        let src = program_for(&body);
        let program = parse_program(&src).expect("parse");
        let info = infer_program(&program).expect("infer");
        let tables = tabulate_program(&program, &info).expect("first-order");
        let name = nml_syntax::Symbol::intern("subject");
        let table = &tables[&name];
        for (tuple, want) in &table.rows {
            let mut en = Engine::new(&program, &info);
            let got = en
                .run(|en| {
                    let f = en.top_value(name);
                    en.apply(&f, &AbsVal::base(tuple[0])).be
                })
                .expect("fixpoint");
            prop_assert_eq!(
                got, *want,
                "engine and reference disagree at {:?} for {}",
                tuple, body.render()
            );
        }
    }
}

// ---- two-parameter differential testing ----------------------------------

#[derive(Debug, Clone)]
enum Body2 {
    A,
    B,
    Nil,
    SafeCdr(Box<Body2>),
    ConsHead(Box<Body2>, Box<Body2>),
    RecOnA(Box<Body2>),
    IfNullA(Box<Body2>, Box<Body2>),
}

impl Body2 {
    fn render(&self) -> String {
        match self {
            Body2::A => "a".into(),
            Body2::B => "b".into(),
            Body2::Nil => "nil".into(),
            Body2::SafeCdr(e) => format!("(safecdr {})", e.render()),
            Body2::ConsHead(x, y) => {
                format!("(cons (safecar {}) {})", x.render(), y.render())
            }
            Body2::RecOnA(e) => {
                format!("(if (null a) then {} else (subject (cdr a) b))", e.render())
            }
            Body2::IfNullA(t, f) => {
                format!("(if (null a) then {} else {})", t.render(), f.render())
            }
        }
    }
}

fn body2_strategy() -> impl Strategy<Value = Body2> {
    let leaf = prop_oneof![Just(Body2::A), Just(Body2::B), Just(Body2::Nil)];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Body2::SafeCdr(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Body2::ConsHead(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|e| Body2::RecOnA(Box::new(e))),
            (inner.clone(), inner).prop_map(|(t, f)| Body2::IfNullA(Box::new(t), Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two-parameter random programs: the symbolic engine agrees with the
    /// tabulated reference on the full (d+2)² argument grid.
    #[test]
    fn engine_matches_reference_on_two_param_programs(body in body2_strategy()) {
        let src = format!(
            "letrec
               safecar l = if (null l) then 0 else car l;
               safecdr l = if (null l) then nil else cdr l;
               subject a b = {}
             in subject [1] [2]",
            body.render()
        );
        let program = parse_program(&src).expect("parse");
        let info = infer_program(&program).expect("infer");
        let tables = tabulate_program(&program, &info).expect("first-order");
        let name = nml_syntax::Symbol::intern("subject");
        let table = &tables[&name];
        for (tuple, want) in &table.rows {
            let mut en = Engine::new(&program, &info);
            let args: Vec<AbsVal> = tuple.iter().map(|&b| AbsVal::base(b)).collect();
            let got = en
                .run(|en| {
                    let f = en.top_value(name);
                    en.apply_n(&f, &args).be
                })
                .expect("fixpoint");
            prop_assert_eq!(
                got, *want,
                "disagree at {:?} for {}",
                tuple, body.render()
            );
        }
    }
}
