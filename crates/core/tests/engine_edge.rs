//! Edge cases of the abstract engine: joined function values flowing
//! into applications, top-level value bindings, deeply curried functions,
//! shadowing, and the behaviour ordering of worst-case values.

use nml_escape::{
    analyze_source, global_escape, worst_value, AbsVal, Be, Engine, EscapeError, FunVal,
};
use nml_syntax::{parse_program, Symbol};
use nml_types::{infer_program, Ty};

fn with_engine<T: Eq + Clone>(src: &str, f: impl FnMut(&mut Engine<'_>) -> T) -> T {
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    let mut en = Engine::new(&p, &info);
    en.run(f).expect("fixpoint")
}

#[test]
fn joined_functions_apply_pointwise() {
    // pick returns one of two different functions; applying the join must
    // cover both behaviours.
    let src = "letrec
      keep l = l;
      void l = nil;
      pick b = if b then keep else void
    in 0";
    let be = with_engine(src, |en| {
        let pick = en.top_value(Symbol::intern("pick"));
        let joined = en.apply(&pick, &AbsVal::bottom());
        // The joined function applied to an interesting list: keep's
        // behaviour (identity) must dominate.
        en.apply(&joined, &AbsVal::base(Be::escaping(1))).be
    });
    assert_eq!(
        be,
        Be::escaping(1),
        "the escaping branch dominates the join"
    );
}

#[test]
fn top_level_value_bindings_participate() {
    // k is a list-valued binding; f returns it. Nothing interesting is
    // bound in k, so f's parameter does not escape.
    let a = analyze_source(
        "letrec k = cons 1 nil;
                f x = k
         in f 9",
    )
    .expect("analysis");
    assert_eq!(a.summary("f").unwrap().param(0).verdict, Be::bottom());
}

#[test]
fn deeply_curried_functions_thread_escapes() {
    let a = analyze_source(
        "letrec f a b c d e = cons a (cons c nil)
         in f 1 2 3 4 5",
    )
    .expect("analysis");
    let s = a.summary("f").unwrap();
    assert!(s.param(0).escapes(), "a escapes");
    assert!(!s.param(1).escapes(), "b does not");
    assert!(s.param(2).escapes(), "c escapes");
    assert!(!s.param(3).escapes());
    assert!(!s.param(4).escapes());
}

#[test]
fn shadowed_parameters_are_distinct() {
    // The inner lambda's x shadows f's x: returning the inner x must not
    // make f's x escape.
    let a = analyze_source(
        "letrec f x = (lambda(x). x) 0
         in f 1",
    )
    .expect("analysis");
    assert_eq!(a.summary("f").unwrap().param(0).verdict, Be::bottom());
}

#[test]
fn worst_value_dominates_each_program_function() {
    // For every unary int-list function in this program, W's result must
    // dominate the function's own on the same argument — W is the top of
    // the behaviour order the global test relies on.
    let src = "letrec
      keep l = l;
      rest l = if (null l) then nil else cdr l;
      rebuild l = if (null l) then nil else cons (car l) (rebuild (cdr l));
      void l = nil
    in 0";
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    for f in ["keep", "rest", "rebuild", "void"] {
        for be in Be::all(1) {
            let mut en = Engine::new(&p, &info);
            let got = en
                .run(|en| {
                    let fv = en.top_value(Symbol::intern(f));
                    en.apply(&fv, &AbsVal::base(be)).be
                })
                .expect("fixpoint");
            let w = worst_value(&Ty::fun(Ty::list(Ty::Int), Ty::list(Ty::Int)), Be::bottom());
            let mut en2 = Engine::new(&p, &info);
            let worst = en2
                .run(|en| en.apply(&w, &AbsVal::base(be)).be)
                .expect("fixpoint");
            assert!(
                got.le(worst),
                "{f}({be}) = {got} not dominated by W({be}) = {worst}"
            );
        }
    }
}

#[test]
fn argument_order_does_not_confuse_the_memo() {
    // Same function queried with swapped interesting positions: distinct
    // memo keys, distinct correct answers, in one shared engine.
    let src = "letrec second a b = b in 0";
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    let mut en = Engine::new(&p, &info);
    let s = global_escape(&mut en, Symbol::intern("second")).expect("test");
    assert!(!s.param(0).escapes());
    assert!(s.param(1).escapes());
}

#[test]
fn unknown_function_error_displays() {
    let e = EscapeError::UnknownFunction {
        name: "ghost".into(),
    };
    assert_eq!(e.to_string(), "`ghost` is not a top-level function");
    let d = EscapeError::FixpointDiverged { passes: 3 };
    assert!(d.to_string().contains("3 passes"));
}

#[test]
fn funval_display_shapes() {
    assert_eq!(FunVal::Err.to_string(), "err");
    assert_eq!(
        FunVal::Worst {
            remaining: 2,
            acc: Be::escaping(1)
        }
        .to_string(),
        "W[2,<1,1>]"
    );
    assert_eq!(FunVal::Car { s: 2 }.to_string(), "car^2");
}

#[test]
fn summaries_render_human_readably() {
    let a = analyze_source(
        "letrec append x y = if (null x) then y
                             else cons (car x) (append (cdr x) y)
         in append [1] [2]",
    )
    .expect("analysis");
    let text = a.summary("append").unwrap().to_string();
    assert!(text.contains("append:"), "{text}");
    assert!(
        text.contains("param 1: int list (s=1): G = <1,0>"),
        "{text}"
    );
    assert!(
        text.contains("param 2: int list (s=1): G = <1,1>"),
        "{text}"
    );
}

#[test]
fn mutual_recursion_converges_with_correct_verdicts() {
    // Mutually recursive spine walkers.
    let a = analyze_source(
        "letrec evens l = if (null l) then nil
                          else cons (car l) (odds (cdr l));
                odds l = if (null l) then nil
                         else evens (cdr l)
         in evens [1, 2, 3, 4]",
    )
    .expect("analysis");
    // Both rebuild fresh spines; only elements escape.
    assert_eq!(
        a.summary("evens").unwrap().param(0).verdict,
        Be::escaping(0)
    );
    assert_eq!(a.summary("odds").unwrap().param(0).verdict, Be::escaping(0));
}

#[test]
fn accumulating_closure_chain_converges() {
    // Build a chain of closures over list values; the engine must
    // converge and report the capture.
    let src = "letrec
      addk k = lambda(l). cons k l;
      applyall l = (addk 1) ((addk 2) l)
    in 0";
    let a = analyze_source(src).expect("analysis");
    let s = a.summary("applyall").unwrap();
    assert_eq!(
        s.param(0).verdict,
        Be::escaping(1),
        "l flows through both closures"
    );
}

#[test]
fn inner_letrec_slots_are_separated_by_outer_environment() {
    // mk x returns a closure from an inner letrec capturing x. The same
    // letrec node is instantiated under different outer environments; the
    // engine keys its slots by that environment, so querying with an
    // interesting x must not contaminate the boring-x query.
    let src = "letrec mk x = letrec g n = x in g in 0";
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    let mk_name = Symbol::intern("mk");

    let mut en = Engine::new(&p, &info);
    let (hot, cold) = en
        .run(|en| {
            let mk = en.top_value(mk_name);
            let hot_g = en.apply(&mk, &AbsVal::base(Be::escaping(0)));
            let hot = en.apply(&hot_g, &AbsVal::bottom()).be;
            let cold_g = en.apply(&mk, &AbsVal::bottom());
            let cold = en.apply(&cold_g, &AbsVal::bottom()).be;
            (hot, cold)
        })
        .expect("fixpoint");
    assert_eq!(hot, Be::escaping(0), "captured interesting value escapes");
    assert_eq!(cold, Be::bottom(), "boring instantiation stays clean");
}

#[test]
fn widening_fires_and_is_counted_under_tiny_thresholds() {
    // Nest closures beyond the threshold; the stats must show widenings
    // and the analysis must still converge to a sound (possibly
    // imprecise) verdict.
    let src = "letrec
      wrap x = lambda(y). x;
      w3 x = wrap (wrap (wrap x))
    in 0";
    let p = parse_program(src).expect("parse");
    let info = infer_program(&p).expect("infer");
    let mut en = Engine::with_config(
        &p,
        &info,
        nml_escape::EngineConfig {
            widen_depth: 1,
            widen_arity: 8,
            max_passes: 1000,
        },
    );
    let be = en
        .run(|en| {
            let f = en.top_value(Symbol::intern("w3"));
            en.apply(&f, &AbsVal::base(Be::escaping(0))).be
        })
        .expect("fixpoint");
    assert!(en.stats.widenings > 0, "threshold 1 must trigger widening");
    // The captured value is inside the result closure: must report escape.
    assert_eq!(be, Be::escaping(0));
}

#[test]
fn assoc_and_unzip_tuple_workloads_have_expected_verdicts() {
    use nml_escape_analysis_shim::*;
    mod nml_escape_analysis_shim {
        // engine_edge tests live in nml-escape; re-derive the corpus
        // sources inline to avoid a cyclic dev-dependency.
        pub const ASSOC: &str = "letrec
          lookup k t = if (null t) then 0
                       else if fst (car t) = k then snd (car t)
                       else lookup k (cdr t);
          extend k v t = cons (k, v) t
        in lookup 2 (extend 2 20 (extend 1 10 nil))";
    }
    let a = analyze_source(ASSOC).expect("analysis");
    let lookup = a.summary("lookup").unwrap();
    // lookup returns an element of a tuple element: the table's spine
    // does not escape.
    assert_eq!(lookup.param(1).retained_spines(), 1, "{lookup}");
    let extend = a.summary("extend").unwrap();
    // extend returns cons (k,v) t: the whole table escapes.
    assert_eq!(extend.param(2).retained_spines(), 0, "{extend}");
}
