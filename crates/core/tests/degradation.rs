//! Budget-exhaustion degradation is *sound*: whenever the governor trips
//! and a function falls back to the worst-case summary `W^τ`, the
//! degraded verdicts must over-approximate the reference interpreter's
//! exact tables (paper §5) — never under-approximate them.

use nml_escape::{
    analyze_source_governed, tabulate_program, Analysis, Be, Budget, DegradeReason, EngineConfig,
    EscapeError, PolyMode, Resource,
};
use std::time::Duration;

/// Every per-parameter verdict in `analysis` must be ⊒ the exact verdict
/// from the reference tabulation of the same (elaborated) program.
fn assert_sound_vs_reference(analysis: &Analysis) {
    let tables =
        tabulate_program(&analysis.program, &analysis.info).expect("first-order reference");
    for (name, summary) in &analysis.summaries {
        for (i, p) in summary.params.iter().enumerate() {
            let exact =
                nml_escape::reference_global(&tables, &analysis.info, *name, i).expect("G(f,i)");
            assert!(
                exact.le(p.verdict),
                "{name} param {i}: degraded verdict {:?} under-approximates exact {exact:?}",
                p.verdict
            );
        }
    }
}

/// A degraded function's summary must literally be `W^τ`: every parameter
/// fully escaping.
fn assert_worst_case(analysis: &Analysis, name: &str) {
    let summary = analysis.summary(name).expect("summary exists");
    for p in &summary.params {
        assert_eq!(
            p.verdict,
            Be::escaping(p.spines),
            "{name} is not worst-case"
        );
    }
    assert!(
        analysis.is_degraded(name),
        "{name} not recorded as degraded"
    );
}

/// Deep spines (a triple-nested flatten) with a tiny widening threshold:
/// widening fires, the node budget trips, and the degraded result is
/// still an over-approximation of the exact tables.
#[test]
fn deep_spine_node_budget_degrades_soundly() {
    let src = "letrec
      append x y = if (null x) then y
                   else cons (car x) (append (cdr x) y);
      flat ll = if (null ll) then nil
                else append (car ll) (flat (cdr ll));
      flat2 lll = if (null lll) then nil
                  else append (flat (car lll)) (flat2 (cdr lll))
    in flat2 [[[1, 2], [3]], [[4]]]";
    let config = EngineConfig {
        max_passes: 10_000,
        widen_depth: 2,
        widen_arity: 8,
    };
    let budget = Budget::tight(u32::MAX, 8, None);
    let analysis = analyze_source_governed(src, PolyMode::SimplestInstance, config, budget)
        .expect("analysis is total under a budget");
    assert!(
        !analysis.fully_precise(),
        "an 8-node budget must trip on this program: {:?}",
        analysis.stats
    );
    assert!(analysis.degradations.iter().all(|d| matches!(
        &d.reason,
        DegradeReason::Engine(EscapeError::BudgetExhausted {
            resource: Resource::Nodes,
            ..
        })
    )));
    for d in &analysis.degradations {
        assert_worst_case(&analysis, d.function.as_str());
    }
    assert_sound_vs_reference(&analysis);
}

/// Mutual recursion under a one-pass budget: the first fixpoint query
/// needs at least two passes, so the governor trips on `Passes`; the
/// worst-case fallback stays above the exact tables.
#[test]
fn mutual_recursion_pass_budget_degrades_soundly() {
    let src = "letrec
      ping l = if (null l) then nil else cons (car l) (pong (cdr l));
      pong l = if (null l) then nil else cons (car l) (ping (cdr l))
    in ping [1, 2, 3]";
    let budget = Budget::tight(1, u64::MAX, None);
    let analysis = analyze_source_governed(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        budget,
    )
    .expect("analysis is total under a budget");
    assert!(!analysis.fully_precise());
    // The governor is sticky: once the pass budget is gone, *every*
    // remaining function degrades rather than silently re-spending.
    assert!(analysis.is_degraded("ping") || analysis.is_degraded("pong"));
    for d in &analysis.degradations {
        assert!(
            matches!(
                &d.reason,
                DegradeReason::Engine(EscapeError::BudgetExhausted { .. })
            ),
            "{d}"
        );
        assert_worst_case(&analysis, d.function.as_str());
    }
    assert_sound_vs_reference(&analysis);
}

/// An already-expired deadline degrades everything immediately — and the
/// result is still a sound table, not an error.
#[test]
fn expired_deadline_degrades_everything() {
    let src = "letrec
      len l = if (null l) then 0 else 1 + len (cdr l);
      idl l = if (null l) then nil else cons (car l) (idl (cdr l))
    in len (idl [1, 2])";
    let budget = Budget::tight(u32::MAX, u64::MAX, Some(Duration::ZERO));
    let analysis = analyze_source_governed(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        budget,
    )
    .expect("analysis is total under a deadline");
    assert!(analysis.is_degraded("len"));
    assert!(analysis.is_degraded("idl"));
    assert_sound_vs_reference(&analysis);
    // The rendered analysis carries one warning line per degradation.
    let shown = analysis.to_string();
    assert!(shown.contains("warning:"), "{shown}");
}

/// The same program under an unlimited budget is fully precise — the
/// governor's mere presence must not cost precision.
#[test]
fn unlimited_budget_is_fully_precise() {
    let src = "letrec
      take n l = if n = 0 then nil
                 else if (null l) then nil
                 else cons (car l) (take (n - 1) (cdr l))
    in take 2 [1, 2, 3]";
    let analysis = analyze_source_governed(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        Budget::unlimited(),
    )
    .expect("analysis");
    assert!(analysis.fully_precise());
    assert!(analysis.degradations.is_empty());
    // take retains its list parameter's top spine (it rebuilds the spine).
    let summary = analysis.summary("take").expect("take");
    assert!(summary.param(1).retained_spines() >= 1);
}
