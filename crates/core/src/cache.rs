//! Persistent on-disk summary cache for the SCC-modular scheduler.
//!
//! Each SCC of the call graph gets a 64-bit FNV-1a content hash over
//!
//! 1. a format/salt line covering the cache version and the
//!    [`EngineConfig`](crate::engine::EngineConfig) knobs that can change
//!    verdicts (widening depth/arity, pass cap);
//! 2. every member binding: its name, its pretty-printed right-hand side,
//!    and its inferred signature;
//! 3. the hashes of every dependency SCC, sorted.
//!
//! Point 3 makes the key *transitive*: editing any function invalidates
//! exactly the SCCs that can observe the edit, and nothing else. The cache
//! stores only the per-parameter escape verdicts — the cheap, stable part
//! of an [`EscapeSummary`]; parameter types are reconstructed from the
//! live [`TypeInfo`](nml_types::TypeInfo) at load, which is safe because a
//! hash hit implies the member signatures are unchanged.
//!
//! Degraded (worst-case fallback) summaries are **never** stored: they are
//! budget-dependent accidents, not facts about the program, and caching
//! one would freeze an avoidable imprecision across runs.
//!
//! ## Hardened format (v2), lattice verdicts (v3)
//!
//! The file is line-oriented UTF-8, and since v2 it does not trust the
//! bytes it finds on disk:
//!
//! - the header carries a **format version** (`nml-summary-cache v3`);
//!   any other version — including a well-formed v2 file — starts cold
//!   rather than misparse;
//! - since v3 every per-parameter verdict carries its escape-lattice
//!   code letter ([`EscapeState::code`]): `esc:spines:letter`, e.g.
//!   `1:0:R`. The letter is redundant with the escape bit today (cached
//!   verdicts only distinguish no-escape from return-escape) and is
//!   **verified on parse** — a mismatch drops the entry like any other
//!   corruption, and the letter reserves room for finer-grained states
//!   without another format break;
//! - every entry's `end` record carries a **per-entry FNV checksum** over
//!   the entry's canonical text, so a bit flip inside one entry drops
//!   exactly that entry;
//! - the final `file` record carries a **whole-file FNV checksum** over
//!   everything above it, catching truncation and splices;
//! - recovery **salvages**: corrupt or unverifiable entries are dropped
//!   and counted, intact entries load normally, and the damage is
//!   reported as a warning through the schedule report — never a failed
//!   analysis, never a discarded-whole cache for one bad entry;
//! - [`SummaryCache::save`] writes to a sibling temp file and renames it
//!   into place, so a crash mid-save leaves the previous cache intact.
//!
//! ## Concurrent writers (v2 + locking)
//!
//! A persistent server (or several `nmlc` processes pointed at the same
//! `--summary-cache`) can save concurrently. `save` therefore:
//!
//! 1. takes an **advisory exclusive lock** on a sibling `<path>.lock`
//!    file (the lock file, not the cache file, because the atomic rename
//!    replaces the cache's inode and would strand a lock held on it);
//! 2. **merges on save**: re-reads the on-disk cache under the lock and
//!    overlays this process's entries, so writers with disjoint entries
//!    lose nothing — last-writer-wins applies per entry, not per file.
//!    Stale entries are harmless: keys are content hashes, so an
//!    outdated entry can never be *hit* incorrectly, only ignored;
//! 3. falls back to the plain atomic rename (still torn-file-safe, just
//!    last-writer-wins per file) on filesystems without lock support.

use crate::be::Be;
use crate::escape_lattice::EscapeState;
use crate::global::{EscapeSummary, ParamEscape};
use nml_syntax::Symbol;
use nml_types::Ty;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// FNV-1a, 64-bit. Hand-rolled so the key format is fully pinned by this
/// crate (no dependency on the std hasher's unspecified algorithm).
#[derive(Debug, Clone)]
pub struct ContentHash(u64);

impl ContentHash {
    /// The FNV-1a offset basis.
    pub fn new() -> ContentHash {
        ContentHash(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a string and a separator (so adjacent fields cannot collide
    /// by concatenation).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// The final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for ContentHash {
    fn default() -> Self {
        ContentHash::new()
    }
}

/// The cached escape verdicts of one function: `(escapes, spines)` per
/// parameter, in parameter order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedFn {
    /// The function's name.
    pub name: String,
    /// Per-parameter verdicts as `(escapes, spines)` pairs.
    pub verdicts: Vec<(bool, u32)>,
}

/// The cached entry for one SCC: the verdicts of its function members.
/// SCCs whose members are all non-functions store an empty list — the
/// entry still short-circuits re-analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CachedScc {
    /// Function members, in member order.
    pub fns: Vec<CachedFn>,
}

impl CachedScc {
    /// Rebuilds the summary of `name` from the cached verdicts and the
    /// live signature. Returns `None` when the entry does not cover the
    /// function or its arity changed (treated as a miss by the caller).
    pub fn summary_for(&self, name: Symbol, sig: &Ty) -> Option<EscapeSummary> {
        let cached = self.fns.iter().find(|f| f.name == name.as_str())?;
        let (param_tys, result_ty) = sig.uncurry();
        if cached.verdicts.len() != param_tys.len() {
            return None;
        }
        let params = param_tys
            .iter()
            .zip(&cached.verdicts)
            .enumerate()
            .map(|(i, (ty, &(escapes, spines)))| ParamEscape {
                index: i,
                ty: ty.clone(),
                spines: ty.spines(),
                verdict: if escapes {
                    Be::escaping(spines)
                } else {
                    Be::bottom()
                },
            })
            .collect();
        Some(EscapeSummary {
            name,
            param_tys,
            result_ty,
            params,
        })
    }
}

/// An in-memory view of one on-disk summary cache file.
#[derive(Debug, Clone, Default)]
pub struct SummaryCache {
    entries: BTreeMap<u64, CachedScc>,
}

const HEADER: &str = "nml-summary-cache v3";

/// The lattice code letter a cached `(escapes, _)` verdict must carry:
/// an escaping parameter reaches its caller's result (`R`), a
/// non-escaping one stays at the lattice bottom (`N`).
fn verdict_code(escapes: bool) -> char {
    if escapes {
        EscapeState::ReturnEscape.code()
    } else {
        EscapeState::NoEscape.code()
    }
}

/// What a salvaging parse recovered from an on-disk cache file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Salvage {
    /// Entries that parsed and passed their checksums.
    pub kept: usize,
    /// Entries dropped as corrupt, truncated, or checksum-failing.
    pub dropped: usize,
    /// Whether the whole-file checksum trailer was present and matched.
    pub file_ok: bool,
}

/// An advisory exclusive lock guarding the cache write path, held on a
/// sibling `<path>.lock` file and released on drop. Acquisition is
/// best-effort: `None` means the filesystem refused, and the caller
/// degrades to an unmerged (but still atomic) save.
struct CacheLock {
    file: std::fs::File,
}

impl CacheLock {
    fn lock_path(cache_path: &Path) -> std::path::PathBuf {
        let mut os = cache_path.as_os_str().to_owned();
        os.push(".lock");
        std::path::PathBuf::from(os)
    }

    fn acquire(cache_path: &Path) -> Option<CacheLock> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(Self::lock_path(cache_path))
            .ok()?;
        // Blocks until the current writer finishes; cache saves are
        // small, so contention is momentary.
        file.lock().ok()?;
        Some(CacheLock { file })
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        // Best-effort: the OS also releases the lock when the
        // descriptor closes.
        let _ = self.file.unlock();
    }
}

/// FNV-1a digest of a string (the cache's entry and file checksums).
fn checksum(s: &str) -> u64 {
    let mut h = ContentHash::new();
    h.write(s.as_bytes());
    h.finish()
}

/// The canonical text of one entry (everything its `end` checksum
/// covers): the `scc` line plus its `fn` lines.
fn entry_body(hash: u64, scc: &CachedScc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scc {hash:016x}");
    for f in &scc.fns {
        let _ = write!(out, "fn {} {}", f.name, f.verdicts.len());
        for (escapes, spines) in &f.verdicts {
            let _ = write!(
                out,
                " {}:{}:{}",
                u8::from(*escapes),
                spines,
                verdict_code(*escapes)
            );
        }
        out.push('\n');
    }
    out
}

fn parse_fn_line<'a>(mut parts: impl Iterator<Item = &'a str>) -> Result<CachedFn, String> {
    let name = parts.next().ok_or("fn missing name")?.to_string();
    let arity: usize = parts
        .next()
        .ok_or("fn missing arity")?
        .parse()
        .map_err(|e| format!("bad arity: {e}"))?;
    let mut verdicts = Vec::with_capacity(arity.min(64));
    for _ in 0..arity {
        let v = parts.next().ok_or("fn missing verdict")?;
        let mut fields = v.split(':');
        let esc = fields.next().ok_or("bad verdict")?;
        let spines = fields.next().ok_or("bad verdict")?;
        let code = fields.next().ok_or("verdict missing lattice code")?;
        if fields.next().is_some() {
            return Err("bad verdict".to_string());
        }
        let escapes = match esc {
            "1" => true,
            "0" => false,
            _ => return Err("bad escape flag".to_string()),
        };
        let spines: u32 = spines.parse().map_err(|e| format!("bad spines: {e}"))?;
        // The lattice letter must agree with the escape bit and name a
        // real state; anything else is corruption (or a future format
        // this version does not understand).
        let state = code
            .chars()
            .next()
            .filter(|_| code.chars().count() == 1)
            .and_then(EscapeState::from_code)
            .ok_or("bad lattice code")?;
        if state.code() != verdict_code(escapes) {
            return Err(format!(
                "lattice code `{code}` contradicts escape bit `{esc}`"
            ));
        }
        verdicts.push((escapes, spines));
    }
    Ok(CachedFn { name, verdicts })
}

impl SummaryCache {
    /// Loads the cache at `path`. A missing file is an empty cache; a
    /// damaged one salvages every intact entry and reports the damage as
    /// a warning string (the analysis itself must never fail on cache
    /// trouble, and one flipped bit must never discard the whole cache).
    pub fn load(path: &Path) -> (SummaryCache, Option<String>) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (SummaryCache::default(), None);
            }
            Err(e) => {
                return (
                    SummaryCache::default(),
                    Some(format!("cannot read {}: {e}", path.display())),
                );
            }
        };
        match Self::parse(&text) {
            Ok((cache, s)) if s.dropped == 0 && s.file_ok => (cache, None),
            Ok((cache, s)) => {
                let mut msg = format!(
                    "cache {}: salvaged {} of {} entries",
                    path.display(),
                    s.kept,
                    s.kept + s.dropped
                );
                if !s.file_ok {
                    msg.push_str(" (file checksum mismatch or truncation)");
                }
                (cache, Some(msg))
            }
            Err(msg) => (
                SummaryCache::default(),
                Some(format!("ignoring cache {}: {msg}", path.display())),
            ),
        }
    }

    /// Salvaging parse: entries that fail to parse or fail their `end`
    /// checksum are dropped individually; intact entries load.
    ///
    /// # Errors
    ///
    /// Only a missing or mismatched header (wrong format version) — then
    /// nothing in the file can be trusted to follow this format.
    fn parse(text: &str) -> Result<(SummaryCache, Salvage), String> {
        // Split off and verify the whole-file checksum trailer. The
        // trailer covers every byte above it, header included.
        let (body, file_ok) = match text.rfind("\nfile ") {
            Some(pos) => {
                let prefix = &text[..pos + 1];
                let ok = text[pos + 1..]
                    .trim_end()
                    .strip_prefix("file ")
                    .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
                    .is_some_and(|want| want == checksum(prefix));
                (prefix, ok)
            }
            None => (text, false),
        };
        let mut lines = body.lines();
        match lines.next() {
            Some(h) if h == HEADER => {}
            Some(h) if h.starts_with("nml-summary-cache ") => {
                return Err(format!(
                    "format version mismatch (`{h}`, expected `{HEADER}`)"
                ));
            }
            _ => return Err("bad header".to_string()),
        }
        let mut entries = BTreeMap::new();
        let mut salvage = Salvage {
            file_ok,
            ..Salvage::default()
        };
        // The entry being accumulated; `None` + `skipping` means we are
        // discarding lines until the next `scc` record.
        let mut current: Option<(u64, CachedScc)> = None;
        let mut skipping = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("scc") => {
                    if current.take().is_some() {
                        // Previous entry never reached its `end`.
                        salvage.dropped += 1;
                    }
                    skipping = false;
                    match parts
                        .next()
                        .ok_or(())
                        .and_then(|hex| u64::from_str_radix(hex, 16).map_err(|_| ()))
                    {
                        Ok(hash) => current = Some((hash, CachedScc::default())),
                        Err(()) => {
                            salvage.dropped += 1;
                            skipping = true;
                        }
                    }
                }
                Some("fn") if skipping => {}
                Some("fn") => match (current.as_mut(), parse_fn_line(parts)) {
                    (Some((_, scc)), Ok(f)) => scc.fns.push(f),
                    (got, _) => {
                        if got.is_some() {
                            current = None;
                            salvage.dropped += 1;
                        }
                        skipping = true;
                    }
                },
                Some("end") => {
                    if skipping {
                        skipping = false;
                        continue;
                    }
                    match current.take() {
                        Some((hash, scc)) => {
                            let want = parts.next().and_then(|h| u64::from_str_radix(h, 16).ok());
                            if want == Some(checksum(&entry_body(hash, &scc))) {
                                entries.insert(hash, scc);
                                salvage.kept += 1;
                            } else {
                                salvage.dropped += 1;
                            }
                        }
                        None => salvage.dropped += 1,
                    }
                }
                Some(_) => {
                    if current.take().is_some() {
                        salvage.dropped += 1;
                    }
                    skipping = true;
                }
                None => {}
            }
        }
        if current.is_some() {
            salvage.dropped += 1;
        }
        Ok((SummaryCache { entries }, salvage))
    }

    /// Looks up the entry for one SCC hash.
    pub fn get(&self, hash: u64) -> Option<&CachedScc> {
        self.entries.get(&hash)
    }

    /// Inserts or replaces the entry for one SCC hash.
    pub fn insert(&mut self, hash: u64, entry: CachedScc) {
        self.entries.insert(hash, entry);
    }

    /// Number of cached SCC entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the cache to its checksummed text format: each entry's
    /// `end` record carries the entry checksum, and a trailing `file`
    /// record covers the whole text above it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for (hash, scc) in &self.entries {
            let body = entry_body(*hash, scc);
            let sum = checksum(&body);
            out.push_str(&body);
            let _ = writeln!(out, "end {sum:016x}");
        }
        let file_sum = checksum(&out);
        let _ = writeln!(out, "file {file_sum:016x}");
        out
    }

    /// Writes the cache to `path`, creating parent directories as needed.
    ///
    /// The write is concurrency-safe on two levels. It is **atomic**:
    /// the text goes to a sibling temp file first and is renamed into
    /// place, so a crash mid-save leaves the previous cache intact and
    /// concurrent readers never see a torn file. And it is **merging**:
    /// under an advisory exclusive lock on `<path>.lock`, the on-disk
    /// entries are re-read and this cache's entries overlaid, so
    /// concurrent writers interleave per entry instead of clobbering
    /// each other's files wholesale. When the lock cannot be taken
    /// (e.g. an exotic filesystem), the save degrades to the plain
    /// atomic rename rather than failing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any I/O failure (the caller
    /// reports it and moves on; a failed save never fails the analysis).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let lock = CacheLock::acquire(path);
        let text = if lock.is_some() {
            // Exclusive: nobody else is between their read and rename,
            // so read-merge-rename is a consistent update.
            let (disk, _) = SummaryCache::load(path);
            let mut merged = disk;
            for (hash, scc) in &self.entries {
                merged.entries.insert(*hash, scc.clone());
            }
            merged.render()
        } else {
            self.render()
        };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot rename {} into place: {e}", tmp.display())
        })
        // `lock` drops here, releasing the advisory lock after the
        // rename is visible.
    }
}

/// Converts an [`EscapeSummary`] into its cacheable verdict form.
pub fn cached_fn_of(summary: &EscapeSummary) -> CachedFn {
    CachedFn {
        name: summary.name.as_str().to_string(),
        verdicts: summary
            .params
            .iter()
            .map(|p| (p.verdict.escapes(), p.verdict.spines()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cache() -> SummaryCache {
        let mut cache = SummaryCache::default();
        cache.insert(
            0xdead_beef,
            CachedScc {
                fns: vec![CachedFn {
                    name: "append".to_string(),
                    verdicts: vec![(true, 0), (true, 1)],
                }],
            },
        );
        cache.insert(0x42, CachedScc { fns: vec![] });
        cache
    }

    #[test]
    fn round_trips_through_text() {
        let cache = sample_cache();
        let text = cache.render();
        let (parsed, s) = SummaryCache::parse(&text).expect("parse");
        assert_eq!(parsed.get(0xdead_beef), cache.get(0xdead_beef));
        assert_eq!(parsed.get(0x42), cache.get(0x42));
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            s,
            Salvage {
                kept: 2,
                dropped: 0,
                file_ok: true
            }
        );
    }

    #[test]
    fn wrong_format_version_starts_cold() {
        assert!(SummaryCache::parse("garbage").is_err());
        let v1 = "nml-summary-cache v1\nscc 002a\nend\n";
        let err = SummaryCache::parse(v1).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
    }

    #[test]
    fn well_formed_v2_file_is_rejected_cleanly() {
        // A byte-exact v2 cache (two-field verdicts, v2 header, correct
        // v2 checksums). A v3 reader must refuse it at the header — a
        // version mismatch, not a parse error or a partial salvage.
        let entry = "scc 00000000deadbeef\nfn append 2 1:0 1:1\n";
        let entry_sum = checksum(entry);
        let mut v2 = format!("nml-summary-cache v2\n{entry}end {entry_sum:016x}\n");
        let file_sum = checksum(&v2);
        let _ = writeln!(v2, "file {file_sum:016x}");
        let err = SummaryCache::parse(&v2).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(err.contains("v2"), "{err}");
    }

    #[test]
    fn contradictory_lattice_code_drops_the_entry() {
        let cache = sample_cache();
        // `1:0:N` claims escaping with the no-escape lattice letter.
        let text = cache.render().replace("1:0:R", "1:0:N");
        let (parsed, s) = SummaryCache::parse(&text).unwrap();
        assert!(parsed.get(0xdead_beef).is_none(), "lying entry dropped");
        assert!(parsed.get(0x42).is_some(), "honest entry salvaged");
        assert_eq!(s.dropped, 1);
        // An unknown letter is equally fatal for the entry.
        let text = cache.render().replace("1:0:R", "1:0:Z");
        let (parsed, _) = SummaryCache::parse(&text).unwrap();
        assert!(parsed.get(0xdead_beef).is_none());
    }

    #[test]
    fn corrupt_entries_are_dropped_individually() {
        // No trailer at all: nothing verifiable, but nothing to drop.
        let (cache, s) = SummaryCache::parse(HEADER).unwrap();
        assert!(cache.is_empty());
        assert!(!s.file_ok);

        // A bad scc hash poisons only that entry.
        let mut good = SummaryCache::default();
        good.insert(
            0x1f,
            CachedScc {
                fns: vec![CachedFn {
                    name: "f".to_string(),
                    verdicts: vec![(false, 2)],
                }],
            },
        );
        let good_text = good.render();
        let good_entry: String = good_text
            .lines()
            .filter(|l| !l.starts_with("file ") && *l != HEADER)
            .map(|l| format!("{l}\n"))
            .collect();
        let text = format!("{HEADER}\nscc zz\nfn g 1 1:0:R\nend\n{good_entry}");
        let (cache, s) = SummaryCache::parse(&text).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(0x1f).is_some());
        assert_eq!(s.kept, 1);
        assert_eq!(s.dropped, 1);

        // An entry with no checksum on its `end` fails verification.
        let text = format!("{HEADER}\nscc 000000000000001f\nfn f 1 0:2:N\nend\n");
        let (cache, s) = SummaryCache::parse(&text).unwrap();
        assert!(cache.is_empty());
        assert_eq!(s.dropped, 1);

        // Truncation mid-entry drops the tail entry only.
        let truncated: String = good_text
            .lines()
            .take_while(|l| !l.starts_with("end"))
            .map(|l| format!("{l}\n"))
            .collect();
        let (cache, s) = SummaryCache::parse(&truncated).unwrap();
        assert!(cache.is_empty());
        assert_eq!(s.dropped, 1);
        assert!(!s.file_ok);
    }

    #[test]
    fn bit_flip_in_one_entry_salvages_the_rest() {
        let cache = sample_cache();
        let text = cache.render();
        // Flip the verdict inside the 0xdeadbeef entry: "1:0" -> "1:9".
        let corrupted = text.replace("fn append 2 1:0:R 1:1:R", "fn append 2 1:9:R 1:1:R");
        assert_ne!(text, corrupted, "fixture must actually corrupt a line");
        let (parsed, s) = SummaryCache::parse(&corrupted).unwrap();
        assert!(parsed.get(0xdead_beef).is_none(), "corrupt entry dropped");
        assert!(parsed.get(0x42).is_some(), "intact entry salvaged");
        assert_eq!(s.kept, 1);
        assert_eq!(s.dropped, 1);
        assert!(!s.file_ok, "file checksum notices the flip");
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = ContentHash::new();
        h.write_str("append");
        let a = h.finish();
        let mut h2 = ContentHash::new();
        h2.write_str("append");
        assert_eq!(a, h2.finish());
        let mut h3 = ContentHash::new();
        h3.write_str("appenc");
        assert_ne!(a, h3.finish());
    }

    #[test]
    fn missing_file_is_empty_cache() {
        let (cache, err) = SummaryCache::load(Path::new("/nonexistent/dir/cache.txt"));
        assert!(cache.is_empty());
        assert!(err.is_none());
    }
}
