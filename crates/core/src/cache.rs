//! Persistent on-disk summary cache for the SCC-modular scheduler.
//!
//! Each SCC of the call graph gets a 64-bit FNV-1a content hash over
//!
//! 1. a format/salt line covering the cache version and the
//!    [`EngineConfig`](crate::engine::EngineConfig) knobs that can change
//!    verdicts (widening depth/arity, pass cap);
//! 2. every member binding: its name, its pretty-printed right-hand side,
//!    and its inferred signature;
//! 3. the hashes of every dependency SCC, sorted.
//!
//! Point 3 makes the key *transitive*: editing any function invalidates
//! exactly the SCCs that can observe the edit, and nothing else. The cache
//! stores only the per-parameter escape verdicts — the cheap, stable part
//! of an [`EscapeSummary`]; parameter types are reconstructed from the
//! live [`TypeInfo`](nml_types::TypeInfo) at load, which is safe because a
//! hash hit implies the member signatures are unchanged.
//!
//! Degraded (worst-case fallback) summaries are **never** stored: they are
//! budget-dependent accidents, not facts about the program, and caching
//! one would freeze an avoidable imprecision across runs.
//!
//! The file format is a line-oriented UTF-8 text file; an unreadable or
//! corrupt file degrades to an empty cache with the error reported in the
//! schedule report, never a failed analysis.

use crate::be::Be;
use crate::global::{EscapeSummary, ParamEscape};
use nml_syntax::Symbol;
use nml_types::Ty;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// FNV-1a, 64-bit. Hand-rolled so the key format is fully pinned by this
/// crate (no dependency on the std hasher's unspecified algorithm).
#[derive(Debug, Clone)]
pub struct ContentHash(u64);

impl ContentHash {
    /// The FNV-1a offset basis.
    pub fn new() -> ContentHash {
        ContentHash(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a string and a separator (so adjacent fields cannot collide
    /// by concatenation).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// The final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for ContentHash {
    fn default() -> Self {
        ContentHash::new()
    }
}

/// The cached escape verdicts of one function: `(escapes, spines)` per
/// parameter, in parameter order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedFn {
    /// The function's name.
    pub name: String,
    /// Per-parameter verdicts as `(escapes, spines)` pairs.
    pub verdicts: Vec<(bool, u32)>,
}

/// The cached entry for one SCC: the verdicts of its function members.
/// SCCs whose members are all non-functions store an empty list — the
/// entry still short-circuits re-analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CachedScc {
    /// Function members, in member order.
    pub fns: Vec<CachedFn>,
}

impl CachedScc {
    /// Rebuilds the summary of `name` from the cached verdicts and the
    /// live signature. Returns `None` when the entry does not cover the
    /// function or its arity changed (treated as a miss by the caller).
    pub fn summary_for(&self, name: Symbol, sig: &Ty) -> Option<EscapeSummary> {
        let cached = self.fns.iter().find(|f| f.name == name.as_str())?;
        let (param_tys, result_ty) = sig.uncurry();
        if cached.verdicts.len() != param_tys.len() {
            return None;
        }
        let params = param_tys
            .iter()
            .zip(&cached.verdicts)
            .enumerate()
            .map(|(i, (ty, &(escapes, spines)))| ParamEscape {
                index: i,
                ty: ty.clone(),
                spines: ty.spines(),
                verdict: if escapes {
                    Be::escaping(spines)
                } else {
                    Be::bottom()
                },
            })
            .collect();
        Some(EscapeSummary {
            name,
            param_tys,
            result_ty,
            params,
        })
    }
}

/// An in-memory view of one on-disk summary cache file.
#[derive(Debug, Clone, Default)]
pub struct SummaryCache {
    entries: BTreeMap<u64, CachedScc>,
}

const HEADER: &str = "nml-summary-cache v1";

impl SummaryCache {
    /// Loads the cache at `path`. A missing file is an empty cache; a
    /// corrupt or unreadable one is an empty cache plus an error message
    /// for diagnostics (the analysis itself must never fail on cache
    /// trouble).
    pub fn load(path: &Path) -> (SummaryCache, Option<String>) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (SummaryCache::default(), None);
            }
            Err(e) => {
                return (
                    SummaryCache::default(),
                    Some(format!("cannot read {}: {e}", path.display())),
                );
            }
        };
        match Self::parse(&text) {
            Ok(cache) => (cache, None),
            Err(msg) => (
                SummaryCache::default(),
                Some(format!("ignoring corrupt cache {}: {msg}", path.display())),
            ),
        }
    }

    fn parse(text: &str) -> Result<SummaryCache, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err("bad header".to_string());
        }
        let mut entries = BTreeMap::new();
        let mut current: Option<(u64, CachedScc)> = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("scc") => {
                    if current.is_some() {
                        return Err("scc without end".to_string());
                    }
                    let hex = parts.next().ok_or("scc missing hash")?;
                    let hash =
                        u64::from_str_radix(hex, 16).map_err(|e| format!("bad hash: {e}"))?;
                    current = Some((hash, CachedScc::default()));
                }
                Some("fn") => {
                    let (_, scc) = current.as_mut().ok_or("fn outside scc")?;
                    let name = parts.next().ok_or("fn missing name")?.to_string();
                    let arity: usize = parts
                        .next()
                        .ok_or("fn missing arity")?
                        .parse()
                        .map_err(|e| format!("bad arity: {e}"))?;
                    let mut verdicts = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        let v = parts.next().ok_or("fn missing verdict")?;
                        let (esc, spines) = v.split_once(':').ok_or("bad verdict")?;
                        let escapes = match esc {
                            "1" => true,
                            "0" => false,
                            _ => return Err("bad escape flag".to_string()),
                        };
                        let spines: u32 = spines.parse().map_err(|e| format!("bad spines: {e}"))?;
                        verdicts.push((escapes, spines));
                    }
                    scc.fns.push(CachedFn { name, verdicts });
                }
                Some("end") => {
                    let (hash, scc) = current.take().ok_or("end outside scc")?;
                    entries.insert(hash, scc);
                }
                Some(other) => return Err(format!("unknown record `{other}`")),
                None => {}
            }
        }
        if current.is_some() {
            return Err("truncated file".to_string());
        }
        Ok(SummaryCache { entries })
    }

    /// Looks up the entry for one SCC hash.
    pub fn get(&self, hash: u64) -> Option<&CachedScc> {
        self.entries.get(&hash)
    }

    /// Inserts or replaces the entry for one SCC hash.
    pub fn insert(&mut self, hash: u64, entry: CachedScc) {
        self.entries.insert(hash, entry);
    }

    /// Number of cached SCC entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the cache back to its text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for (hash, scc) in &self.entries {
            let _ = writeln!(out, "scc {hash:016x}");
            for f in &scc.fns {
                let _ = write!(out, "fn {} {}", f.name, f.verdicts.len());
                for (escapes, spines) in &f.verdicts {
                    let _ = write!(out, " {}:{}", u8::from(*escapes), spines);
                }
                out.push('\n');
            }
            out.push_str("end\n");
        }
        out
    }

    /// Writes the cache to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any I/O failure (the caller
    /// reports it and moves on; a failed save never fails the analysis).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, self.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// Converts an [`EscapeSummary`] into its cacheable verdict form.
pub fn cached_fn_of(summary: &EscapeSummary) -> CachedFn {
    CachedFn {
        name: summary.name.as_str().to_string(),
        verdicts: summary
            .params
            .iter()
            .map(|p| (p.verdict.escapes(), p.verdict.spines()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let mut cache = SummaryCache::default();
        cache.insert(
            0xdead_beef,
            CachedScc {
                fns: vec![CachedFn {
                    name: "append".to_string(),
                    verdicts: vec![(true, 0), (true, 1)],
                }],
            },
        );
        cache.insert(0x42, CachedScc { fns: vec![] });
        let text = cache.render();
        let parsed = SummaryCache::parse(&text).expect("parse");
        assert_eq!(parsed.get(0xdead_beef), cache.get(0xdead_beef));
        assert_eq!(parsed.get(0x42), cache.get(0x42));
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn corrupt_text_is_rejected_not_panicking() {
        assert!(SummaryCache::parse("garbage").is_err());
        assert!(SummaryCache::parse(HEADER).unwrap().is_empty());
        assert!(SummaryCache::parse(&format!("{HEADER}\nscc zz\nend")).is_err());
        assert!(SummaryCache::parse(&format!("{HEADER}\nscc 1f")).is_err());
        assert!(SummaryCache::parse(&format!("{HEADER}\nfn f 0")).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = ContentHash::new();
        h.write_str("append");
        let a = h.finish();
        let mut h2 = ContentHash::new();
        h2.write_str("append");
        assert_eq!(a, h2.finish());
        let mut h3 = ContentHash::new();
        h3.write_str("appenc");
        assert_ne!(a, h3.finish());
    }

    #[test]
    fn missing_file_is_empty_cache() {
        let (cache, err) = SummaryCache::load(Path::new("/nonexistent/dir/cache.txt"));
        assert!(cache.is_empty());
        assert!(err.is_none());
    }
}
