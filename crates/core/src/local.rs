//! The local escape test `L(f, i, e₁, …, eₙ, env_e)` (paper §4.2).
//!
//! Where the global test assumes nothing about the arguments, the local
//! test analyzes one *particular call* `f e₁ … eₙ`: the interesting
//! argument keeps its actual behaviour — the test value is
//! `⟨⟨1, s_i⟩, (E⟦e_i⟧ env_e)₍₂₎⟩`, i.e. its basic part is replaced by
//! "the whole object is interesting" but its function component is the
//! real one — and the other arguments get `⟨⟨0,0⟩, (E⟦e_j⟧ env_e)₍₂₎⟩`.

use crate::absval::AbsVal;
use crate::be::Be;
use crate::engine::Engine;
use crate::error::EscapeError;
use nml_syntax::ast::Expr;
use std::fmt;

/// The outcome of a local escape test on one call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalEscape {
    /// Per-argument verdicts `L(f, i, …) ∈ B_e`, by argument position.
    pub verdicts: Vec<Be>,
    /// Per-argument spine counts `s_i` of the actual argument expressions.
    pub spines: Vec<u32>,
}

impl LocalEscape {
    /// The number of top spines of argument `i` that do **not** escape
    /// this call.
    pub fn retained_spines(&self, i: usize) -> u32 {
        let esc = if self.verdicts[i].escapes() {
            self.verdicts[i].spines()
        } else {
            0
        };
        self.spines[i] - esc.min(self.spines[i])
    }
}

impl fmt::Display for LocalEscape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (v, s)) in self.verdicts.iter().zip(&self.spines).enumerate() {
            writeln!(f, "  arg {}: s={}: L = {}", i + 1, s, v)?;
        }
        Ok(())
    }
}

/// Runs the local escape test on the call expression `call`, which must be
/// a (curried) application `f e₁ … eₙ` of nodes belonging to the engine's
/// program. Every argument position is tested in turn.
///
/// The test is only as precise as the program's typing: on a polymorphic
/// program analyzed at its simplest instance, `car^s` annotations inside
/// the callee may undershoot the call's actual spine depths and the result
/// degrades (safely) toward "everything escapes". Run it on the
/// monomorphized program ([`nml_types::monomorphize`]) for the paper's
/// per-call precision.
///
/// # Errors
///
/// [`EscapeError::FixpointDiverged`] if the engine's pass budget is
/// exhausted.
pub fn local_escape(engine: &mut Engine<'_>, call: &Expr) -> Result<LocalEscape, EscapeError> {
    let (head, args) = call.uncurry_app();
    let n = args.len();
    let spines: Vec<u32> = args
        .iter()
        .map(|a| engine.info().ty(a.id).spines())
        .collect();

    let mut verdicts = Vec::with_capacity(n);
    for i in 0..n {
        // Find the whole thing inside one engine fixpoint so argument
        // values and the callee converge together.
        let verdict = engine.run(|en| {
            let env = en.top_env();
            let fv = en.eval(head, &env);
            let zs: Vec<AbsVal> = args
                .iter()
                .enumerate()
                .map(|(j, a)| {
                    let actual = en.eval(a, &env);
                    let be = if i == j {
                        Be::escaping(spines[j])
                    } else {
                        Be::bottom()
                    };
                    AbsVal {
                        be,
                        fun: actual.fun,
                    }
                })
                .collect();
            en.apply_n(&fv, &zs).be
        })?;
        verdicts.push(verdict);
    }
    Ok(LocalEscape { verdicts, spines })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::{parse_program, Program};
    use nml_types::{infer_and_monomorphize, TypeInfo};

    /// Local tests are call-site specific, so they need the real instance
    /// types at the call: monomorphize first (paper §3.1 assumes a
    /// monomorphically typed program).
    fn setup(src: &str) -> (Program, TypeInfo) {
        let p = parse_program(src).expect("parse");
        let m = infer_and_monomorphize(&p).expect("mono");
        (m.program, m.info)
    }

    #[test]
    fn paper_intro_map_pair_top_two_spines_do_not_escape() {
        // (map pair [[1,2],[3,4],[5,6]]): the top two spines of the second
        // argument do not escape the call (paper §1, property 3).
        let src = "letrec
                     pair x = cons (car x) (cons (car (cdr x)) nil);
                     map f l = if (null l) then nil
                               else cons (f (car l)) (map f (cdr l))
                   in map pair [[1,2],[3,4],[5,6]]";
        let (p, info) = setup(src);
        let mut en = Engine::new(&p, &info);
        let body = p.body.clone();
        let local = local_escape(&mut en, &body).expect("local test");
        // Argument 2 (the list of lists, s = 2): elements may escape
        // (pair returns the integers), but neither spine does: L = ⟨1,0⟩,
        // retained = 2.
        assert_eq!(local.spines[1], 2);
        assert_eq!(local.verdicts[1], Be::escaping(0));
        assert_eq!(local.retained_spines(1), 2);
    }

    #[test]
    fn local_with_identity_function_is_more_precise_than_global() {
        // Globally, map's list argument escapes to the extent the unknown
        // f lets it; locally with f = id the spine still does not escape.
        let src = "letrec
                     id x = x;
                     map f l = if (null l) then nil
                               else cons (f (car l)) (map f (cdr l))
                   in map id [1, 2, 3]";
        let (p, info) = setup(src);
        let mut en = Engine::new(&p, &info);
        let body = p.body.clone();
        let local = local_escape(&mut en, &body).expect("local test");
        assert_eq!(local.verdicts[1], Be::escaping(0));
        assert_eq!(local.retained_spines(1), 1);
    }

    #[test]
    fn argument_that_is_returned_escapes_locally() {
        let src = "letrec second x y = y in second 1 [2]";
        let (p, info) = setup(src);
        let mut en = Engine::new(&p, &info);
        let body = p.body.clone();
        let local = local_escape(&mut en, &body).expect("local test");
        assert_eq!(local.verdicts[0], Be::bottom());
        assert_eq!(local.verdicts[1], Be::escaping(1));
        assert_eq!(local.retained_spines(1), 0);
    }
}
