//! Errors of the escape analysis.

use crate::budget::Resource;
use nml_syntax::{NodeId, SyntaxError};
use nml_types::TypeError;
use std::fmt;

/// A failure inside the abstract interpreter or the escape tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscapeError {
    /// The fixpoint iteration exceeded its pass budget.
    FixpointDiverged {
        /// Passes executed before giving up.
        passes: u32,
    },
    /// An escape test was requested for a name that is not a top-level
    /// binding.
    UnknownFunction {
        /// The requested name.
        name: String,
    },
    /// An escape test was requested with a parameter index out of range.
    BadParameterIndex {
        /// The requested (0-based) index.
        index: usize,
        /// The function's arity.
        arity: usize,
    },
    /// The analysis-wide [`crate::budget::Budget`] ran out. The caller can
    /// (and [`crate::analyze_program`] does) degrade the affected function
    /// to the sound worst-case summary instead of failing.
    BudgetExhausted {
        /// The resource that ran out first.
        resource: Resource,
        /// Usage at trip time (milliseconds for the wall clock).
        used: u64,
        /// The configured limit, in the same unit.
        limit: u64,
    },
    /// A `car` node carried neither a `car^s` annotation nor a usable
    /// type. The engine recovers soundly (it treats the `car` as the
    /// identity, an over-approximation since `sub^s` is reductive) but
    /// reports the inconsistency instead of panicking.
    MissingSpineAnnotation {
        /// The offending node.
        node: NodeId,
    },
    /// An application reached a lambda node that is not part of the
    /// engine's program (foreign or synthesized AST). The engine recovers
    /// soundly by treating the callee as the worst-case function.
    UnknownLambda {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for EscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeError::FixpointDiverged { passes } => {
                write!(f, "escape fixpoint did not converge within {passes} passes")
            }
            EscapeError::UnknownFunction { name } => {
                write!(f, "`{name}` is not a top-level function")
            }
            EscapeError::BadParameterIndex { index, arity } => {
                write!(f, "parameter index {index} out of range for arity {arity}")
            }
            EscapeError::BudgetExhausted {
                resource,
                used,
                limit,
            } => {
                write!(
                    f,
                    "analysis budget exhausted: {resource} used {used} of {limit}"
                )
            }
            EscapeError::MissingSpineAnnotation { node } => {
                write!(f, "car node {node} has no spine annotation")
            }
            EscapeError::UnknownLambda { node } => {
                write!(f, "lambda node {node} is not part of the analyzed program")
            }
        }
    }
}

impl std::error::Error for EscapeError {}

/// Any failure of the full front-to-back pipeline
/// (parse → infer → analyze).
#[derive(Debug, Clone)]
pub enum AnalyzeError {
    /// Lexing/parsing failed.
    Syntax(SyntaxError),
    /// Type inference failed.
    Type(TypeError),
    /// The analysis itself failed.
    Escape(EscapeError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Syntax(e) => write!(f, "syntax error: {e}"),
            AnalyzeError::Type(e) => write!(f, "type error: {e}"),
            AnalyzeError::Escape(e) => write!(f, "escape analysis error: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Syntax(e) => Some(e),
            AnalyzeError::Type(e) => Some(e),
            AnalyzeError::Escape(e) => Some(e),
        }
    }
}

impl From<SyntaxError> for AnalyzeError {
    fn from(e: SyntaxError) -> Self {
        AnalyzeError::Syntax(e)
    }
}

impl From<TypeError> for AnalyzeError {
    fn from(e: TypeError) -> Self {
        AnalyzeError::Type(e)
    }
}

impl From<EscapeError> for AnalyzeError {
    fn from(e: EscapeError) -> Self {
        AnalyzeError::Escape(e)
    }
}
