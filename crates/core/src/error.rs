//! Errors of the escape analysis.

use nml_syntax::SyntaxError;
use nml_types::TypeError;
use std::fmt;

/// A failure inside the abstract interpreter or the escape tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscapeError {
    /// The fixpoint iteration exceeded its pass budget.
    FixpointDiverged {
        /// Passes executed before giving up.
        passes: u32,
    },
    /// An escape test was requested for a name that is not a top-level
    /// binding.
    UnknownFunction {
        /// The requested name.
        name: String,
    },
    /// An escape test was requested with a parameter index out of range.
    BadParameterIndex {
        /// The requested (0-based) index.
        index: usize,
        /// The function's arity.
        arity: usize,
    },
}

impl fmt::Display for EscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeError::FixpointDiverged { passes } => {
                write!(f, "escape fixpoint did not converge within {passes} passes")
            }
            EscapeError::UnknownFunction { name } => {
                write!(f, "`{name}` is not a top-level function")
            }
            EscapeError::BadParameterIndex { index, arity } => {
                write!(f, "parameter index {index} out of range for arity {arity}")
            }
        }
    }
}

impl std::error::Error for EscapeError {}

/// Any failure of the full front-to-back pipeline
/// (parse → infer → analyze).
#[derive(Debug, Clone)]
pub enum AnalyzeError {
    /// Lexing/parsing failed.
    Syntax(SyntaxError),
    /// Type inference failed.
    Type(TypeError),
    /// The analysis itself failed.
    Escape(EscapeError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Syntax(e) => write!(f, "syntax error: {e}"),
            AnalyzeError::Type(e) => write!(f, "type error: {e}"),
            AnalyzeError::Escape(e) => write!(f, "escape analysis error: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Syntax(e) => Some(e),
            AnalyzeError::Type(e) => Some(e),
            AnalyzeError::Escape(e) => Some(e),
        }
    }
}

impl From<SyntaxError> for AnalyzeError {
    fn from(e: SyntaxError) -> Self {
        AnalyzeError::Syntax(e)
    }
}

impl From<TypeError> for AnalyzeError {
    fn from(e: TypeError) -> Self {
        AnalyzeError::Type(e)
    }
}

impl From<EscapeError> for AnalyzeError {
    fn from(e: EscapeError) -> Self {
        AnalyzeError::Escape(e)
    }
}
