//! The basic escape domain `B_e` (paper §3.2, §3.4).
//!
//! `B_e` is the finite chain
//!
//! ```text
//! ⟨0,0⟩ ⊑ ⟨1,0⟩ ⊑ ⟨1,1⟩ ⊑ ... ⊑ ⟨1,d⟩
//! ```
//!
//! where `d` is a per-program constant: the maximum spine count of any type
//! in the program. In the abstract semantics, `⟨1,i⟩` means the bottom `i`
//! spines of the interesting object **may** be contained in the value of
//! the expression (`i = 0` for a non-list interesting object that is
//! itself contained), and `⟨0,0⟩` means no part of it is.

use std::fmt;

/// An element of the basic escape domain `B_e`.
///
/// Constructed via [`Be::bottom`] (`⟨0,0⟩`) and [`Be::escaping`]
/// (`⟨1,i⟩`); the invariant that `⟨0,_⟩` only pairs with `0` is enforced
/// by construction.
///
/// ```
/// use nml_escape::Be;
///
/// // The chain ⟨0,0⟩ ⊑ ⟨1,0⟩ ⊑ ⟨1,1⟩ ⊑ ...
/// assert!(Be::bottom().le(Be::escaping(0)));
/// assert!(Be::escaping(0).le(Be::escaping(1)));
/// // Join is the maximum; sub^s strips a spine at matching depth.
/// assert_eq!(Be::escaping(2).join(Be::escaping(1)), Be::escaping(2));
/// assert_eq!(Be::escaping(2).sub(2), Be::escaping(1));
/// assert_eq!(Be::escaping(1).sub(2), Be::escaping(1)); // mismatch: unchanged
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Be {
    // Field order matters: deriving Ord on (escapes, spines) yields exactly
    // the chain order ⟨0,0⟩ < ⟨1,0⟩ < ⟨1,1⟩ < ...
    escapes: bool,
    spines: u32,
}

impl Be {
    /// `⟨0,0⟩`: no part of the interesting object is contained.
    pub const fn bottom() -> Be {
        Be {
            escapes: false,
            spines: 0,
        }
    }

    /// `⟨1,i⟩`: the bottom `i` spines may be contained (`i = 0` means an
    /// indivisible interesting object is contained).
    pub const fn escaping(i: u32) -> Be {
        Be {
            escapes: true,
            spines: i,
        }
    }

    /// Whether any part of the interesting object is contained
    /// (the first component of the pair).
    pub fn escapes(self) -> bool {
        self.escapes
    }

    /// The number of bottom spines contained (the second component).
    pub fn spines(self) -> u32 {
        self.spines
    }

    /// The least upper bound in the chain.
    #[must_use]
    pub fn join(self, other: Be) -> Be {
        self.max(other)
    }

    /// Lattice order test: `self ⊑ other`.
    pub fn le(self, other: Be) -> bool {
        self <= other
    }

    /// The paper's `sub^s` on the basic component: if the value's spine
    /// count equals `s` (the spine count of the `car`'s argument type), the
    /// top spine is stripped by the `car`, so the contained part loses one
    /// spine; otherwise the value passes through unchanged.
    ///
    /// `s` can never be *less* than the contained spine count in a
    /// well-typed program (a list with `s` spines cannot contain a list
    /// with more than `s` spines), so `s > spines` leaves the value alone
    /// and `s == spines` decrements.
    // The name mirrors the paper's `sub^s`; it is not subtraction.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, s: u32) -> Be {
        if self.escapes && self.spines == s {
            // ⟨1, s⟩ -> ⟨1, s-1⟩; at s = 0 there is nothing to strip
            // (non-list interesting object), keep ⟨1, 0⟩.
            Be {
                escapes: true,
                spines: self.spines.saturating_sub(1),
            }
        } else {
            self
        }
    }

    /// Enumerates the whole chain up to bound `d` (for exhaustive property
    /// tests over the finite domain).
    pub fn all(d: u32) -> impl Iterator<Item = Be> {
        std::iter::once(Be::bottom()).chain((0..=d).map(Be::escaping))
    }
}

impl Default for Be {
    fn default() -> Self {
        Be::bottom()
    }
}

impl fmt::Display for Be {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", u32::from(self.escapes), self.spines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_order() {
        assert!(Be::bottom() < Be::escaping(0));
        assert!(Be::escaping(0) < Be::escaping(1));
        assert!(Be::escaping(1) < Be::escaping(2));
        assert!(Be::bottom().le(Be::escaping(5)));
        assert!(!Be::escaping(1).le(Be::escaping(0)));
    }

    #[test]
    fn join_is_max() {
        assert_eq!(Be::bottom().join(Be::escaping(0)), Be::escaping(0));
        assert_eq!(Be::escaping(2).join(Be::escaping(1)), Be::escaping(2));
        assert_eq!(Be::bottom().join(Be::bottom()), Be::bottom());
    }

    #[test]
    fn join_laws() {
        let d = 4;
        for a in Be::all(d) {
            assert_eq!(a.join(a), a, "idempotent");
            for b in Be::all(d) {
                assert_eq!(a.join(b), b.join(a), "commutative");
                assert!(a.le(a.join(b)), "upper bound");
                for c in Be::all(d) {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associative");
                }
            }
        }
    }

    #[test]
    fn sub_decrements_on_match() {
        assert_eq!(Be::escaping(2).sub(2), Be::escaping(1));
        assert_eq!(Be::escaping(1).sub(1), Be::escaping(0));
    }

    #[test]
    fn sub_passes_through_on_mismatch() {
        // s > spines: the contained spines are below the stripped one.
        assert_eq!(Be::escaping(1).sub(2), Be::escaping(1));
        assert_eq!(Be::bottom().sub(1), Be::bottom());
        assert_eq!(Be::escaping(0).sub(1), Be::escaping(0));
    }

    #[test]
    fn sub_at_zero_keeps_indivisible() {
        assert_eq!(Be::escaping(0).sub(0), Be::escaping(0));
    }

    #[test]
    fn sub_is_monotone() {
        let d = 4;
        for s in 0..=d {
            for a in Be::all(d) {
                for b in Be::all(d) {
                    if a.le(b) {
                        assert!(a.sub(s).le(b.sub(s)), "sub^{s} not monotone at {a}, {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Be::bottom().to_string(), "<0,0>");
        assert_eq!(Be::escaping(2).to_string(), "<1,2>");
    }
}
