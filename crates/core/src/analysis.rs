//! High-level front-to-back analysis pipeline:
//! parse → infer → (optionally monomorphize) → global escape tests.
//!
//! The pipeline is **total over well-typed programs**: once parsing and
//! type inference succeed, analysis cannot fail. Any engine fault — a
//! diverging fixpoint, an exhausted [`Budget`], an inconsistent AST, even
//! a panic inside the abstract interpreter — is confined to the one
//! function being tested: that function's summary degrades to the sound
//! worst-case `W^τ` (every parameter reported fully escaping) and a
//! [`Degradation`] event records what happened. Consumers that want
//! hard failures instead can inspect [`Analysis::degradations`].

use crate::budget::{Budget, Governor};
use crate::engine::{Engine, EngineConfig, EngineStats};
use crate::error::{AnalyzeError, EscapeError};
use crate::global::{global_escape, worst_case_summary, EscapeSummary};
use crate::modular::{analyze_program_scheduled, ScheduleOptions, ScheduleReport};
use crate::sharing::unshared_from_summary;
use nml_syntax::{parse_program, Program, Symbol};
use nml_types::{infer_and_monomorphize, infer_program, TypeInfo};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How polymorphic programs are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolyMode {
    /// Analyze the simplest monotype instance of each polymorphic function
    /// (residual type variables default to `int`); results transfer to
    /// other instances by polymorphic invariance (paper §5). The cheap
    /// route the paper recommends.
    #[default]
    SimplestInstance,
    /// Specialize every demanded instance first
    /// ([`nml_types::monomorphize`]) and analyze each copy exactly.
    Monomorphize,
}

/// Why one function's summary was degraded to the worst case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The engine reported a typed failure (budget exhaustion, fixpoint
    /// divergence, inconsistent AST).
    Engine(EscapeError),
    /// The abstract interpreter panicked; the panic was quarantined and
    /// the engine rebuilt.
    Panic(String),
    /// This function's own analysis succeeded, but it consumed the
    /// worst-case values of a callee SCC that degraded (`origin` names a
    /// function of that SCC). The summary is kept as computed — it is a
    /// sound over-approximation — but it may be less precise than a clean
    /// run would produce.
    Transitive {
        /// A function of the SCC where the degradation originated.
        origin: Symbol,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::Engine(e) => write!(f, "{e}"),
            DegradeReason::Panic(msg) => write!(f, "quarantined panic: {msg}"),
            DegradeReason::Transitive { origin } => {
                write!(f, "transitively degraded via `{origin}`")
            }
        }
    }
}

/// One function whose summary fell back to the sound worst case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The affected top-level function.
    pub function: Symbol,
    /// What forced the fallback.
    pub reason: DegradeReason,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            // A transitively degraded summary is kept as computed (it is
            // sound), so "worst-case" would overstate what happened.
            DegradeReason::Transitive { .. } => {
                write!(f, "`{}` {}", self.function, self.reason)
            }
            _ => write!(
                f,
                "`{}` degraded to worst-case: {}",
                self.function, self.reason
            ),
        }
    }
}

/// The complete result of analyzing one program.
#[derive(Debug)]
pub struct Analysis {
    /// The analyzed program (specialized if [`PolyMode::Monomorphize`]).
    pub program: Program,
    /// Its type information.
    pub info: TypeInfo,
    /// Global escape summaries of every top-level function, by name.
    /// Degraded functions are present with worst-case summaries.
    pub summaries: BTreeMap<Symbol, EscapeSummary>,
    /// Engine statistics accumulated over all tests.
    pub stats: EngineStats,
    /// Functions whose summaries are worst-case fallbacks (or, for
    /// [`DegradeReason::Transitive`], computed from a degraded callee's
    /// worst-case values), with reasons. Empty when the analysis ran to
    /// completion everywhere.
    pub degradations: Vec<Degradation>,
    /// What the SCC-modular scheduler did (all zeros for the legacy
    /// whole-program driver).
    pub schedule: ScheduleReport,
}

impl Analysis {
    /// The summary for `name`.
    pub fn summary(&self, name: &str) -> Option<&EscapeSummary> {
        self.summaries.get(&Symbol::intern(name))
    }

    /// Theorem 2 case 2 for `name`: unshared top spines of any call's
    /// result.
    pub fn unshared_result_spines(&self, name: &str) -> Option<u32> {
        self.summary(name).map(unshared_from_summary)
    }

    /// Whether `name`'s summary is a worst-case fallback rather than the
    /// exact global test result.
    pub fn is_degraded(&self, name: &str) -> bool {
        self.is_degraded_sym(Symbol::intern(name))
    }

    /// [`Analysis::is_degraded`] for an already-interned symbol.
    pub fn is_degraded_sym(&self, name: Symbol) -> bool {
        self.degradations.iter().any(|d| d.function == name)
    }

    /// Whether every summary is exact (no degradations anywhere).
    pub fn fully_precise(&self) -> bool {
        self.degradations.is_empty()
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.summaries.values() {
            write!(f, "{s}")?;
        }
        for d in &self.degradations {
            writeln!(f, "warning: {d}")?;
        }
        Ok(())
    }
}

/// Analyzes nml source end to end with default settings.
///
/// # Errors
///
/// Returns an [`AnalyzeError`] wrapping the first syntax, type, or
/// analysis failure.
///
/// # Examples
///
/// ```
/// use nml_escape::analyze_source;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let analysis = analyze_source(
///     "letrec append x y = if (null x) then y
///                          else cons (car x) (append (cdr x) y)
///      in append [1] [2]",
/// )?;
/// let append = analysis.summary("append").expect("analyzed");
/// // G(APPEND, 1) = ⟨1,0⟩: all but the top spine of x escapes.
/// assert_eq!(append.param(0).verdict.to_string(), "<1,0>");
/// // G(APPEND, 2) = ⟨1,1⟩: all of y escapes.
/// assert_eq!(append.param(1).verdict.to_string(), "<1,1>");
/// # Ok(())
/// # }
/// ```
pub fn analyze_source(src: &str) -> Result<Analysis, AnalyzeError> {
    analyze_source_with(src, PolyMode::default(), EngineConfig::default())
}

/// Analyzes nml source with explicit polymorphism handling and engine
/// configuration.
///
/// # Errors
///
/// See [`analyze_source`].
pub fn analyze_source_with(
    src: &str,
    mode: PolyMode,
    config: EngineConfig,
) -> Result<Analysis, AnalyzeError> {
    analyze_source_governed(src, mode, config, Budget::unlimited())
}

/// Analyzes nml source under a resource [`Budget`]. On exhaustion the
/// remaining functions degrade to worst-case summaries instead of failing.
///
/// # Errors
///
/// Only syntax and type errors; the analysis phase itself is total.
pub fn analyze_source_governed(
    src: &str,
    mode: PolyMode,
    config: EngineConfig,
    budget: Budget,
) -> Result<Analysis, AnalyzeError> {
    let parsed = parse_program(src)?;
    let (program, info) = match mode {
        PolyMode::SimplestInstance => {
            let info = infer_program(&parsed)?;
            (parsed, info)
        }
        PolyMode::Monomorphize => {
            let mono = infer_and_monomorphize(&parsed)?;
            (mono.program, mono.info)
        }
    };
    analyze_program_governed(program, info, config, budget)
}

/// [`analyze_source_governed`] with explicit [`ScheduleOptions`]: worker
/// threads per SCC wave and an optional persistent summary cache.
///
/// # Errors
///
/// Only syntax and type errors; the analysis phase itself is total.
pub fn analyze_source_scheduled(
    src: &str,
    mode: PolyMode,
    config: EngineConfig,
    budget: Budget,
    options: &crate::modular::ScheduleOptions,
) -> Result<Analysis, AnalyzeError> {
    let parsed = parse_program(src)?;
    let (program, info) = match mode {
        PolyMode::SimplestInstance => {
            let info = infer_program(&parsed)?;
            (parsed, info)
        }
        PolyMode::Monomorphize => {
            let mono = infer_and_monomorphize(&parsed)?;
            (mono.program, mono.info)
        }
    };
    crate::modular::analyze_program_scheduled(program, info, config, budget, options)
}

/// Analyzes an already-typed program.
///
/// # Errors
///
/// None in practice: engine faults degrade per function (see
/// [`analyze_program_governed`]); the `Result` is kept for signature
/// stability.
pub fn analyze_program(
    program: Program,
    info: TypeInfo,
    config: EngineConfig,
) -> Result<Analysis, AnalyzeError> {
    analyze_program_governed(program, info, config, Budget::unlimited())
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) fn merge_stats(acc: &mut EngineStats, s: &EngineStats) {
    acc.passes += s.passes;
    acc.memo_entries = acc.memo_entries.max(s.memo_entries);
    acc.widenings += s.widenings;
    for (k, v) in &s.updates_per_binding {
        *acc.updates_per_binding.entry(*k).or_default() += v;
    }
}

/// Analyzes an already-typed program under a resource [`Budget`].
///
/// Since the SCC-modular refactor this is a thin wrapper over
/// [`analyze_program_scheduled`](crate::modular::analyze_program_scheduled)
/// in serial mode with no cache: the call graph is condensed into SCCs,
/// each component gets an equal share of the budget, and any fault —
/// typed engine error, quarantined panic, or budget exhaustion — degrades
/// that component alone (dependents keep their computed summaries and
/// are flagged [`DegradeReason::Transitive`]).
///
/// # Errors
///
/// None in practice; the `Result` is kept for signature stability with
/// the syntax/type phases.
pub fn analyze_program_governed(
    program: Program,
    info: TypeInfo,
    config: EngineConfig,
    budget: Budget,
) -> Result<Analysis, AnalyzeError> {
    analyze_program_scheduled(program, info, config, budget, &ScheduleOptions::default())
}

/// The legacy whole-program driver: one engine, one global fixpoint,
/// per-*function* fault isolation.
///
/// Kept as the executable reference the SCC-modular scheduler is tested
/// against (the equivalence suite asserts identical summaries), and for
/// callers that want the paper's monolithic iteration verbatim.
///
/// Each top-level function's global escape test runs inside a panic
/// quarantine. Three classes of fault all lead to the same sound outcome —
/// the function's summary becomes `W^τ` (every parameter fully escaping)
/// and a [`Degradation`] is recorded:
///
/// - typed engine errors (budget exhaustion, fixpoint divergence,
///   inconsistent AST nodes);
/// - panics inside the abstract interpreter (the engine is rebuilt, the
///   governor's accumulated usage carries over);
/// - budget exhaustion part-way through the function list (remaining
///   functions degrade immediately — the governor stays tripped).
///
/// # Errors
///
/// None in practice; the `Result` is kept for signature stability with
/// the syntax/type phases.
pub fn analyze_program_whole_program(
    program: Program,
    info: TypeInfo,
    config: EngineConfig,
    budget: Budget,
) -> Result<Analysis, AnalyzeError> {
    let names: Vec<Symbol> = program.bindings.iter().map(|b| b.name).collect();
    let mut summaries = BTreeMap::new();
    let mut degradations = Vec::new();
    let mut stats = EngineStats::default();
    {
        let mut engine = Engine::with_config(&program, &info, config.clone());
        engine.set_governor(Governor::new(budget));
        for name in names {
            // Only functions (arity >= 1) have escape tests.
            let Some(sig) = info.sig(name).cloned() else {
                continue;
            };
            if sig.uncurry().0.is_empty() {
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| global_escape(&mut engine, name)));
            match outcome {
                Ok(Ok(summary)) => {
                    summaries.insert(name, summary);
                }
                Ok(Err(e)) => {
                    summaries.insert(name, worst_case_summary(name, &sig));
                    degradations.push(Degradation {
                        function: name,
                        reason: DegradeReason::Engine(e),
                    });
                }
                Err(payload) => {
                    summaries.insert(name, worst_case_summary(name, &sig));
                    degradations.push(Degradation {
                        function: name,
                        reason: DegradeReason::Panic(panic_message(payload)),
                    });
                    // The unwound engine may hold inconsistent memo/slot
                    // state: rebuild it. The governor (with its usage)
                    // carries over so the budget stays analysis-wide.
                    let governor = engine.governor().clone();
                    merge_stats(&mut stats, &engine.stats);
                    engine = Engine::with_config(&program, &info, config.clone());
                    engine.set_governor(governor);
                }
            }
        }
        merge_stats(&mut stats, &engine.stats);
    }
    Ok(Analysis {
        program,
        info,
        summaries,
        stats,
        degradations,
        schedule: ScheduleReport::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::be::Be;

    const PS: &str = r#"
        letrec
          append x y = if (null x) then y
                       else cons (car x) (append (cdr x) y);
          split p x l h =
            if (null x) then (cons l (cons h nil))
            else if (car x) < p
                 then split p (cdr x) (cons (car x) l) h
                 else split p (cdr x) l (cons (car x) h);
          ps x = if (null x) then nil
                 else append (ps (car (split (car x) (cdr x) nil nil)))
                             (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
        in ps [5, 2, 7, 1, 3, 4]
    "#;

    /// The complete Appendix A.1 result table.
    #[test]
    fn paper_appendix_a1_all_results() {
        let a = analyze_source(PS).expect("analysis");
        let append = a.summary("append").unwrap();
        assert_eq!(append.param(0).verdict, Be::escaping(0), "G(APPEND,1)");
        assert_eq!(append.param(1).verdict, Be::escaping(1), "G(APPEND,2)");
        let split = a.summary("split").unwrap();
        assert_eq!(split.param(0).verdict, Be::bottom(), "G(SPLIT,1)");
        assert_eq!(split.param(1).verdict, Be::escaping(0), "G(SPLIT,2)");
        assert_eq!(split.param(2).verdict, Be::escaping(1), "G(SPLIT,3)");
        assert_eq!(split.param(3).verdict, Be::escaping(1), "G(SPLIT,4)");
        let ps = a.summary("ps").unwrap();
        assert_eq!(ps.param(0).verdict, Be::escaping(0), "G(PS,1)");
    }

    #[test]
    fn appendix_a2_sharing() {
        let a = analyze_source(PS).expect("analysis");
        assert_eq!(a.unshared_result_spines("ps"), Some(1));
        assert_eq!(a.unshared_result_spines("split"), Some(1));
    }

    #[test]
    fn syntax_error_propagates() {
        assert!(matches!(
            analyze_source("letrec in 1"),
            Err(AnalyzeError::Syntax(_))
        ));
    }

    #[test]
    fn type_error_propagates() {
        assert!(matches!(
            analyze_source("1 + true"),
            Err(AnalyzeError::Type(_))
        ));
    }

    #[test]
    fn non_function_bindings_are_skipped() {
        let a = analyze_source("letrec k = 42; inc x = x + k in inc 1").unwrap();
        assert!(a.summary("k").is_none());
        assert!(a.summary("inc").is_some());
    }

    #[test]
    fn monomorphize_mode_analyzes_instances() {
        let a = analyze_source_with(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l)
             in len [1] + len [[2]]",
            PolyMode::Monomorphize,
            EngineConfig::default(),
        )
        .unwrap();
        assert!(
            a.summary("len__i").is_some(),
            "summaries: {:?}",
            a.summaries.keys()
        );
        assert!(a.summary("len__iL").is_some());
        // Neither instance lets its argument escape.
        assert_eq!(a.summary("len__i").unwrap().param(0).verdict, Be::bottom());
        assert_eq!(a.summary("len__iL").unwrap().param(0).verdict, Be::bottom());
    }

    #[test]
    fn display_renders_all_summaries() {
        let a = analyze_source("letrec id x = x in id 1").unwrap();
        let text = a.to_string();
        assert!(text.contains("id"), "{text}");
        assert!(text.contains("G = <1,0>"), "{text}");
    }
}
