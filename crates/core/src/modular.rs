//! The SCC-modular summary scheduler.
//!
//! Instead of one whole-program Kleene iteration, the program's top-level
//! bindings are condensed into a call-graph SCC DAG
//! ([`nml_syntax::callgraph`]) and solved one component at a time, in
//! callees-first topological order. Each SCC gets its own [`Engine`]
//! scoped to the component's members and *seeded* with the converged slot
//! values of every callee SCC, so its fixpoint is small and local. Solving
//! in dependency order against finalized callee values computes exactly
//! the same least fixpoint as the global iteration (the slot/memo
//! equations form a deterministic monotone system; pinning an equation at
//! its own least solution changes nothing), which the equivalence test
//! suite checks program-by-program.
//!
//! The modular structure buys three things the monolithic engine could
//! not offer:
//!
//! - **fault isolation**: the [`Budget`] is apportioned per SCC, so one
//!   adversarial component degrades to `W^τ` alone instead of starving
//!   the whole pass — dependents keep their computed summaries and are
//!   merely flagged transitively degraded;
//! - **parallelism**: SCCs of the same scheduling wave have no dependency
//!   path between them and run on worker threads (`jobs > 1`) with a
//!   deterministic ascending-id merge;
//! - **incrementality**: a persistent [`SummaryCache`] keyed by each
//!   SCC's content hash (source + signatures + transitive dependency
//!   hashes) lets repeated runs skip unchanged components entirely.

use crate::absval::{AbsEnv, AbsVal, RecKey};
use crate::analysis::{merge_stats, panic_message, Analysis, Degradation, DegradeReason};
use crate::be::Be;
use crate::budget::{Budget, Governor};
use crate::cache::{cached_fn_of, CachedScc, ContentHash, SummaryCache};
use crate::engine::{
    build_top_env, worst_value, Engine, EngineConfig, EngineStats, ProgramIndex, SharedSlots,
};
use crate::error::AnalyzeError;
use crate::global::{global_escape, worst_case_summary, EscapeSummary};
use nml_syntax::callgraph::{CallGraph, SccDag};
use nml_syntax::visit::walk_exprs;
use nml_syntax::{pretty_expr, Binding, Program, Symbol};
use nml_types::TypeInfo;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// How the modular scheduler should run.
#[derive(Debug, Clone, Default)]
pub struct ScheduleOptions {
    /// Worker threads per wave. `0` and `1` both mean serial; the merge
    /// order (and therefore every result) is identical for any value.
    pub jobs: usize,
    /// Path of the persistent summary cache, if any.
    pub summary_cache: Option<PathBuf>,
}

/// What the scheduler did, for diagnostics and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Number of SCCs in the condensed call graph.
    pub scc_count: usize,
    /// Number of scheduling waves.
    pub wave_count: usize,
    /// SCCs actually solved this run (cache misses plus the dependencies
    /// their slots required). A fully warm cache makes this `0`.
    pub sccs_solved: usize,
    /// SCCs whose summaries were served from the cache.
    pub cache_hits: usize,
    /// SCCs the cache did not cover (always `0` without a cache path).
    pub cache_misses: usize,
    /// Worker threads used per wave (`1` = serial).
    pub jobs: usize,
    /// Cache load/save problems, in the order they occurred (the
    /// analysis itself always completes; cache trouble only costs
    /// reuse). A salvaging load and a failed save each contribute one
    /// entry, so neither can shadow the other.
    pub cache_errors: Vec<String>,
    /// Ready-queue batches the SCCs were grouped into (small neighboring
    /// components share a batch so they don't serialize on scheduling).
    pub batch_count: usize,
    /// Batches a worker took from another worker's deque (`0` when
    /// serial).
    pub steals: usize,
    /// SCCs served from retained in-process state by the incremental
    /// re-solver (always `0` for a cold scheduled run).
    pub sccs_reused: usize,
}

/// Everything one solved SCC hands back to the merge step.
pub(crate) struct SccOutcome {
    pub(crate) id: usize,
    pub(crate) slots: HashMap<RecKey, AbsVal>,
    pub(crate) summaries: Vec<EscapeSummary>,
    pub(crate) degradations: Vec<Degradation>,
    pub(crate) stats: EngineStats,
    /// `Some(origin)` when the exported slots are *not* exact (the slot
    /// fixpoint failed or the engine unwound): dependents consuming them
    /// must be flagged transitively degraded.
    pub(crate) taint: Option<Symbol>,
}

/// Analyzes an already-typed program with the SCC-modular scheduler.
///
/// This is the modular counterpart of
/// [`analyze_program_whole_program`](crate::analysis::analyze_program_whole_program):
/// identical summaries (the equivalence suite checks this), but with
/// per-SCC budget apportionment, optional wave parallelism, and an
/// optional persistent summary cache.
///
/// # Errors
///
/// None in practice; the `Result` is kept for signature stability with
/// the syntax/type phases.
pub fn analyze_program_scheduled(
    program: Program,
    info: TypeInfo,
    config: EngineConfig,
    budget: Budget,
    options: &ScheduleOptions,
) -> Result<Analysis, AnalyzeError> {
    let graph = CallGraph::build(&program);
    let dag = graph.condense();
    let n = dag.len();
    let members: Vec<Vec<Symbol>> = (0..n).map(|id| dag.member_names(&graph, id)).collect();

    let mut report = ScheduleReport {
        scc_count: n,
        wave_count: dag.wave_count(),
        jobs: options.jobs.max(1),
        ..ScheduleReport::default()
    };

    // Cache lookup: compute content hashes and reconstruct summaries for
    // every SCC the cache covers.
    let (mut cache, hashes, cached_summaries) = match &options.summary_cache {
        Some(path) => {
            let (cache, err) = SummaryCache::load(path);
            report.cache_errors.extend(err);
            let hashes = scc_hashes(&program, &info, &config, &dag);
            let cached: Vec<Option<Vec<EscapeSummary>>> = (0..n)
                .map(|id| cache_lookup(&cache, hashes[id], &members[id], &info))
                .collect();
            (Some(cache), hashes, cached)
        }
        None => (None, Vec::new(), vec![None; n]),
    };
    let hit: Vec<bool> = cached_summaries.iter().map(Option::is_some).collect();
    if cache.is_some() {
        report.cache_hits = hit.iter().filter(|h| **h).count();
        report.cache_misses = n - report.cache_hits;
    }

    // The solve set: every miss, plus (transitively) everything a miss
    // needs slot values from. Pure hits outside this set are skipped
    // entirely — that is what makes a warm run re-analyze nothing.
    let mut need: Vec<bool> = hit.iter().map(|h| !h).collect();
    for id in (0..n).rev() {
        if need[id] {
            for &d in &dag.sccs[id].deps {
                need[d] = true;
            }
        }
    }
    report.sccs_solved = need.iter().filter(|n| **n).count();

    // One governor per solved SCC, all sharing the analysis start instant
    // so the wall-clock deadline stays analysis-relative, each metering an
    // equal share of the budget. Degradation is thereby confined: an SCC
    // that burns its share trips only its own governor.
    let started = Instant::now();
    let share = budget.apportion(report.sccs_solved.max(1));
    let governors: Vec<Option<Governor>> = (0..n)
        .map(|id| need[id].then(|| Governor::with_start(share, started)))
        .collect();

    // One lambda index for every engine this run creates, and one shared
    // slot map that engines read through lazily — per-SCC setup is then
    // proportional to the component, not the program.
    let index = Arc::new(ProgramIndex::build(&program));
    let shared: SharedSlots = Arc::new(RwLock::new(HashMap::new()));
    let top_env = build_top_env(&program);

    let batches = plan_batches(&program, &dag, options.jobs.max(1));
    report.batch_count = batches.len();
    let runner = BatchRunner {
        program: &program,
        info: &info,
        config: &config,
        index: &index,
        top_env: &top_env,
        shared: &shared,
        governors: &governors,
        members: &members,
        need: &need,
        hit: &hit,
    };
    let (outcomes, steals) = runner.run(&batches, options.jobs.max(1));
    report.steals = steals;
    let mut solved: BTreeMap<usize, SccOutcome> = BTreeMap::new();
    for o in outcomes {
        solved.insert(o.id, o);
    }

    let mut summaries = BTreeMap::new();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut stats = EngineStats::default();
    let mut taint: Vec<Option<Symbol>> = vec![None; n];
    let mut precise: Vec<bool> = vec![false; n];

    // Deterministic merge: ascending SCC id, whatever the worker
    // interleaving was. Dependencies have strictly smaller ids, so their
    // taint state is final when a component is visited.
    for id in 0..n {
        let inherited = dag.sccs[id].deps.iter().find_map(|&d| taint[d]);
        if !need[id] {
            // Pure cache hit, never touched this run: its cached
            // summaries were computed from exact inputs in an earlier
            // run, so it is precise regardless of this run's faults.
            for s in cached_summaries[id].clone().unwrap_or_default() {
                summaries.insert(s.name, s);
            }
            precise[id] = true;
            continue;
        }
        let Some(o) = solved.remove(&id) else {
            continue;
        };
        merge_stats(&mut stats, &o.stats);
        taint[id] = o.taint.or(inherited);
        if let Some(cached) = &cached_summaries[id] {
            // Solved only for its slot values; the summaries come from
            // the cache and are exact, so no degradation records even
            // if this run's slot solve was cut short (the taint flag
            // still protects dependents).
            for s in cached.clone() {
                summaries.insert(s.name, s);
            }
            precise[id] = true;
            continue;
        }
        precise[id] = o.taint.is_none() && inherited.is_none() && o.degradations.is_empty();
        let own: BTreeSet<Symbol> = o.degradations.iter().map(|d| d.function).collect();
        for s in &o.summaries {
            summaries.insert(s.name, s.clone());
        }
        degradations.extend(o.degradations);
        if o.taint.is_none() {
            if let Some(origin) = inherited {
                // The summaries above were computed against a degraded
                // callee's worst-case slots: sound, kept as computed,
                // but flagged so `is_degraded` tells the truth.
                for s in &o.summaries {
                    if !own.contains(&s.name) {
                        degradations.push(Degradation {
                            function: s.name,
                            reason: DegradeReason::Transitive { origin },
                        });
                    }
                }
            }
        }
    }

    // Persist: store every precisely solved miss alongside what was
    // already cached. A fully warm run inserts nothing and must not
    // rewrite the file: the serialize+rename costs more than the whole
    // analysis on warm paths, and made warm runs *slower* than cold.
    if let (Some(cache), Some(path)) = (cache.as_mut(), options.summary_cache.as_ref()) {
        let mut dirty = false;
        for id in 0..n {
            if need[id] && !hit[id] && precise[id] {
                let fns = members[id]
                    .iter()
                    .filter_map(|m| summaries.get(m).map(cached_fn_of))
                    .collect();
                cache.insert(hashes[id], CachedScc { fns });
                dirty = true;
            }
        }
        if dirty {
            if let Err(e) = cache.save(path) {
                report.cache_errors.push(e);
            }
        }
    }

    Ok(Analysis {
        program,
        info,
        summaries,
        stats,
        degradations,
        schedule: report,
    })
}

/// One scheduling batch: a *consecutive* interval of SCC ids. Tarjan
/// numbers every dependency below its dependent, so interval batches
/// always condense to an acyclic quotient graph — a batch may depend
/// only on strictly earlier batches, never on a later one.
#[derive(Debug, Clone)]
pub(crate) struct Batch {
    /// SCC ids in ascending order (a contiguous range).
    pub ids: std::ops::Range<usize>,
    /// Indices of earlier batches this batch reads slot values from.
    pub deps: Vec<usize>,
}

/// Estimated solve cost of one binding: its AST node count.
fn binding_cost(b: &Binding) -> usize {
    let mut nodes = 0usize;
    walk_exprs(&b.expr, &mut |_| nodes += 1);
    nodes
}

/// Groups the condensation into interval batches of roughly even cost so
/// that tiny SCCs — the overwhelmingly common case — don't pay one
/// scheduling round-trip each. Aims for ~16 batches per worker.
pub(crate) fn plan_batches(program: &Program, dag: &SccDag, jobs: usize) -> Vec<Batch> {
    let n = dag.len();
    if n == 0 {
        return Vec::new();
    }
    let costs: Vec<usize> = (0..n)
        .map(|id| {
            dag.sccs[id]
                .members
                .iter()
                .map(|&m| binding_cost(&program.bindings[m]) + 8)
                .sum()
        })
        .collect();
    let total: usize = costs.iter().sum();
    let cap = (total / (jobs.max(1) * 16).max(1)).max(32);

    let mut batches: Vec<Batch> = Vec::new();
    let mut batch_of = vec![0usize; n];
    let mut start = 0usize;
    let mut acc = 0usize;
    for (id, &cost) in costs.iter().enumerate() {
        if acc > 0 && acc + cost > cap {
            batch_of[start..id].fill(batches.len());
            batches.push(Batch {
                ids: start..id,
                deps: Vec::new(),
            });
            start = id;
            acc = 0;
        }
        acc += cost;
    }
    batch_of[start..n].fill(batches.len());
    batches.push(Batch {
        ids: start..n,
        deps: Vec::new(),
    });

    for (bi, batch) in batches.iter_mut().enumerate() {
        let mut deps: Vec<usize> = batch
            .ids
            .clone()
            .flat_map(|id| dag.sccs[id].deps.iter().map(|&d| batch_of[d]))
            .filter(|&d| d != bi)
            .collect();
        deps.sort_unstable();
        deps.dedup();
        batch.deps = deps;
    }
    batches
}

/// Joins one engine's exported slots into the shared map. Values are
/// converged (or worst-case, under taint) and the lattice join is
/// commutative and idempotent, so merge order cannot change the result.
pub(crate) fn merge_into_shared(shared: &SharedSlots, slots: HashMap<RecKey, AbsVal>) {
    let mut w = shared.write().unwrap_or_else(|e| e.into_inner());
    for (k, v) in slots {
        match w.entry(k) {
            Entry::Occupied(mut o) => {
                let joined = o.get().join(&v);
                if joined != *o.get() {
                    *o.get_mut() = joined;
                }
            }
            Entry::Vacant(vac) => {
                vac.insert(v);
            }
        }
    }
}

/// Everything the batch workers need, borrowed from the driver.
pub(crate) struct BatchRunner<'s, 'a> {
    pub program: &'a Program,
    pub info: &'a TypeInfo,
    pub config: &'s EngineConfig,
    pub index: &'s Arc<ProgramIndex<'a>>,
    pub top_env: &'s AbsEnv,
    pub shared: &'s SharedSlots,
    pub governors: &'s [Option<Governor>],
    pub members: &'s [Vec<Symbol>],
    pub need: &'s [bool],
    pub hit: &'s [bool],
}

impl<'s, 'a: 's> BatchRunner<'s, 'a> {
    /// Solves every needed SCC of one batch in ascending id order,
    /// merging each component's slots into the shared map as it lands
    /// (later SCCs of the same batch may read them).
    fn run_batch(&self, batch: &Batch, out: &mut Vec<SccOutcome>) {
        for id in batch.ids.clone() {
            if !self.need[id] {
                continue;
            }
            let governor = self.governors[id]
                .clone()
                .expect("solve set entry has a governor");
            // A cache-hit SCC inside the solve set only contributes slot
            // values; its summaries come from the cache, so the expensive
            // per-parameter queries are skipped.
            let mut o = solve_scc(
                id,
                self.program,
                self.info,
                self.config,
                Arc::clone(self.index),
                self.top_env.clone(),
                governor,
                &self.members[id],
                self.shared,
                !self.hit[id],
            );
            merge_into_shared(self.shared, std::mem::take(&mut o.slots));
            out.push(o);
        }
    }

    /// Runs all batches: in id order when serial, otherwise on `jobs`
    /// work-stealing workers over a dependency-counted ready queue.
    /// Returns the outcomes (arbitrary order) and the steal count.
    pub(crate) fn run(&self, batches: &[Batch], jobs: usize) -> (Vec<SccOutcome>, usize) {
        let mut outcomes = Vec::new();
        if jobs <= 1 || batches.len() <= 1 {
            for batch in batches {
                self.run_batch(batch, &mut outcomes);
            }
            return (outcomes, 0);
        }

        let nb = batches.len();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut indegree_init = vec![0usize; nb];
        for (bi, b) in batches.iter().enumerate() {
            indegree_init[bi] = b.deps.len();
            for &d in &b.deps {
                dependents[d].push(bi);
            }
        }
        let indegree: Vec<AtomicUsize> =
            indegree_init.iter().map(|&d| AtomicUsize::new(d)).collect();
        let workers = jobs.min(nb).max(1);
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        // Seed ready batches round-robin across the workers.
        let mut seed = 0usize;
        for (bi, &d) in indegree_init.iter().enumerate() {
            if d == 0 {
                deques[seed % workers].lock().unwrap().push_back(bi);
                seed += 1;
            }
        }
        let pending = AtomicUsize::new(nb);
        let steals = AtomicUsize::new(0);
        let sink: Mutex<Vec<SccOutcome>> = Mutex::new(Vec::new());
        let idle = (Mutex::new(()), Condvar::new());

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let dependents = &dependents;
                    let indegree = &indegree;
                    let pending = &pending;
                    let steals = &steals;
                    let sink = &sink;
                    let idle = &idle;
                    s.spawn(move || {
                        let mut local: Vec<SccOutcome> = Vec::new();
                        loop {
                            // Own deque first (LIFO: freshly unlocked work
                            // is cache-warm), then steal FIFO from others.
                            let mut task = deques[w].lock().unwrap().pop_back();
                            if task.is_none() {
                                for (v, victim) in deques.iter().enumerate() {
                                    if v == w {
                                        continue;
                                    }
                                    task = victim.lock().unwrap().pop_front();
                                    if task.is_some() {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                            let Some(bi) = task else {
                                if pending.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                // Nothing runnable yet: naps are bounded so
                                // a missed notification can only cost a
                                // millisecond, not a deadlock.
                                let guard = idle.0.lock().unwrap();
                                let _ = idle
                                    .1
                                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                                    .unwrap();
                                continue;
                            };
                            self.run_batch(&batches[bi], &mut local);
                            for &dep in &dependents[bi] {
                                if indegree[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    deques[w].lock().unwrap().push_back(dep);
                                }
                            }
                            pending.fetch_sub(1, Ordering::AcqRel);
                            idle.1.notify_all();
                        }
                        sink.lock().unwrap().append(&mut local);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("SCC worker thread panicked");
            }
        });
        outcomes = sink.into_inner().unwrap();
        (outcomes, steals.into_inner())
    }
}

/// Solves one SCC: a local slot fixpoint over its members against the
/// shared slot map (read through lazily), then (unless served by the
/// cache) the global escape test for each function member. Engine faults
/// follow the same quarantine discipline as the whole-program driver,
/// but confined to this component.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_scc<'a>(
    id: usize,
    program: &'a Program,
    info: &'a TypeInfo,
    config: &EngineConfig,
    index: Arc<ProgramIndex<'a>>,
    top_env: AbsEnv,
    governor: Governor,
    members: &[Symbol],
    base: &SharedSlots,
    run_queries: bool,
) -> SccOutcome {
    let scope: BTreeSet<Symbol> = members.iter().copied().collect();
    let build = |gov: Governor| {
        let mut e = Engine::with_index(program, info, config.clone(), Arc::clone(&index));
        e.set_governor(gov);
        e.set_scope(Some(scope.clone()));
        e.set_base_slots(Some(Arc::clone(base)));
        e.set_top_env(top_env.clone());
        e
    };
    let mut engine = build(governor.clone());
    let mut out = SccOutcome {
        id,
        slots: HashMap::new(),
        summaries: Vec::new(),
        degradations: Vec::new(),
        stats: EngineStats::default(),
        taint: None,
    };

    // Phase 1: converge every member slot.
    let phase1 = catch_unwind(AssertUnwindSafe(|| {
        engine.run(|en| {
            members
                .iter()
                .map(|m| en.top_value(*m))
                .collect::<Vec<AbsVal>>()
        })
    }));
    let slot_fault = match phase1 {
        Ok(Ok(_)) => None,
        Ok(Err(e)) => Some(DegradeReason::Engine(e)),
        Err(payload) => Some(DegradeReason::Panic(panic_message(payload))),
    };
    if let Some(reason) = slot_fault {
        // The member slots never converged: nothing this SCC exports can
        // be trusted as exact. Every function member degrades to `W^τ`,
        // the exported slots become the domain's top for their types
        // (sound for any true value), and the component is marked as a
        // degradation origin for its dependents.
        merge_stats(&mut out.stats, &engine.stats);
        let empty: AbsEnv = Arc::new(BTreeMap::new());
        for m in members {
            let Some(sig) = info.sig(*m) else { continue };
            let key = RecKey {
                letrec: program.body.id,
                name: *m,
                outer: empty.clone(),
            };
            out.slots
                .insert(key, worst_value(sig, Be::escaping(info.max_spines)));
            if !sig.uncurry().0.is_empty() {
                out.summaries.push(worst_case_summary(*m, sig));
                out.degradations.push(Degradation {
                    function: *m,
                    reason: reason.clone(),
                });
            }
        }
        out.taint = members.first().copied();
        return out;
    }

    // Phase 2: per-member global escape tests, panic-quarantined exactly
    // like the whole-program driver (rebuild on unwind, shared governor
    // keeps the SCC's budget cumulative across rebuilds). A query fault
    // degrades that member only: the converged slots stay exact, so no
    // taint is raised for dependents.
    if run_queries {
        for m in members {
            let Some(sig) = info.sig(*m).cloned() else {
                continue;
            };
            if sig.uncurry().0.is_empty() {
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| global_escape(&mut engine, *m)));
            match outcome {
                Ok(Ok(summary)) => out.summaries.push(summary),
                Ok(Err(e)) => {
                    out.summaries.push(worst_case_summary(*m, &sig));
                    out.degradations.push(Degradation {
                        function: *m,
                        reason: DegradeReason::Engine(e),
                    });
                }
                Err(payload) => {
                    out.summaries.push(worst_case_summary(*m, &sig));
                    out.degradations.push(Degradation {
                        function: *m,
                        reason: DegradeReason::Panic(panic_message(payload)),
                    });
                    merge_stats(&mut out.stats, &engine.stats);
                    engine = build(governor.clone());
                }
            }
        }
    }
    merge_stats(&mut out.stats, &engine.stats);
    out.slots = engine.export_slots();
    out
}

const CACHE_SALT: &str = "nml-scc-v3";

/// The configuration part of every content hash. `max_spines` matters:
/// it bounds the `B_e` domain, so summaries computed under a different
/// spine depth are not interchangeable.
pub(crate) fn config_salt(info: &TypeInfo, config: &EngineConfig) -> String {
    format!(
        "{} {} {} {}",
        config.max_passes, config.widen_depth, config.widen_arity, info.max_spines
    )
}

/// Content hash of one binding: name, pretty-printed source, signature.
pub(crate) fn binding_hash(b: &Binding, info: &TypeInfo) -> u64 {
    let mut h = ContentHash::new();
    h.write_str(b.name.as_str());
    h.write_str(&pretty_expr(&b.expr));
    match info.sig(b.name) {
        Some(sig) => h.write_str(&sig.to_string()),
        None => h.write_str("?"),
    }
    h.finish()
}

/// Combines per-binding hashes into transitive per-SCC hashes, in id
/// order. Dependencies always have smaller ids (Tarjan emits callees
/// first), so one forward sweep settles the transitive keys. Shared by
/// the disk cache and the in-process incremental re-solver, which is
/// what makes "dirty" mean the same thing in both.
pub(crate) fn combine_scc_hashes(salt: &str, dag: &SccDag, binding_hashes: &[u64]) -> Vec<u64> {
    let mut hashes = vec![0u64; dag.len()];
    for id in 0..dag.len() {
        hashes[id] = scc_hash_one(salt, dag, id, binding_hashes, &hashes);
    }
    hashes
}

/// Recomputes in place only the transitive hashes of the SCCs flagged in
/// `changed`, leaving the rest untouched. Sound because `changed` is
/// closed under dependents (a flag implies every dependent is flagged
/// too) and dependencies have smaller ids, so each recomputation reads
/// already-settled values.
pub(crate) fn update_scc_hashes(
    salt: &str,
    dag: &SccDag,
    binding_hashes: &[u64],
    hashes: &mut [u64],
    changed: &[bool],
) {
    for id in 0..dag.len() {
        if changed[id] {
            let h = scc_hash_one(salt, dag, id, binding_hashes, hashes);
            hashes[id] = h;
        }
    }
}

/// The transitive content hash of one SCC, given settled hashes for every
/// smaller id. This is the single definition of the hash layout; both the
/// full and the partial sweep go through it.
fn scc_hash_one(
    salt: &str,
    dag: &SccDag,
    id: usize,
    binding_hashes: &[u64],
    hashes: &[u64],
) -> u64 {
    let mut h = ContentHash::new();
    h.write_str(CACHE_SALT);
    h.write_str(salt);
    for &m in &dag.sccs[id].members {
        h.write_str(&format!("{:016x}", binding_hashes[m]));
    }
    let mut dep_hashes: Vec<u64> = dag.sccs[id].deps.iter().map(|&d| hashes[d]).collect();
    dep_hashes.sort_unstable();
    for dh in dep_hashes {
        h.write_str(&format!("{dh:016x}"));
    }
    h.finish()
}

/// Content hashes for every SCC, in id order.
pub(crate) fn scc_hashes(
    program: &Program,
    info: &TypeInfo,
    config: &EngineConfig,
    dag: &SccDag,
) -> Vec<u64> {
    let per_binding: Vec<u64> = program
        .bindings
        .iter()
        .map(|b| binding_hash(b, info))
        .collect();
    combine_scc_hashes(&config_salt(info, config), dag, &per_binding)
}

/// A cache hit for one SCC: the entry exists and reconstructs a summary
/// for every function member. Anything less is a miss.
fn cache_lookup(
    cache: &SummaryCache,
    hash: u64,
    members: &[Symbol],
    info: &TypeInfo,
) -> Option<Vec<EscapeSummary>> {
    let entry = cache.get(hash)?;
    let mut out = Vec::new();
    for m in members {
        let Some(sig) = info.sig(*m) else { continue };
        if sig.uncurry().0.is_empty() {
            continue;
        }
        out.push(entry.summary_for(*m, sig)?);
    }
    Some(out)
}
