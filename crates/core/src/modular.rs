//! The SCC-modular summary scheduler.
//!
//! Instead of one whole-program Kleene iteration, the program's top-level
//! bindings are condensed into a call-graph SCC DAG
//! ([`nml_syntax::callgraph`]) and solved one component at a time, in
//! callees-first topological order. Each SCC gets its own [`Engine`]
//! scoped to the component's members and *seeded* with the converged slot
//! values of every callee SCC, so its fixpoint is small and local. Solving
//! in dependency order against finalized callee values computes exactly
//! the same least fixpoint as the global iteration (the slot/memo
//! equations form a deterministic monotone system; pinning an equation at
//! its own least solution changes nothing), which the equivalence test
//! suite checks program-by-program.
//!
//! The modular structure buys three things the monolithic engine could
//! not offer:
//!
//! - **fault isolation**: the [`Budget`] is apportioned per SCC, so one
//!   adversarial component degrades to `W^τ` alone instead of starving
//!   the whole pass — dependents keep their computed summaries and are
//!   merely flagged transitively degraded;
//! - **parallelism**: SCCs of the same scheduling wave have no dependency
//!   path between them and run on worker threads (`jobs > 1`) with a
//!   deterministic ascending-id merge;
//! - **incrementality**: a persistent [`SummaryCache`] keyed by each
//!   SCC's content hash (source + signatures + transitive dependency
//!   hashes) lets repeated runs skip unchanged components entirely.

use crate::absval::{AbsEnv, AbsVal, RecKey};
use crate::analysis::{merge_stats, panic_message, Analysis, Degradation, DegradeReason};
use crate::be::Be;
use crate::budget::{Budget, Governor};
use crate::cache::{cached_fn_of, CachedScc, ContentHash, SummaryCache};
use crate::engine::{worst_value, Engine, EngineConfig, EngineStats};
use crate::error::AnalyzeError;
use crate::global::{global_escape, worst_case_summary, EscapeSummary};
use nml_syntax::callgraph::{CallGraph, SccDag};
use nml_syntax::{pretty_expr, Program, Symbol};
use nml_types::TypeInfo;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// How the modular scheduler should run.
#[derive(Debug, Clone, Default)]
pub struct ScheduleOptions {
    /// Worker threads per wave. `0` and `1` both mean serial; the merge
    /// order (and therefore every result) is identical for any value.
    pub jobs: usize,
    /// Path of the persistent summary cache, if any.
    pub summary_cache: Option<PathBuf>,
}

/// What the scheduler did, for diagnostics and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Number of SCCs in the condensed call graph.
    pub scc_count: usize,
    /// Number of scheduling waves.
    pub wave_count: usize,
    /// SCCs actually solved this run (cache misses plus the dependencies
    /// their slots required). A fully warm cache makes this `0`.
    pub sccs_solved: usize,
    /// SCCs whose summaries were served from the cache.
    pub cache_hits: usize,
    /// SCCs the cache did not cover (always `0` without a cache path).
    pub cache_misses: usize,
    /// Worker threads used per wave (`1` = serial).
    pub jobs: usize,
    /// Cache load/save problems, in the order they occurred (the
    /// analysis itself always completes; cache trouble only costs
    /// reuse). A salvaging load and a failed save each contribute one
    /// entry, so neither can shadow the other.
    pub cache_errors: Vec<String>,
}

/// Everything one solved SCC hands back to the merge step.
struct SccOutcome {
    id: usize,
    slots: HashMap<RecKey, AbsVal>,
    summaries: Vec<EscapeSummary>,
    degradations: Vec<Degradation>,
    stats: EngineStats,
    /// `Some(origin)` when the exported slots are *not* exact (the slot
    /// fixpoint failed or the engine unwound): dependents consuming them
    /// must be flagged transitively degraded.
    taint: Option<Symbol>,
}

/// Analyzes an already-typed program with the SCC-modular scheduler.
///
/// This is the modular counterpart of
/// [`analyze_program_whole_program`](crate::analysis::analyze_program_whole_program):
/// identical summaries (the equivalence suite checks this), but with
/// per-SCC budget apportionment, optional wave parallelism, and an
/// optional persistent summary cache.
///
/// # Errors
///
/// None in practice; the `Result` is kept for signature stability with
/// the syntax/type phases.
pub fn analyze_program_scheduled(
    program: Program,
    info: TypeInfo,
    config: EngineConfig,
    budget: Budget,
    options: &ScheduleOptions,
) -> Result<Analysis, AnalyzeError> {
    let graph = CallGraph::build(&program);
    let dag = graph.condense();
    let n = dag.len();
    let members: Vec<Vec<Symbol>> = (0..n).map(|id| dag.member_names(&graph, id)).collect();

    let mut report = ScheduleReport {
        scc_count: n,
        wave_count: dag.wave_count(),
        jobs: options.jobs.max(1),
        ..ScheduleReport::default()
    };

    // Cache lookup: compute content hashes and reconstruct summaries for
    // every SCC the cache covers.
    let (mut cache, hashes, cached_summaries) = match &options.summary_cache {
        Some(path) => {
            let (cache, err) = SummaryCache::load(path);
            report.cache_errors.extend(err);
            let hashes = scc_hashes(&program, &info, &config, &dag);
            let cached: Vec<Option<Vec<EscapeSummary>>> = (0..n)
                .map(|id| cache_lookup(&cache, hashes[id], &members[id], &info))
                .collect();
            (Some(cache), hashes, cached)
        }
        None => (None, Vec::new(), vec![None; n]),
    };
    let hit: Vec<bool> = cached_summaries.iter().map(Option::is_some).collect();
    if cache.is_some() {
        report.cache_hits = hit.iter().filter(|h| **h).count();
        report.cache_misses = n - report.cache_hits;
    }

    // The solve set: every miss, plus (transitively) everything a miss
    // needs slot values from. Pure hits outside this set are skipped
    // entirely — that is what makes a warm run re-analyze nothing.
    let mut need: Vec<bool> = hit.iter().map(|h| !h).collect();
    for id in (0..n).rev() {
        if need[id] {
            for &d in &dag.sccs[id].deps {
                need[d] = true;
            }
        }
    }
    report.sccs_solved = need.iter().filter(|n| **n).count();

    // One governor per solved SCC, all sharing the analysis start instant
    // so the wall-clock deadline stays analysis-relative, each metering an
    // equal share of the budget. Degradation is thereby confined: an SCC
    // that burns its share trips only its own governor.
    let started = Instant::now();
    let share = budget.apportion(report.sccs_solved.max(1));
    let governors: Vec<Option<Governor>> = (0..n)
        .map(|id| need[id].then(|| Governor::with_start(share, started)))
        .collect();

    let mut snapshot: HashMap<RecKey, AbsVal> = HashMap::new();
    let mut summaries = BTreeMap::new();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut stats = EngineStats::default();
    let mut taint: Vec<Option<Symbol>> = vec![None; n];
    let mut precise: Vec<bool> = vec![false; n];

    for wave in dag.waves() {
        let to_solve: Vec<usize> = wave.iter().copied().filter(|&id| need[id]).collect();
        let mut outcomes: Vec<SccOutcome> = run_wave(
            &to_solve,
            options.jobs.max(1),
            &program,
            &info,
            &config,
            &governors,
            &members,
            &snapshot,
            &hit,
        );
        // Deterministic merge: ascending SCC id, whatever the thread
        // interleaving was.
        outcomes.sort_by_key(|o| o.id);
        let mut solved: BTreeMap<usize, SccOutcome> = BTreeMap::new();
        for o in outcomes.drain(..) {
            solved.insert(o.id, o);
        }
        for &id in &wave {
            // Dependencies are all in strictly earlier waves, so their
            // taint state is final by now.
            let inherited = dag.sccs[id].deps.iter().find_map(|&d| taint[d]);
            if !need[id] {
                // Pure cache hit, never touched this run: its cached
                // summaries were computed from exact inputs in an earlier
                // run, so it is precise regardless of this run's faults.
                for s in cached_summaries[id].clone().unwrap_or_default() {
                    summaries.insert(s.name, s);
                }
                precise[id] = true;
                continue;
            }
            let Some(o) = solved.remove(&id) else {
                continue;
            };
            for (k, v) in o.slots {
                let entry = snapshot.entry(k).or_default();
                let joined = entry.join(&v);
                if joined != *entry {
                    *entry = joined;
                }
            }
            merge_stats(&mut stats, &o.stats);
            taint[id] = o.taint.or(inherited);
            if let Some(cached) = &cached_summaries[id] {
                // Solved only for its slot values; the summaries come from
                // the cache and are exact, so no degradation records even
                // if this run's slot solve was cut short (the taint flag
                // still protects dependents).
                for s in cached.clone() {
                    summaries.insert(s.name, s);
                }
                precise[id] = true;
                continue;
            }
            precise[id] = o.taint.is_none() && inherited.is_none() && o.degradations.is_empty();
            let own: BTreeSet<Symbol> = o.degradations.iter().map(|d| d.function).collect();
            for s in &o.summaries {
                summaries.insert(s.name, s.clone());
            }
            degradations.extend(o.degradations);
            if o.taint.is_none() {
                if let Some(origin) = inherited {
                    // The summaries above were computed against a degraded
                    // callee's worst-case slots: sound, kept as computed,
                    // but flagged so `is_degraded` tells the truth.
                    for s in &o.summaries {
                        if !own.contains(&s.name) {
                            degradations.push(Degradation {
                                function: s.name,
                                reason: DegradeReason::Transitive { origin },
                            });
                        }
                    }
                }
            }
        }
    }

    // Persist: store every precisely solved miss alongside what was
    // already cached. A fully warm run inserts nothing and must not
    // rewrite the file: the serialize+rename costs more than the whole
    // analysis on warm paths, and made warm runs *slower* than cold.
    if let (Some(cache), Some(path)) = (cache.as_mut(), options.summary_cache.as_ref()) {
        let mut dirty = false;
        for id in 0..n {
            if need[id] && !hit[id] && precise[id] {
                let fns = members[id]
                    .iter()
                    .filter_map(|m| summaries.get(m).map(cached_fn_of))
                    .collect();
                cache.insert(hashes[id], CachedScc { fns });
                dirty = true;
            }
        }
        if dirty {
            if let Err(e) = cache.save(path) {
                report.cache_errors.push(e);
            }
        }
    }

    Ok(Analysis {
        program,
        info,
        summaries,
        stats,
        degradations,
        schedule: report,
    })
}

/// Solves one wave's SCCs, serially or on `jobs` worker threads. Returns
/// outcomes in arbitrary order; the caller sorts.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    to_solve: &[usize],
    jobs: usize,
    program: &Program,
    info: &TypeInfo,
    config: &EngineConfig,
    governors: &[Option<Governor>],
    members: &[Vec<Symbol>],
    snapshot: &HashMap<RecKey, AbsVal>,
    hit: &[bool],
) -> Vec<SccOutcome> {
    let solve = |id: usize| {
        let governor = governors[id]
            .clone()
            .expect("solve set entry has a governor");
        // A cache-hit SCC inside the solve set only contributes slot
        // values; its summaries come from the cache, so the expensive
        // per-parameter queries are skipped.
        solve_scc(
            id,
            program,
            info,
            config,
            governor,
            &members[id],
            snapshot,
            !hit[id],
        )
    };
    if jobs <= 1 || to_solve.len() <= 1 {
        return to_solve.iter().map(|&id| solve(id)).collect();
    }
    let buckets = {
        let count = jobs.min(to_solve.len());
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); count];
        for (i, &id) in to_solve.iter().enumerate() {
            buckets[i % count].push(id);
        }
        buckets
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| s.spawn(move || bucket.into_iter().map(solve).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("SCC worker thread panicked"))
            .collect()
    })
}

/// Solves one SCC: a local slot fixpoint over its members against the
/// seeded snapshot, then (unless served by the cache) the global escape
/// test for each function member. Engine faults follow the same
/// quarantine discipline as the whole-program driver, but confined to
/// this component.
#[allow(clippy::too_many_arguments)]
fn solve_scc(
    id: usize,
    program: &Program,
    info: &TypeInfo,
    config: &EngineConfig,
    governor: Governor,
    members: &[Symbol],
    snapshot: &HashMap<RecKey, AbsVal>,
    run_queries: bool,
) -> SccOutcome {
    let scope: BTreeSet<Symbol> = members.iter().copied().collect();
    let build = |gov: Governor| {
        let mut e = Engine::with_config(program, info, config.clone());
        e.set_governor(gov);
        e.set_scope(Some(scope.clone()));
        e.seed_slots(snapshot);
        e
    };
    let mut engine = build(governor.clone());
    let mut out = SccOutcome {
        id,
        slots: HashMap::new(),
        summaries: Vec::new(),
        degradations: Vec::new(),
        stats: EngineStats::default(),
        taint: None,
    };

    // Phase 1: converge every member slot.
    let phase1 = catch_unwind(AssertUnwindSafe(|| {
        engine.run(|en| {
            members
                .iter()
                .map(|m| en.top_value(*m))
                .collect::<Vec<AbsVal>>()
        })
    }));
    let slot_fault = match phase1 {
        Ok(Ok(_)) => None,
        Ok(Err(e)) => Some(DegradeReason::Engine(e)),
        Err(payload) => Some(DegradeReason::Panic(panic_message(payload))),
    };
    if let Some(reason) = slot_fault {
        // The member slots never converged: nothing this SCC exports can
        // be trusted as exact. Every function member degrades to `W^τ`,
        // the exported slots become the domain's top for their types
        // (sound for any true value), and the component is marked as a
        // degradation origin for its dependents.
        merge_stats(&mut out.stats, &engine.stats);
        let empty: AbsEnv = Arc::new(BTreeMap::new());
        for m in members {
            let Some(sig) = info.sig(*m) else { continue };
            let key = RecKey {
                letrec: program.body.id,
                name: *m,
                outer: empty.clone(),
            };
            out.slots
                .insert(key, worst_value(sig, Be::escaping(info.max_spines)));
            if !sig.uncurry().0.is_empty() {
                out.summaries.push(worst_case_summary(*m, sig));
                out.degradations.push(Degradation {
                    function: *m,
                    reason: reason.clone(),
                });
            }
        }
        out.taint = members.first().copied();
        return out;
    }

    // Phase 2: per-member global escape tests, panic-quarantined exactly
    // like the whole-program driver (rebuild on unwind, shared governor
    // keeps the SCC's budget cumulative across rebuilds). A query fault
    // degrades that member only: the converged slots stay exact, so no
    // taint is raised for dependents.
    if run_queries {
        for m in members {
            let Some(sig) = info.sig(*m).cloned() else {
                continue;
            };
            if sig.uncurry().0.is_empty() {
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| global_escape(&mut engine, *m)));
            match outcome {
                Ok(Ok(summary)) => out.summaries.push(summary),
                Ok(Err(e)) => {
                    out.summaries.push(worst_case_summary(*m, &sig));
                    out.degradations.push(Degradation {
                        function: *m,
                        reason: DegradeReason::Engine(e),
                    });
                }
                Err(payload) => {
                    out.summaries.push(worst_case_summary(*m, &sig));
                    out.degradations.push(Degradation {
                        function: *m,
                        reason: DegradeReason::Panic(panic_message(payload)),
                    });
                    merge_stats(&mut out.stats, &engine.stats);
                    engine = build(governor.clone());
                }
            }
        }
    }
    merge_stats(&mut out.stats, &engine.stats);
    out.slots = engine.export_slots();
    out
}

const CACHE_SALT: &str = "nml-scc-v1";

/// Content hashes for every SCC, in id order. Dependencies always have
/// smaller ids (Tarjan emits callees first), so one forward sweep settles
/// the transitive keys.
fn scc_hashes(program: &Program, info: &TypeInfo, config: &EngineConfig, dag: &SccDag) -> Vec<u64> {
    let mut hashes = vec![0u64; dag.len()];
    for id in 0..dag.len() {
        let mut h = ContentHash::new();
        h.write_str(CACHE_SALT);
        h.write_str(&format!(
            "{} {} {}",
            config.max_passes, config.widen_depth, config.widen_arity
        ));
        for &m in &dag.sccs[id].members {
            let b = &program.bindings[m];
            h.write_str(b.name.as_str());
            h.write_str(&pretty_expr(&b.expr));
            match info.sig(b.name) {
                Some(sig) => h.write_str(&sig.to_string()),
                None => h.write_str("?"),
            }
        }
        let mut dep_hashes: Vec<u64> = dag.sccs[id].deps.iter().map(|&d| hashes[d]).collect();
        dep_hashes.sort_unstable();
        for dh in dep_hashes {
            h.write_str(&format!("{dh:016x}"));
        }
        hashes[id] = h.finish();
    }
    hashes
}

/// A cache hit for one SCC: the entry exists and reconstructs a summary
/// for every function member. Anything less is a miss.
fn cache_lookup(
    cache: &SummaryCache,
    hash: u64,
    members: &[Symbol],
    info: &TypeInfo,
) -> Option<Vec<EscapeSummary>> {
    let entry = cache.get(hash)?;
    let mut out = Vec::new();
    for m in members {
        let Some(sig) = info.sig(*m) else { continue };
        if sig.uncurry().0.is_empty() {
            continue;
        }
        out.push(entry.summary_for(*m, sig)?);
    }
    Some(out)
}
