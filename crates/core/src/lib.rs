//! # nml-escape
//!
//! A faithful implementation of **“Escape Analysis on Lists”** (Young Gil
//! Park and Benjamin Goldberg, PLDI 1992): a compile-time analysis that
//! determines, for each parameter of each function in a higher-order
//! functional program, *how many spines* of that parameter may be returned
//! by (escape from) the function.
//!
//! The analysis is an abstract interpretation over a two-component domain:
//! each abstract value pairs an element of the finite basic escape domain
//! `B_e = {⟨0,0⟩ ⊑ ⟨1,0⟩ ⊑ … ⊑ ⟨1,d⟩}` (*what is contained in the
//! value*) with a function over abstract values (*its behaviour when
//! applied*). Fixpoints of recursive functions are found by Kleene
//! iteration ([`engine`]).
//!
//! On top of the interpreter sit the paper's four applications:
//!
//! - the **global escape test** `G(f, i, env)` ([`global`]) — what can
//!   escape in *any* application of `f`;
//! - the **local escape test** `L(f, i, e₁…eₙ, env)` ([`local`]) — what
//!   escapes one particular call;
//! - **sharing analysis** (Theorem 2, [`sharing`]) — how many top spines
//!   of a call's result are unshared, the precondition for in-place reuse;
//! - **polymorphic invariance** (Theorem 1, [`poly`]) — transferring the
//!   analysis of the simplest monotype instance to every other instance.
//!
//! ## Quick start
//!
//! ```
//! use nml_escape::analyze_source;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let analysis = analyze_source(
//!     "letrec rev l = if (null l) then nil
//!                     else letrec snoc xs y = if (null xs) then cons y nil
//!                                             else cons (car xs) (snoc (cdr xs) y)
//!                          in snoc (rev (cdr l)) (car l)
//!      in rev [1, 2, 3]",
//! )?;
//! let rev = analysis.summary("rev").expect("rev analyzed");
//! // All but the top spine of rev's argument escapes: the top spine can
//! // be stack-allocated or destructively reused.
//! assert_eq!(rev.param(0).retained_spines(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod absval;
pub mod analysis;
pub mod be;
pub mod budget;
pub mod cache;
pub mod engine;
pub mod error;
pub mod escape_class;
pub mod escape_lattice;
pub mod global;
pub mod incremental;
pub mod local;
pub mod modular;
pub mod poly;
pub mod reference;
pub mod sharing;

pub use absval::{AbsEnv, AbsVal, EnvEntry, FunVal, RecKey};
pub use analysis::{
    analyze_program, analyze_program_governed, analyze_program_whole_program, analyze_source,
    analyze_source_governed, analyze_source_scheduled, analyze_source_with, Analysis, Degradation,
    DegradeReason, PolyMode,
};
pub use be::Be;
pub use budget::{Budget, Governor, Resource};
pub use cache::SummaryCache;
pub use engine::{worst_value, Engine, EngineConfig, EngineStats};
pub use error::{AnalyzeError, EscapeError};
pub use escape_class::{classify_param, classify_result, EscapeClass};
pub use escape_lattice::{class_of_state, state_of_param, AliasClasses, EscapeState};
pub use global::{
    global_escape, global_escape_param, worst_case_summary, EscapeSummary, ParamEscape,
};
pub use incremental::{Incremental, UpdateError};
pub use local::{local_escape, LocalEscape};
pub use modular::{analyze_program_scheduled, ScheduleOptions, ScheduleReport};
pub use poly::{invariance_holds, transfer_param, transfer_verdict};
pub use reference::{
    reference_global, tabulate_program, tabulate_program_governed, BeTable, NotFirstOrder,
    TabulateError,
};
pub use sharing::{
    unshared_from_summary, unshared_result_spines, unshared_result_spines_any_args, ArgSharing,
};
