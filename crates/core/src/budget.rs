//! The resource governor: hard bounds on what one analysis may consume.
//!
//! A production analyzer must be *total*: no input — however adversarial —
//! may make it loop, blow up memory, or miss a deadline. The paper already
//! supplies the escape hatch that makes this free of soundness risk: any
//! function can be summarized by the worst-case function `W^τ`
//! (Definition 2), the top of the behaviour order, so when a resource
//! bound is hit the analysis can stop refining and report `W^τ` instead of
//! an error. A [`Budget`] names the bounds; a [`Governor`] meters usage
//! against them and reports the first bound crossed.
//!
//! The governor is deliberately *cumulative across engine rebuilds*: when
//! the driver quarantines a panicking function and constructs a fresh
//! engine, it clones the old governor into the new one, so one analysis
//! request can never exceed its budget by failing repeatedly.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource ceilings for one whole analysis (all functions, all fixpoint
/// queries). `Default` is effectively unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum total fixpoint passes across every query.
    pub max_passes: u32,
    /// Maximum total abstract-value nodes constructed (measured as the
    /// structural depth of every value the engine materializes).
    pub max_nodes: u64,
    /// Wall-clock deadline measured from governor creation.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No effective limits (the engine's own `max_passes` still applies
    /// per query).
    pub fn unlimited() -> Budget {
        Budget {
            max_passes: u32::MAX,
            max_nodes: u64::MAX,
            deadline: None,
        }
    }

    /// A small budget suitable for interactive or adversarial inputs:
    /// `passes` fixpoint passes, `nodes` abstract nodes, and an optional
    /// deadline.
    pub fn tight(passes: u32, nodes: u64, deadline: Option<Duration>) -> Budget {
        Budget {
            max_passes: passes,
            max_nodes: nodes,
            deadline,
        }
    }

    /// Splits this budget into `n` equal shares, one per independently
    /// governed unit of work (e.g. one per SCC of the call graph). The
    /// `u32::MAX` / `u64::MAX` sentinels of [`Budget::unlimited`] are
    /// preserved rather than divided, so an unlimited budget stays
    /// unlimited; every share keeps the full wall-clock deadline because
    /// the deadline is a point in time, not a divisible quantity.
    pub fn apportion(&self, n: usize) -> Budget {
        let n32 = u32::try_from(n.max(1)).unwrap_or(u32::MAX);
        let n64 = n.max(1) as u64;
        Budget {
            max_passes: if self.max_passes == u32::MAX {
                u32::MAX
            } else {
                (self.max_passes / n32).max(1)
            },
            max_nodes: if self.max_nodes == u64::MAX {
                u64::MAX
            } else {
                (self.max_nodes / n64).max(1)
            },
            deadline: self.deadline,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Which resource ran out first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The cumulative fixpoint pass bound.
    Passes,
    /// The abstract-value node bound.
    Nodes,
    /// The wall-clock deadline.
    WallClock,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Passes => f.write_str("fixpoint passes"),
            Resource::Nodes => f.write_str("abstract-value nodes"),
            Resource::WallClock => f.write_str("wall clock"),
        }
    }
}

/// Shared, atomically updated metering state. See [`Governor`].
#[derive(Debug)]
struct GovernorInner {
    budget: Budget,
    started: Instant,
    passes: AtomicU32,
    nodes: AtomicU64,
    checks: AtomicU32,
    /// 0 = not tripped; otherwise `Resource` discriminant + 1.
    tripped: AtomicU8,
}

const TRIP_NONE: u8 = 0;
const TRIP_PASSES: u8 = 1;
const TRIP_NODES: u8 = 2;
const TRIP_WALL_CLOCK: u8 = 3;

fn decode_trip(raw: u8) -> Option<Resource> {
    match raw {
        TRIP_PASSES => Some(Resource::Passes),
        TRIP_NODES => Some(Resource::Nodes),
        TRIP_WALL_CLOCK => Some(Resource::WallClock),
        _ => None,
    }
}

impl GovernorInner {
    fn trip(&self, code: u8) {
        // First trip wins; later trips of a different resource are ignored
        // so diagnostics always name the bound that was crossed first.
        let _ = self
            .tripped
            .compare_exchange(TRIP_NONE, code, Ordering::AcqRel, Ordering::Acquire);
    }

    fn tripped(&self) -> Option<Resource> {
        decode_trip(self.tripped.load(Ordering::Acquire))
    }
}

/// Meters resource usage against a [`Budget`]. Once a bound is crossed the
/// governor stays *tripped*: every subsequent check reports exhaustion, so
/// later queries on the same (or a rebuilt) engine degrade immediately
/// instead of spending resources that are already gone.
///
/// The meter itself lives behind an [`Arc`] of atomics, so `Clone` produces
/// a handle onto the *same* usage counters. That is what makes the governor
/// cumulative across engine rebuilds, and it is also what lets several
/// worker threads charge one shared budget without locks when SCC waves run
/// in parallel.
#[derive(Debug, Clone)]
pub struct Governor {
    inner: Arc<GovernorInner>,
}

impl Governor {
    /// Starts metering now.
    pub fn new(budget: Budget) -> Governor {
        Governor::with_start(budget, Instant::now())
    }

    /// Starts metering against a clock that began at `started`. Per-SCC
    /// governors use this so every share of an apportioned budget measures
    /// its wall-clock deadline from the start of the whole analysis.
    pub fn with_start(budget: Budget, started: Instant) -> Governor {
        Governor {
            inner: Arc::new(GovernorInner {
                budget,
                started,
                passes: AtomicU32::new(0),
                nodes: AtomicU64::new(0),
                checks: AtomicU32::new(0),
                tripped: AtomicU8::new(TRIP_NONE),
            }),
        }
    }

    /// The instant this governor's clock started.
    pub fn started(&self) -> Instant {
        self.inner.started
    }

    /// The budget being enforced.
    pub fn budget(&self) -> Budget {
        self.inner.budget
    }

    /// Total passes charged so far.
    pub fn passes_used(&self) -> u32 {
        self.inner.passes.load(Ordering::Acquire)
    }

    /// Total nodes charged so far.
    pub fn nodes_used(&self) -> u64 {
        self.inner.nodes.load(Ordering::Acquire)
    }

    /// The resource that ran out, if any.
    pub fn exhausted(&self) -> Option<Resource> {
        self.inner.tripped()
    }

    /// Charges one fixpoint pass and re-checks every bound.
    pub fn charge_pass(&self) -> Option<Resource> {
        let passes = self
            .inner
            .passes
            .fetch_add(1, Ordering::AcqRel)
            .saturating_add(1);
        if passes > self.inner.budget.max_passes {
            self.inner.trip(TRIP_PASSES);
        }
        self.check_deadline();
        self.inner.tripped()
    }

    /// Charges `n` abstract-value nodes. The deadline is polled only every
    /// 1024 charges to keep the hot path cheap.
    pub fn charge_nodes(&self, n: u64) -> Option<Resource> {
        let nodes = self
            .inner
            .nodes
            .fetch_add(n, Ordering::AcqRel)
            .saturating_add(n);
        if nodes > self.inner.budget.max_nodes {
            self.inner.trip(TRIP_NODES);
        }
        let checks = self.inner.checks.fetch_add(1, Ordering::AcqRel);
        if checks.wrapping_add(1).is_multiple_of(1024) {
            self.check_deadline();
        }
        self.inner.tripped()
    }

    /// Checks the wall-clock deadline immediately.
    pub fn check_deadline(&self) -> Option<Resource> {
        if let Some(d) = self.inner.budget.deadline {
            if self.inner.started.elapsed() >= d {
                self.inner.trip(TRIP_WALL_CLOCK);
            }
        }
        self.inner.tripped()
    }

    /// The limit of the given resource, as a number (milliseconds for the
    /// deadline), for diagnostics.
    pub fn limit_of(&self, r: Resource) -> u64 {
        match r {
            Resource::Passes => u64::from(self.inner.budget.max_passes),
            Resource::Nodes => self.inner.budget.max_nodes,
            Resource::WallClock => self
                .inner
                .budget
                .deadline
                .map_or(u64::MAX, |d| d.as_millis() as u64),
        }
    }

    /// Usage of the given resource, in the same unit as [`Governor::limit_of`].
    pub fn used_of(&self, r: Resource) -> u64 {
        match r {
            Resource::Passes => u64::from(self.passes_used()),
            Resource::Nodes => self.nodes_used(),
            Resource::WallClock => self.inner.started.elapsed().as_millis() as u64,
        }
    }
}

impl Default for Governor {
    fn default() -> Self {
        Governor::new(Budget::unlimited())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let g = Governor::default();
        for _ in 0..10_000 {
            assert_eq!(g.charge_pass(), None);
            assert_eq!(g.charge_nodes(1_000_000), None);
        }
    }

    #[test]
    fn pass_budget_trips_and_stays_tripped() {
        let g = Governor::new(Budget::tight(3, u64::MAX, None));
        assert_eq!(g.charge_pass(), None);
        assert_eq!(g.charge_pass(), None);
        assert_eq!(g.charge_pass(), None);
        assert_eq!(g.charge_pass(), Some(Resource::Passes));
        // Sticky: any later charge still reports exhaustion.
        assert_eq!(g.charge_nodes(1), Some(Resource::Passes));
        assert_eq!(g.exhausted(), Some(Resource::Passes));
    }

    #[test]
    fn node_budget_trips() {
        let g = Governor::new(Budget::tight(u32::MAX, 10, None));
        assert_eq!(g.charge_nodes(5), None);
        assert_eq!(g.charge_nodes(6), Some(Resource::Nodes));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Governor::new(Budget::tight(u32::MAX, u64::MAX, Some(Duration::ZERO)));
        assert_eq!(g.check_deadline(), Some(Resource::WallClock));
    }

    #[test]
    fn cloned_governor_keeps_usage() {
        let g = Governor::new(Budget::tight(2, u64::MAX, None));
        g.charge_pass();
        let g2 = g.clone();
        g2.charge_pass();
        assert_eq!(g2.charge_pass(), Some(Resource::Passes));
    }
}
