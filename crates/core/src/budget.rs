//! The resource governor: hard bounds on what one analysis may consume.
//!
//! A production analyzer must be *total*: no input — however adversarial —
//! may make it loop, blow up memory, or miss a deadline. The paper already
//! supplies the escape hatch that makes this free of soundness risk: any
//! function can be summarized by the worst-case function `W^τ`
//! (Definition 2), the top of the behaviour order, so when a resource
//! bound is hit the analysis can stop refining and report `W^τ` instead of
//! an error. A [`Budget`] names the bounds; a [`Governor`] meters usage
//! against them and reports the first bound crossed.
//!
//! The governor is deliberately *cumulative across engine rebuilds*: when
//! the driver quarantines a panicking function and constructs a fresh
//! engine, it clones the old governor into the new one, so one analysis
//! request can never exceed its budget by failing repeatedly.

use std::fmt;
use std::time::{Duration, Instant};

/// Resource ceilings for one whole analysis (all functions, all fixpoint
/// queries). `Default` is effectively unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum total fixpoint passes across every query.
    pub max_passes: u32,
    /// Maximum total abstract-value nodes constructed (measured as the
    /// structural depth of every value the engine materializes).
    pub max_nodes: u64,
    /// Wall-clock deadline measured from governor creation.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No effective limits (the engine's own `max_passes` still applies
    /// per query).
    pub fn unlimited() -> Budget {
        Budget {
            max_passes: u32::MAX,
            max_nodes: u64::MAX,
            deadline: None,
        }
    }

    /// A small budget suitable for interactive or adversarial inputs:
    /// `passes` fixpoint passes, `nodes` abstract nodes, and an optional
    /// deadline.
    pub fn tight(passes: u32, nodes: u64, deadline: Option<Duration>) -> Budget {
        Budget {
            max_passes: passes,
            max_nodes: nodes,
            deadline,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Which resource ran out first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The cumulative fixpoint pass bound.
    Passes,
    /// The abstract-value node bound.
    Nodes,
    /// The wall-clock deadline.
    WallClock,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Passes => f.write_str("fixpoint passes"),
            Resource::Nodes => f.write_str("abstract-value nodes"),
            Resource::WallClock => f.write_str("wall clock"),
        }
    }
}

/// Meters resource usage against a [`Budget`]. Once a bound is crossed the
/// governor stays *tripped*: every subsequent check reports exhaustion, so
/// later queries on the same (or a rebuilt) engine degrade immediately
/// instead of spending resources that are already gone.
#[derive(Debug, Clone)]
pub struct Governor {
    budget: Budget,
    started: Instant,
    passes: u32,
    nodes: u64,
    checks: u32,
    tripped: Option<Resource>,
}

impl Governor {
    /// Starts metering now.
    pub fn new(budget: Budget) -> Governor {
        Governor {
            budget,
            started: Instant::now(),
            passes: 0,
            nodes: 0,
            checks: 0,
            tripped: None,
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Total passes charged so far.
    pub fn passes_used(&self) -> u32 {
        self.passes
    }

    /// Total nodes charged so far.
    pub fn nodes_used(&self) -> u64 {
        self.nodes
    }

    /// The resource that ran out, if any.
    pub fn exhausted(&self) -> Option<Resource> {
        self.tripped
    }

    /// Charges one fixpoint pass and re-checks every bound.
    pub fn charge_pass(&mut self) -> Option<Resource> {
        self.passes = self.passes.saturating_add(1);
        if self.tripped.is_none() && self.passes > self.budget.max_passes {
            self.tripped = Some(Resource::Passes);
        }
        self.check_deadline();
        self.tripped
    }

    /// Charges `n` abstract-value nodes. The deadline is polled only every
    /// 1024 charges to keep the hot path cheap.
    pub fn charge_nodes(&mut self, n: u64) -> Option<Resource> {
        self.nodes = self.nodes.saturating_add(n);
        if self.tripped.is_none() && self.nodes > self.budget.max_nodes {
            self.tripped = Some(Resource::Nodes);
        }
        self.checks = self.checks.wrapping_add(1);
        if self.checks.is_multiple_of(1024) {
            self.check_deadline();
        }
        self.tripped
    }

    /// Checks the wall-clock deadline immediately.
    pub fn check_deadline(&mut self) -> Option<Resource> {
        if self.tripped.is_none() {
            if let Some(d) = self.budget.deadline {
                if self.started.elapsed() >= d {
                    self.tripped = Some(Resource::WallClock);
                }
            }
        }
        self.tripped
    }

    /// The limit of the given resource, as a number (milliseconds for the
    /// deadline), for diagnostics.
    pub fn limit_of(&self, r: Resource) -> u64 {
        match r {
            Resource::Passes => u64::from(self.budget.max_passes),
            Resource::Nodes => self.budget.max_nodes,
            Resource::WallClock => self
                .budget
                .deadline
                .map_or(u64::MAX, |d| d.as_millis() as u64),
        }
    }

    /// Usage of the given resource, in the same unit as [`Governor::limit_of`].
    pub fn used_of(&self, r: Resource) -> u64 {
        match r {
            Resource::Passes => u64::from(self.passes),
            Resource::Nodes => self.nodes,
            Resource::WallClock => self.started.elapsed().as_millis() as u64,
        }
    }
}

impl Default for Governor {
    fn default() -> Self {
        Governor::new(Budget::unlimited())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut g = Governor::default();
        for _ in 0..10_000 {
            assert_eq!(g.charge_pass(), None);
            assert_eq!(g.charge_nodes(1_000_000), None);
        }
    }

    #[test]
    fn pass_budget_trips_and_stays_tripped() {
        let mut g = Governor::new(Budget::tight(3, u64::MAX, None));
        assert_eq!(g.charge_pass(), None);
        assert_eq!(g.charge_pass(), None);
        assert_eq!(g.charge_pass(), None);
        assert_eq!(g.charge_pass(), Some(Resource::Passes));
        // Sticky: any later charge still reports exhaustion.
        assert_eq!(g.charge_nodes(1), Some(Resource::Passes));
        assert_eq!(g.exhausted(), Some(Resource::Passes));
    }

    #[test]
    fn node_budget_trips() {
        let mut g = Governor::new(Budget::tight(u32::MAX, 10, None));
        assert_eq!(g.charge_nodes(5), None);
        assert_eq!(g.charge_nodes(6), Some(Resource::Nodes));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let mut g = Governor::new(Budget::tight(
            u32::MAX,
            u64::MAX,
            Some(Duration::ZERO),
        ));
        assert_eq!(g.check_deadline(), Some(Resource::WallClock));
    }

    #[test]
    fn cloned_governor_keeps_usage() {
        let mut g = Governor::new(Budget::tight(2, u64::MAX, None));
        g.charge_pass();
        let mut g2 = g.clone();
        g2.charge_pass();
        assert_eq!(g2.charge_pass(), Some(Resource::Passes));
    }
}
