//! Sharing analysis derived from escape information (paper §6, Theorem 2).
//!
//! For a strict language, once escape counts are known, sharing of the
//! *result* of a call follows arithmetically. Let `f` take `n` arguments,
//! `d_i` the spines of the i-th parameter, `esc_i` its escaping spine
//! count, `d_f` the spines of the result, and `u_i` the number of
//! *unshared* top spines of the actual argument `e_i`. Then:
//!
//! 1. the top `d_f − max_i min(esc_i, d_i − u_i)` spines of the result of
//!    `(f e₁ … eₙ)` are unshared;
//! 2. with no knowledge of the arguments (`u_i = 0` worst case), the top
//!    `d_f − max_i esc_i` spines are unshared.
//!
//! Unshared spines are what in-place reuse may destructively recycle.

use crate::global::EscapeSummary;

/// Per-argument facts feeding Theorem 2, case 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgSharing {
    /// `esc_i`: escaping spine count of the parameter (from the global
    /// escape test).
    pub escaping_spines: u32,
    /// `d_i`: spine count of the parameter type.
    pub spines: u32,
    /// `u_i`: number of unshared top spines of the actual argument.
    pub unshared_spines: u32,
}

/// Theorem 2, case 1: unshared top spines of the result of
/// `(f e₁ … eₙ)` given per-argument sharing knowledge.
///
/// # Panics
///
/// Panics (debug assertion) if some `u_i > d_i` or `esc_i > d_i`, which
/// would be inconsistent inputs.
pub fn unshared_result_spines(result_spines: u32, args: &[ArgSharing]) -> u32 {
    let worst = args
        .iter()
        .map(|a| {
            debug_assert!(a.unshared_spines <= a.spines, "u_i exceeds d_i");
            debug_assert!(a.escaping_spines <= a.spines, "esc_i exceeds d_i");
            a.escaping_spines.min(a.spines - a.unshared_spines)
        })
        .max()
        .unwrap_or(0);
    result_spines.saturating_sub(worst)
}

/// Theorem 2, case 2: unshared top spines of the result for *any*
/// arguments (no sharing knowledge, `u_i = 0`).
///
/// ```
/// use nml_escape::unshared_result_spines_any_args;
///
/// // SPLIT returns a 2-spine list; its worst parameter escape is 1
/// // spine, so the top spine of every result is unshared (paper §A.2).
/// assert_eq!(unshared_result_spines_any_args(2, &[0, 1, 1, 1]), 1);
/// ```
pub fn unshared_result_spines_any_args(result_spines: u32, escaping: &[u32]) -> u32 {
    let worst = escaping.iter().copied().max().unwrap_or(0);
    result_spines.saturating_sub(worst)
}

/// Applies Theorem 2, case 2 to a function's global escape summary.
pub fn unshared_from_summary(summary: &EscapeSummary) -> u32 {
    let escs: Vec<u32> = summary.params.iter().map(|p| p.escaping_spines()).collect();
    unshared_result_spines_any_args(summary.result_ty.spines(), &escs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::global::global_escape;
    use nml_syntax::{parse_program, Symbol};
    use nml_types::infer_program;

    #[test]
    fn case2_takes_worst_argument() {
        assert_eq!(unshared_result_spines_any_args(2, &[0, 1, 0]), 1);
        assert_eq!(unshared_result_spines_any_args(1, &[0, 0]), 1);
        assert_eq!(unshared_result_spines_any_args(1, &[1]), 0);
        assert_eq!(unshared_result_spines_any_args(3, &[]), 3);
    }

    #[test]
    fn case1_uses_sharing_knowledge() {
        // esc = 1 but the argument's single spine is unshared: min(1, 1-1)
        // = 0 shared spines can escape, so the whole result spine is
        // unshared.
        let args = [ArgSharing {
            escaping_spines: 1,
            spines: 1,
            unshared_spines: 1,
        }];
        assert_eq!(unshared_result_spines(1, &args), 1);
        // With a fully shared argument the escape dominates.
        let shared = [ArgSharing {
            escaping_spines: 1,
            spines: 1,
            unshared_spines: 0,
        }];
        assert_eq!(unshared_result_spines(1, &shared), 0);
    }

    #[test]
    fn case1_with_no_args_keeps_all_spines() {
        assert_eq!(unshared_result_spines(2, &[]), 2);
    }

    #[test]
    fn saturates_at_zero() {
        assert_eq!(unshared_result_spines_any_args(0, &[2]), 0);
    }

    fn summary_of(src: &str, name: &str) -> EscapeSummary {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let mut en = Engine::new(&p, &info);
        global_escape(&mut en, Symbol::intern(name)).expect("global test")
    }

    #[test]
    fn paper_ps_top_spine_of_result_unshared() {
        // Appendix A.2: for (PS e), the top spine of the result is not
        // shared — PS has esc = 0 on its only parameter and returns a
        // 1-spine list.
        let src = r#"
            letrec
              append x y = if (null x) then y
                           else cons (car x) (append (cdr x) y);
              split p x l h =
                if (null x) then (cons l (cons h nil))
                else if (car x) < p
                     then split p (cdr x) (cons (car x) l) h
                     else split p (cdr x) l (cons (car x) h);
              ps x = if (null x) then nil
                     else append (ps (car (split (car x) (cdr x) nil nil)))
                                 (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
            in ps [5, 2, 7, 1, 3, 4]
        "#;
        let s = summary_of(src, "ps");
        assert_eq!(unshared_from_summary(&s), 1);
    }

    #[test]
    fn paper_split_top_spine_of_result_unshared() {
        // Appendix A.2: for (SPLIT e₁ e₂ e₃ e₄), the top spine of the
        // 2-spine result is not shared: max esc = 1 (x, l, h), d_f = 2.
        let src = r#"
            letrec
              split p x l h =
                if (null x) then (cons l (cons h nil))
                else if (car x) < p
                     then split p (cdr x) (cons (car x) l) h
                     else split p (cdr x) l (cons (car x) h)
            in split 3 [1, 2] nil nil
        "#;
        let s = summary_of(src, "split");
        assert_eq!(unshared_from_summary(&s), 1);
    }
}
