//! Per-allocation-site escape classification.
//!
//! The analysis proper answers *how many spines of a parameter may
//! escape a function* (`B_e` verdicts in [`crate::global`]). The memory
//! system asks a coarser question about each allocation site: will the
//! cell provably die inside its creation scope, provably outlive it, or
//! is the analysis silent? This module folds the fine-grained verdicts
//! into that three-way [`EscapeClass`], which the optimizer threads into
//! the IR as allocation-mode hints:
//!
//! - **provably-local** sites keep the region fast path (stack/block
//!   allocation — the paper's own optimizations);
//! - **provably-escaping** sites are *pretenured*: the generational
//!   runtime allocates them straight into the old space, skipping the
//!   nursery slot and the promotion step a young allocation would pay;
//! - **unknown** sites allocate young and let the minor collector decide.
//!
//! Classification is a pure performance hint: the runtime stays correct
//! whatever class a site is given, so the folds below can be (and are)
//! heuristic in the escaping direction while staying exact in the local
//! one.

use crate::global::{EscapeSummary, ParamEscape};
use std::fmt;

/// How an allocation site relates to its creation scope, as far as the
/// analysis can prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeClass {
    /// No part of the value ever leaves the scope: the cell dies with it.
    ProvablyLocal,
    /// The whole value flows out of the scope: the cell outlives it.
    ProvablyEscaping,
    /// The analysis cannot tell (or the verdict is mixed: some spines
    /// escape, some are retained).
    Unknown,
}

impl fmt::Display for EscapeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EscapeClass::ProvablyLocal => "provably-local",
            EscapeClass::ProvablyEscaping => "provably-escaping",
            EscapeClass::Unknown => "unknown",
        })
    }
}

/// Classifies cells passed in a given parameter position: what the
/// callee does with a list argument built at the call site.
///
/// - `⟨0,0⟩` (nothing escapes) — the argument's cells are provably local
///   to the call;
/// - every spine escaping — the cells provably flow into the callee's
///   result;
/// - a mixed verdict (elements escape, spines retained, or only some
///   spines escape) — unknown.
pub fn classify_param(p: &ParamEscape) -> EscapeClass {
    if !p.verdict.escapes() {
        EscapeClass::ProvablyLocal
    } else if p.spines > 0 && p.escaping_spines() >= p.spines {
        EscapeClass::ProvablyEscaping
    } else {
        EscapeClass::Unknown
    }
}

/// Classifies cells constructed in *result position* of a summarized
/// function. A cons in result position **is** part of the returned
/// value, so whenever the result type has list structure at all, the
/// cell provably outlives the call that built it.
pub fn classify_result(s: &EscapeSummary) -> EscapeClass {
    if s.result_ty.spines() >= 1 {
        EscapeClass::ProvablyEscaping
    } else {
        EscapeClass::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_source;

    const APPEND: &str = "letrec append x y = if (null x) then y
                                              else cons (car x) (append (cdr x) y)
                          in append [1] [2]";

    #[test]
    fn append_params_classify_as_paper_says() {
        let a = analyze_source(APPEND).expect("analysis");
        let s = a.summary("append").expect("summary");
        // x: elements escape, top spine retained — mixed.
        assert_eq!(classify_param(s.param(0)), EscapeClass::Unknown);
        // y: the whole argument flows into the result.
        assert_eq!(classify_param(s.param(1)), EscapeClass::ProvablyEscaping);
        // append returns a list: result-position cells escape.
        assert_eq!(classify_result(s), EscapeClass::ProvablyEscaping);
    }

    #[test]
    fn consumed_parameter_is_provably_local() {
        let a = analyze_source(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum [1, 2]",
        )
        .expect("analysis");
        let s = a.summary("sum").expect("summary");
        assert_eq!(classify_param(s.param(0)), EscapeClass::ProvablyLocal);
        // sum returns an int: no list structure in the result.
        assert_eq!(classify_result(s), EscapeClass::Unknown);
    }
}
