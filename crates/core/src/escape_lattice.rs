//! The per-site escape lattice and alias tracking.
//!
//! The paper's `B_e` domain answers *how many spines of a value may
//! escape*; folded to a per-site verdict ([`crate::escape_class`]) that
//! licenses **relocation** — stack regions, block reclamation,
//! pretenuring. Allocation **elimination** (scalar replacement) needs a
//! finer question, the one Julia's `EscapeAnalysis.jl` asks per site:
//! *along which path* does the value escape, and *can anything else name
//! it*? This module supplies both halves:
//!
//! - [`EscapeState`] — the four-point escape lattice
//!   `NoEscape ⊑ ReturnEscape ⊑ ArgEscape ⊑ GlobalEscape`, joined
//!   pointwise as information flows through the program;
//! - [`AliasClasses`] — union-find over the bindings that can name a
//!   cell, so a site is only "unaliased" when every binding that could
//!   alias it is in a singleton class.
//!
//! A site is eligible for scalar replacement exactly when its joined
//! state is [`EscapeState::NoEscape`] **and** its alias class is a
//! singleton: nothing observes the cell's identity, so the cell need
//! never exist. The bridge functions at the bottom connect the lattice
//! to the paper-level [`ParamEscape`] verdicts, keeping the reference
//! tabulator and [`crate::escape_class`] as differential oracles.

use crate::escape_class::EscapeClass;
use crate::global::ParamEscape;
use std::fmt;

/// How (if at all) a value escapes the scope that created it. The
/// variants form a chain — each is strictly more escaped than the one
/// before — so the derived `Ord` is the lattice order and [`max`](Ord::max)
/// is the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum EscapeState {
    /// The value never leaves its creation scope: no return, no argument
    /// position, no store into a longer-lived structure.
    #[default]
    NoEscape,
    /// The value escapes only as (part of) the creating scope's result.
    /// The caller sees it, but the creating frame can still reason about
    /// every access that happens *before* the return.
    ReturnEscape,
    /// The value is passed to a callee whose treatment of it is known
    /// only through a summary: it may be retained, returned, or stored
    /// by the callee.
    ArgEscape,
    /// The value reaches a global, is captured by a closure that
    /// outlives the scope, is stored into another heap cell, or flows
    /// somewhere the analysis cannot bound. Nothing is known.
    GlobalEscape,
}

impl EscapeState {
    /// The lattice join (least upper bound): the more-escaped of the two.
    #[must_use]
    pub fn join(self, other: EscapeState) -> EscapeState {
        self.max(other)
    }

    /// Whether this state permits eliminating the allocation outright
    /// (assuming the site is also unaliased).
    pub fn allows_elision(self) -> bool {
        self == EscapeState::NoEscape
    }

    /// A one-letter code, stable across releases — used by the v3
    /// summary-cache encoding.
    pub fn code(self) -> char {
        match self {
            EscapeState::NoEscape => 'N',
            EscapeState::ReturnEscape => 'R',
            EscapeState::ArgEscape => 'A',
            EscapeState::GlobalEscape => 'G',
        }
    }

    /// Parses a [`EscapeState::code`] letter.
    pub fn from_code(c: char) -> Option<EscapeState> {
        match c {
            'N' => Some(EscapeState::NoEscape),
            'R' => Some(EscapeState::ReturnEscape),
            'A' => Some(EscapeState::ArgEscape),
            'G' => Some(EscapeState::GlobalEscape),
            _ => None,
        }
    }
}

impl fmt::Display for EscapeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EscapeState::NoEscape => "no-escape",
            EscapeState::ReturnEscape => "return-escape",
            EscapeState::ArgEscape => "arg-escape",
            EscapeState::GlobalEscape => "global-escape",
        })
    }
}

/// Union-find over the bindings (alias "names") that may refer to an
/// allocated cell.
///
/// Every binding that can hold a cell gets an id from [`fresh`]
/// (`AliasClasses::fresh`); whenever the program copies one binding into
/// another (`let y = x`, passing a variable straight through an `if`
/// join, rebinding in a letrec), the two ids are [`union`]ed
/// (`AliasClasses::union`). A cell is **unaliased** iff the class of its
/// defining binding is a singleton: no other name was ever merged in, so
/// every access is syntactically visible at the one binding.
///
/// Path-halving find + union by size: effectively O(α(n)).
#[derive(Debug, Clone, Default)]
pub struct AliasClasses {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl AliasClasses {
    /// An empty set of classes.
    pub fn new() -> Self {
        AliasClasses::default()
    }

    /// Creates a new singleton class and returns its id.
    pub fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    /// The class representative of `x`, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x as usize;
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x as u32
    }

    /// Merges the classes of `a` and `b`. Returns `true` when they were
    /// previously distinct (a new alias relationship was recorded).
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Whether `a` and `b` may alias (are in the same class).
    pub fn may_alias(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether `x`'s class is a singleton — no other binding was ever
    /// merged with it, so `x` is the cell's only possible name.
    pub fn is_unaliased(&mut self, x: u32) -> bool {
        let r = self.find(x);
        self.size[r as usize] == 1
    }

    /// Number of ids issued so far.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no ids have been issued.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Folds a paper-level parameter verdict into the site lattice: what
/// does passing a value *in this parameter position* do to its escape
/// state?
///
/// The global test `G(f, i)` measures escape **through `f`'s result**,
/// so any escaping verdict maps to [`EscapeState::ReturnEscape`] *from
/// the callee's frame* — which, seen from the caller that passed the
/// argument, joins in at the call site as the caller's own obligation.
/// A `⟨0,0⟩` verdict proves the callee retains nothing.
pub fn state_of_param(p: &ParamEscape) -> EscapeState {
    if p.escapes() {
        EscapeState::ReturnEscape
    } else {
        EscapeState::NoEscape
    }
}

/// The three-way [`EscapeClass`] a lattice state folds down to, for
/// differential checks against [`crate::escape_class::classify_param`].
/// The lattice strictly refines the class: `NoEscape` ↔ provably-local;
/// everything else is some form of escape, which the class can only
/// report as escaping-or-unknown.
pub fn class_of_state(s: EscapeState) -> EscapeClass {
    match s {
        EscapeState::NoEscape => EscapeClass::ProvablyLocal,
        EscapeState::ReturnEscape | EscapeState::ArgEscape => EscapeClass::Unknown,
        EscapeState::GlobalEscape => EscapeClass::ProvablyEscaping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_source;
    use crate::escape_class::classify_param;

    #[test]
    fn lattice_order_and_join() {
        use EscapeState::*;
        let chain = [NoEscape, ReturnEscape, ArgEscape, GlobalEscape];
        for (i, &a) in chain.iter().enumerate() {
            for (j, &b) in chain.iter().enumerate() {
                assert_eq!(a.join(b), chain[i.max(j)]);
                assert_eq!(a.join(b), b.join(a), "join commutes");
            }
            assert_eq!(a.join(a), a, "join idempotent");
        }
        assert!(NoEscape < ReturnEscape && ReturnEscape < ArgEscape && ArgEscape < GlobalEscape);
    }

    #[test]
    fn only_bottom_allows_elision() {
        assert!(EscapeState::NoEscape.allows_elision());
        assert!(!EscapeState::ReturnEscape.allows_elision());
        assert!(!EscapeState::ArgEscape.allows_elision());
        assert!(!EscapeState::GlobalEscape.allows_elision());
    }

    #[test]
    fn codes_roundtrip() {
        for s in [
            EscapeState::NoEscape,
            EscapeState::ReturnEscape,
            EscapeState::ArgEscape,
            EscapeState::GlobalEscape,
        ] {
            assert_eq!(EscapeState::from_code(s.code()), Some(s));
        }
        assert_eq!(EscapeState::from_code('x'), None);
    }

    #[test]
    fn union_find_singletons_and_merges() {
        let mut ac = AliasClasses::new();
        let a = ac.fresh();
        let b = ac.fresh();
        let c = ac.fresh();
        assert!(ac.is_unaliased(a) && ac.is_unaliased(b) && ac.is_unaliased(c));
        assert!(ac.union(a, b));
        assert!(!ac.union(b, a), "second union is a no-op");
        assert!(!ac.is_unaliased(a) && !ac.is_unaliased(b));
        assert!(ac.is_unaliased(c), "untouched class stays a singleton");
        assert!(ac.may_alias(a, b));
        assert!(!ac.may_alias(a, c));
        // Transitivity through a chain of unions.
        let d = ac.fresh();
        ac.union(c, d);
        ac.union(b, c);
        assert!(ac.may_alias(a, d));
        assert!(!ac.is_unaliased(d));
    }

    /// The lattice bridge must agree with the coarse classifier wherever
    /// the classifier is *exact* (the provably-local direction): a
    /// parameter classifies provably-local iff its lattice state is
    /// `NoEscape`.
    #[test]
    fn bridge_agrees_with_escape_class_on_local() {
        let srcs = [
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l) in sum [1, 2]",
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
            "letrec len l = if (null l) then 0 else 1 + len (cdr l) in len [1,2,3]",
            "letrec id l = l in id [1]",
        ];
        for src in srcs {
            let a = analyze_source(src).expect("analysis");
            for s in a.summaries.values() {
                for p in &s.params {
                    let st = state_of_param(p);
                    let cls = classify_param(p);
                    assert_eq!(
                        st == EscapeState::NoEscape,
                        cls == EscapeClass::ProvablyLocal,
                        "{}: param {} lattice {st} vs class {cls}",
                        s.name,
                        p.index
                    );
                }
            }
        }
    }
}
