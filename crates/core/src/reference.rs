//! A reference implementation of the abstract escape semantics for
//! **first-order** programs, used to differentially test the symbolic
//! fixpoint engine.
//!
//! The paper's termination argument (§3.5) rests on the finiteness of the
//! abstract domain: for a first-order function of `n` parameters over
//! `B_e` with bound `d`, the function space `B_e^n → B_e` is small enough
//! to *tabulate*. This module computes those tables by naive Kleene
//! iteration — the most literal possible reading of the appendix's
//! `append⁽⁰⁾, append⁽¹⁾, …` — and the test-suite checks the symbolic
//! engine against the table at **every** point of the domain, not just
//! the worst-case inputs of the global test.
//!
//! Scope: top-level functions whose parameters and results are base or
//! list types (no function arguments, no closures escaping into results).
//! Over that fragment the two-component value degenerates to its basic
//! part, because `D_e^{τ list} = D_e^τ` bottoms out at `B_e × {err}`.

use crate::be::Be;
use crate::budget::Governor;
use crate::error::EscapeError;
use nml_syntax::ast::{Const, Expr, ExprKind, Prim, Program};
use nml_syntax::Symbol;
use nml_types::{Ty, TypeInfo};
use std::collections::{BTreeMap, HashMap};

/// A tabulated abstract function: argument tuples over `B_e` to results
/// in `B_e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeTable {
    /// The function's arity.
    pub arity: usize,
    /// The table rows, keyed by the full argument tuple.
    pub rows: BTreeMap<Vec<Be>, Be>,
}

impl BeTable {
    /// Looks up the result for `args`.
    ///
    /// Total: if `args` is not a point of the tabulated domain (wrong
    /// spine bound, foreign arity), the join of all table values is
    /// returned. The table is monotone and complete over its domain, so
    /// that join equals the value at the top tuple — an over-approximation
    /// of every point, hence a sound answer for any query.
    pub fn get(&self, args: &[Be]) -> Be {
        match self.rows.get(args) {
            Some(&v) => v,
            None => self.rows.values().fold(Be::bottom(), |acc, &v| acc.join(v)),
        }
    }
}

/// Why a program is outside the first-order fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotFirstOrder {
    /// A top-level binding has a function-typed parameter.
    FunctionParameter(String),
    /// A lambda occurs somewhere other than a top-level binding's
    /// parameter spine.
    InnerLambda,
    /// A nested letrec (the reference evaluator keeps things simple).
    InnerLetrec,
    /// A variable denotes a function but is not fully applied.
    PartialApplication(String),
}

impl std::fmt::Display for NotFirstOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotFirstOrder::FunctionParameter(n) => {
                write!(f, "`{n}` takes a function parameter")
            }
            NotFirstOrder::InnerLambda => f.write_str("inner lambda"),
            NotFirstOrder::InnerLetrec => f.write_str("nested letrec"),
            NotFirstOrder::PartialApplication(n) => {
                write!(f, "`{n}` is partially applied")
            }
        }
    }
}

/// Why a governed tabulation could not produce tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabulateError {
    /// The program falls outside the first-order fragment.
    NotFirstOrder(NotFirstOrder),
    /// The [`crate::budget::Budget`] ran out mid-iteration. No partial
    /// tables are returned: a truncated Kleene iterate would *under*-
    /// approximate the fixpoint, which is the unsound direction.
    Budget(EscapeError),
}

impl std::fmt::Display for TabulateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TabulateError::NotFirstOrder(e) => write!(f, "not first-order: {e}"),
            TabulateError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TabulateError {}

impl From<NotFirstOrder> for TabulateError {
    fn from(e: NotFirstOrder) -> Self {
        TabulateError::NotFirstOrder(e)
    }
}

/// Tabulates every top-level function of a first-order program by Kleene
/// iteration over the pointwise-ordered table lattice.
///
/// # Errors
///
/// Returns [`NotFirstOrder`] if the program falls outside the tabulable
/// fragment. The iteration itself cannot fail: the lattice is finite and
/// every step is monotone (§3.5).
pub fn tabulate_program(
    program: &Program,
    info: &TypeInfo,
) -> Result<BTreeMap<Symbol, BeTable>, NotFirstOrder> {
    let mut governor = Governor::default();
    match tabulate_program_governed(program, info, &mut governor) {
        Ok(tables) => Ok(tables),
        Err(TabulateError::NotFirstOrder(e)) => Err(e),
        // Unreachable: the default governor is unlimited.
        Err(TabulateError::Budget(e)) => unreachable!("unlimited budget tripped: {e}"),
    }
}

/// [`tabulate_program`] under an external [`Governor`]: each Kleene pass
/// charges one fixpoint pass and each evaluated table row charges one
/// node, so a shared analysis-wide budget also bounds reference
/// tabulation (whose tables are exponential in arity).
///
/// # Errors
///
/// [`TabulateError::NotFirstOrder`] for programs outside the fragment,
/// [`TabulateError::Budget`] when the governor trips.
pub fn tabulate_program_governed(
    program: &Program,
    info: &TypeInfo,
    governor: &mut Governor,
) -> Result<BTreeMap<Symbol, BeTable>, TabulateError> {
    // Validate the fragment and collect (name, params, body).
    let mut funcs: Vec<(Symbol, Vec<Symbol>, &Expr)> = Vec::new();
    for b in &program.bindings {
        let sig = &info.top_sigs[&b.name];
        let (params_ty, _) = sig.uncurry();
        if params_ty.iter().any(|t| matches!(t, Ty::Fun(..))) {
            return Err(NotFirstOrder::FunctionParameter(b.name.to_string()).into());
        }
        let mut params = Vec::new();
        let mut cur = &b.expr;
        while let ExprKind::Lambda(p, inner) = &cur.kind {
            params.push(*p);
            cur = inner;
        }
        check_first_order(cur)?;
        funcs.push((b.name, params, cur));
    }

    let d = info.max_spines;
    let domain: Vec<Be> = Be::all(d).collect();

    // Initialize every table to ⊥.
    let mut tables: BTreeMap<Symbol, BeTable> = BTreeMap::new();
    for (name, params, _) in &funcs {
        let mut rows = BTreeMap::new();
        for tuple in tuples(&domain, params.len()) {
            rows.insert(tuple, Be::bottom());
        }
        tables.insert(
            *name,
            BeTable {
                arity: params.len(),
                rows,
            },
        );
    }

    // Kleene iteration to the simultaneous fixpoint.
    loop {
        if let Some(r) = governor.charge_pass() {
            return Err(TabulateError::Budget(EscapeError::BudgetExhausted {
                resource: r,
                used: governor.used_of(r),
                limit: governor.limit_of(r),
            }));
        }
        let mut changed = false;
        for (name, params, body) in &funcs {
            let snapshot = tables.clone();
            let table = tables.get_mut(name).expect("initialized");
            if let Some(r) = governor.charge_nodes(table.rows.len() as u64) {
                return Err(TabulateError::Budget(EscapeError::BudgetExhausted {
                    resource: r,
                    used: governor.used_of(r),
                    limit: governor.limit_of(r),
                }));
            }
            let mut updates = Vec::new();
            for (tuple, current) in &table.rows {
                let env: HashMap<Symbol, Be> =
                    params.iter().copied().zip(tuple.iter().copied()).collect();
                let v = eval_be(body, &env, &snapshot, info)?;
                if v != *current {
                    updates.push((tuple.clone(), current.join(v)));
                }
            }
            for (tuple, v) in updates {
                changed = true;
                table.rows.insert(tuple, v);
            }
        }
        if !changed {
            return Ok(tables);
        }
    }
}

fn check_first_order(e: &Expr) -> Result<(), NotFirstOrder> {
    match &e.kind {
        ExprKind::Const(_) | ExprKind::Var(_) => Ok(()),
        ExprKind::Lambda(..) => Err(NotFirstOrder::InnerLambda),
        ExprKind::Letrec(..) => Err(NotFirstOrder::InnerLetrec),
        ExprKind::App(f, a) => {
            check_first_order(f)?;
            check_first_order(a)
        }
        ExprKind::If(c, t, f) => {
            check_first_order(c)?;
            check_first_order(t)?;
            check_first_order(f)
        }
        ExprKind::Annot(inner, _) => check_first_order(inner),
    }
}

/// All `n`-tuples over `domain`.
fn tuples(domain: &[Be], n: usize) -> Vec<Vec<Be>> {
    let mut out = vec![Vec::new()];
    for _ in 0..n {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for prefix in &out {
            for &b in domain {
                let mut t = prefix.clone();
                t.push(b);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// First-order abstract evaluation directly in `B_e` (the two-component
/// value collapses: no function component survives in this fragment).
fn eval_be(
    e: &Expr,
    env: &HashMap<Symbol, Be>,
    tables: &BTreeMap<Symbol, BeTable>,
    info: &TypeInfo,
) -> Result<Be, NotFirstOrder> {
    match &e.kind {
        ExprKind::Const(_) => Ok(Be::bottom()),
        ExprKind::Var(x) => Ok(env.get(x).copied().unwrap_or_else(Be::bottom)),
        ExprKind::If(_c, t, f) => {
            let tv = eval_be(t, env, tables, info)?;
            let fv = eval_be(f, env, tables, info)?;
            Ok(tv.join(fv))
        }
        ExprKind::Annot(inner, _) => eval_be(inner, env, tables, info),
        ExprKind::Lambda(..) => Err(NotFirstOrder::InnerLambda),
        ExprKind::Letrec(..) => Err(NotFirstOrder::InnerLetrec),
        ExprKind::App(..) => {
            let (head, args) = e.uncurry_app();
            match &head.kind {
                ExprKind::Const(Const::Prim(p)) => {
                    if args.len() != p.arity() {
                        return Err(NotFirstOrder::PartialApplication(p.name().to_owned()));
                    }
                    let vals: Vec<Be> = args
                        .iter()
                        .map(|a| eval_be(a, env, tables, info))
                        .collect::<Result<_, _>>()?;
                    Ok(match p {
                        Prim::Cons | Prim::MkPair => vals[0].join(vals[1]),
                        Prim::Car => {
                            // Missing annotation: fall back to sub⁰ (the
                            // identity). `sub` is reductive, so skipping
                            // the subtraction only over-approximates.
                            let s = info.car_spines.get(&head.id).copied().unwrap_or(0);
                            vals[0].sub(s)
                        }
                        Prim::Cdr | Prim::Fst | Prim::Snd => vals[0],
                        // null and arithmetic results contain nothing.
                        _ => Be::bottom(),
                    })
                }
                ExprKind::Var(f) if !env.contains_key(f) && tables.contains_key(f) => {
                    let table = &tables[f];
                    if args.len() != table.arity {
                        return Err(NotFirstOrder::PartialApplication(f.to_string()));
                    }
                    let vals: Vec<Be> = args
                        .iter()
                        .map(|a| eval_be(a, env, tables, info))
                        .collect::<Result<_, _>>()?;
                    Ok(table.get(&vals))
                }
                ExprKind::Var(f) => Err(NotFirstOrder::PartialApplication(f.to_string())),
                _ => Err(NotFirstOrder::InnerLambda),
            }
        }
    }
}

/// The reference global escape test: read `G(f, i)` straight off the
/// table (interesting argument `⟨1, s_i⟩`, others `⟨0,0⟩`).
///
/// # Errors
///
/// [`EscapeError::UnknownFunction`] / [`EscapeError::BadParameterIndex`]
/// mirror the engine-based test.
pub fn reference_global(
    tables: &BTreeMap<Symbol, BeTable>,
    info: &TypeInfo,
    name: Symbol,
    i: usize,
) -> Result<Be, EscapeError> {
    let table = tables
        .get(&name)
        .ok_or_else(|| EscapeError::UnknownFunction {
            name: name.to_string(),
        })?;
    let sig = info.sig(name).ok_or_else(|| EscapeError::UnknownFunction {
        name: name.to_string(),
    })?;
    let (params, _) = sig.uncurry();
    if i >= table.arity {
        return Err(EscapeError::BadParameterIndex {
            index: i,
            arity: table.arity,
        });
    }
    let args: Vec<Be> = (0..table.arity)
        .map(|j| {
            if j == i {
                Be::escaping(params[j].spines())
            } else {
                Be::bottom()
            }
        })
        .collect();
    Ok(table.get(&args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn setup(src: &str) -> (Program, TypeInfo) {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        (p, info)
    }

    #[test]
    fn append_table_matches_paper_fixpoint() {
        // append x y = y ⊔ sub¹(x), per the appendix.
        let (p, info) = setup(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
        );
        let tables = tabulate_program(&p, &info).expect("first-order");
        let t = &tables[&Symbol::intern("append")];
        for x in Be::all(info.max_spines) {
            for y in Be::all(info.max_spines) {
                assert_eq!(t.get(&[x, y]), y.join(x.sub(1)), "at ({x}, {y})");
            }
        }
    }

    #[test]
    fn reference_global_reproduces_appendix() {
        let (p, info) = setup(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
        );
        let tables = tabulate_program(&p, &info).expect("first-order");
        let name = Symbol::intern("append");
        assert_eq!(
            reference_global(&tables, &info, name, 0).unwrap(),
            Be::escaping(0)
        );
        assert_eq!(
            reference_global(&tables, &info, name, 1).unwrap(),
            Be::escaping(1)
        );
    }

    #[test]
    fn higher_order_programs_are_rejected() {
        let (p, info) = setup("letrec apply f x = f x in apply (lambda(y). y) 1");
        assert!(matches!(
            tabulate_program(&p, &info),
            Err(NotFirstOrder::FunctionParameter(_))
        ));
    }

    #[test]
    fn inner_lambda_rejected() {
        let (p, info) = setup("letrec f x = (lambda(y). y) x in f 1");
        assert!(matches!(
            tabulate_program(&p, &info),
            Err(NotFirstOrder::InnerLambda)
        ));
    }

    /// The differential test: over the whole first-order corpus, the
    /// symbolic engine must agree with the tabulated reference at every
    /// argument tuple (engine inputs: ⟨be, err⟩ values; the fragment has
    /// no function components).
    #[test]
    fn engine_agrees_with_reference_everywhere() {
        let sources = [
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum [1]",
            "letrec take n l = if n = 0 then nil
                               else if (null l) then nil
                               else cons (car l) (take (n - 1) (cdr l));
                    drop n l = if n = 0 then l
                               else if (null l) then nil
                               else drop (n - 1) (cdr l)
             in take 1 (drop 1 [1, 2])",
            "letrec inter a b = if (null a) then b
                                else cons (car a) (inter b (cdr a))
             in inter [1] [2]",
            "letrec zipadd a b = if (null a) then nil
                                 else if (null b) then nil
                                 else cons (car a + car b) (zipadd (cdr a) (cdr b))
             in zipadd [1] [2]",
            "letrec flat ll = if (null ll) then nil
                              else if (null (car ll)) then flat (cdr ll)
                              else cons (car (car ll))
                                        (flat (cons (cdr (car ll)) (cdr ll)))
             in flat [[1, 2], [3]]",
        ];
        for src in sources {
            let (p, info) = setup(src);
            let tables = tabulate_program(&p, &info).expect("first-order");
            for (name, table) in &tables {
                for (tuple, want) in &table.rows {
                    let mut engine = Engine::new(&p, &info);
                    let args: Vec<crate::absval::AbsVal> = tuple
                        .iter()
                        .map(|&b| crate::absval::AbsVal::base(b))
                        .collect();
                    let got = engine
                        .run(|en| {
                            let f = en.top_value(*name);
                            en.apply_n(&f, &args).be
                        })
                        .expect("fixpoint");
                    assert_eq!(
                        got, *want,
                        "{name}{tuple:?}: engine {got}, reference {want} in\n{src}"
                    );
                }
            }
        }
    }

    /// Every table is monotone — a direct consequence of §3.5's
    /// monotonicity argument, checked exhaustively.
    #[test]
    fn reference_tables_are_monotone() {
        let (p, info) = setup(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y);
                    rev l = if (null l) then nil
                            else append (rev (cdr l)) (cons (car l) nil)
             in rev [1]",
        );
        let tables = tabulate_program(&p, &info).expect("first-order");
        for (name, table) in &tables {
            for (a, va) in &table.rows {
                for (b, vb) in &table.rows {
                    if a.iter().zip(b.iter()).all(|(x, y)| (*x).le(*y)) {
                        assert!(
                            (*va).le(*vb),
                            "{name}: not monotone between {a:?} and {b:?}"
                        );
                    }
                }
            }
        }
    }
}
