//! In-process incremental re-analysis.
//!
//! [`Incremental`] owns a fully analyzed program and supports *editing* it
//! — replacing one binding's right-hand side ([`update_binding`]) or
//! swapping in a whole new source text ([`update_source`]) — while
//! re-solving only the strongly connected components whose **transitive
//! content hash** changed. The hash is the same one the on-disk
//! [`SummaryCache`](crate::cache::SummaryCache) keys on (binding source +
//! signature + transitive dependency hashes, see
//! [`modular`](crate::modular)), so "dirty" means exactly the same thing
//! in both layers; the difference is that the incremental layer also
//! retains every clean component's *converged slot values* in memory, so
//! dirty components re-solve against finalized callee values without
//! re-solving the callees.
//!
//! [`update_binding`]: Incremental::update_binding
//! [`update_source`]: Incremental::update_source
//!
//! ## How an update runs
//!
//! 1. **Graft.** The replacement expression is parsed, its node ids are
//!    offset past `Program::next_node_id` (ids are never reused, so
//!    per-node side tables go stale instead of aliasing), and the old
//!    subtree is swapped out. The program body's root id is pinned across
//!    body swaps: it names every top-level `RecKey`, and keeping it stable
//!    is what lets retained slot values survive.
//! 2. **Re-infer.** Only the edited bindings and their transitive callers
//!    are re-typechecked ([`nml_types::reinfer_program`]), with every
//!    clean binding's scheme pinned from the previous inference.
//! 3. **Re-hash.** Per-binding hashes are recomputed for edited bindings
//!    (and any whose signature moved), then one forward sweep settles the
//!    transitive SCC hashes — recomputing only inside the dirty cone when
//!    the call-graph topology is unchanged.
//! 4. **Re-solve.** Components whose hash still maps to retained state are
//!    reused outright ([`ScheduleReport::sccs_reused`]); the rest re-solve
//!    against the retained shared slot map, exactly like a scheduled run
//!    ([`ScheduleReport::sccs_solved`]).
//!
//! Retired and imprecise slot contributions are reference-counted out of
//! the shared map before solving: a component degraded last round (or
//! merely *transitively* flagged) is never retained, so worst-case slot
//! values can never leak into a later precise solve.

use crate::absval::{AbsEnv, RecKey};
use crate::analysis::{merge_stats, Analysis, Degradation, DegradeReason};
use crate::budget::{Budget, Governor};
use crate::engine::{build_top_env, EngineConfig, ProgramIndex, SharedSlots};
use crate::error::AnalyzeError;
use crate::modular::{
    binding_hash, combine_scc_hashes, config_salt, merge_into_shared, solve_scc, update_scc_hashes,
    ScheduleReport,
};
use nml_syntax::callgraph::{CallGraph, SccDag};
use nml_syntax::visit::{free_vars, offset_node_ids};
use nml_syntax::{
    parse_expr_in_scope, parse_program, pretty_expr, Binding, Program, Symbol, SyntaxError,
};
use nml_types::{infer_program, reinfer_program, SpineTable, TypeError, TypeInfo};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Why an incremental update was rejected. The analysis state is rolled
/// back to the pre-update program on every error, so a failed update can
/// simply be retried with fixed input.
#[derive(Debug)]
pub enum UpdateError {
    /// `update_binding` named a binding the program does not have.
    UnknownBinding(String),
    /// The replacement source failed to lex or parse.
    Syntax(SyntaxError),
    /// The edited program failed to re-typecheck.
    Type(TypeError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownBinding(name) => {
                write!(f, "no top-level binding named `{name}`")
            }
            UpdateError::Syntax(e) => write!(f, "{e}"),
            UpdateError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<SyntaxError> for UpdateError {
    fn from(e: SyntaxError) -> Self {
        UpdateError::Syntax(e)
    }
}

impl From<TypeError> for UpdateError {
    fn from(e: TypeError) -> Self {
        UpdateError::Type(e)
    }
}

/// Bookkeeping for one solved SCC, keyed by its transitive content hash.
/// Its summaries stay in `Analysis::summaries` (dirty members always
/// overwrite theirs, so clean entries are always current); slot values
/// live in the shared map, with `keys` recording which entries this
/// component contributed so they can be reference-counted out when it is
/// invalidated.
struct Retained {
    keys: Vec<RecKey>,
    /// Imprecise entries exist only so their contributions can be purged;
    /// they are re-solved unconditionally on the next update.
    precise: bool,
}

/// An analyzed program that accepts edits and re-solves only what the
/// edit's transitive content hash actually dirtied.
///
/// ```
/// use nml_escape::Incremental;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut inc = Incremental::from_source(
///     "letrec len = lambda(l). if (null l) then 0 else 1 + len (cdr l);
///             use = lambda(l). len l
///      in use [1, 2]",
/// )?;
/// inc.update_binding("use", "lambda(l). len (cdr l)")?;
/// // Only `use`'s component re-solved; `len` was reused.
/// assert_eq!(inc.analysis().schedule.sccs_solved, 1);
/// assert_eq!(inc.analysis().schedule.sccs_reused, 1);
/// # Ok(())
/// # }
/// ```
pub struct Incremental {
    analysis: Analysis,
    config: EngineConfig,
    budget: Budget,
    graph: CallGraph,
    dag: SccDag,
    /// Member names per SCC id.
    members: Vec<Vec<Symbol>>,
    /// Content hash per binding index (name + source + signature).
    binding_hashes: Vec<u64>,
    /// Transitive content hash per SCC id.
    scc_hashes: Vec<u64>,
    /// Engine-configuration part of the hashes; a change (e.g. the domain
    /// bound `d` moving after an edit) dirties every component.
    salt: String,
    retained: HashMap<u64, Retained>,
    /// How many live retained components contributed each shared slot
    /// entry. Contributions are duplicated when a dependent materializes a
    /// callee's slot; all live contributions of one key carry the same
    /// converged value, so the entry is dropped only at refcount zero.
    refcnt: HashMap<RecKey, usize>,
    shared: SharedSlots,
    top_env: AbsEnv,
    /// Per-binding spine maxima, so re-inference restores the exact domain
    /// bound `d` without a whole-program walk.
    spines: SpineTable,
}

impl Incremental {
    /// Analyzes `program` from scratch and retains everything needed for
    /// incremental updates.
    pub fn new(program: Program, info: TypeInfo, config: EngineConfig, budget: Budget) -> Self {
        let graph = CallGraph::build(&program);
        let dag = graph.condense();
        let n = dag.len();
        let members: Vec<Vec<Symbol>> = (0..n).map(|id| dag.member_names(&graph, id)).collect();
        let binding_hashes: Vec<u64> = program
            .bindings
            .iter()
            .map(|b| binding_hash(b, &info))
            .collect();
        let salt = config_salt(&info, &config);
        let scc_hashes = combine_scc_hashes(&salt, &dag, &binding_hashes);
        let top_env = build_top_env(&program);
        let spines = SpineTable::build(&info, &program);
        let mut inc = Incremental {
            analysis: Analysis {
                program,
                info,
                summaries: BTreeMap::new(),
                stats: Default::default(),
                degradations: Vec::new(),
                schedule: ScheduleReport::default(),
            },
            config,
            budget,
            graph,
            dag,
            members,
            binding_hashes,
            scc_hashes,
            salt,
            retained: HashMap::new(),
            refcnt: HashMap::new(),
            shared: Arc::new(RwLock::new(HashMap::new())),
            top_env,
            spines,
        };
        let dirty = vec![true; n];
        inc.solve(&dirty);
        inc
    }

    /// Parses, infers, and analyzes `src` with default configuration and
    /// an unlimited budget.
    ///
    /// # Errors
    ///
    /// Propagates syntax and type errors.
    pub fn from_source(src: &str) -> Result<Self, AnalyzeError> {
        let program = parse_program(src)?;
        let info = infer_program(&program)?;
        Ok(Incremental::new(
            program,
            info,
            EngineConfig::default(),
            Budget::unlimited(),
        ))
    }

    /// The current analysis: summaries for every top-level function of the
    /// program as last updated, with [`Analysis::schedule`] describing
    /// what the most recent update actually solved.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Consumes the re-solver, handing back the final analysis.
    pub fn into_analysis(self) -> Analysis {
        self.analysis
    }

    /// Replaces the right-hand side of top-level binding `name` with the
    /// parse of `rhs_src` and re-solves the dirtied components.
    ///
    /// # Errors
    ///
    /// [`UpdateError::UnknownBinding`] if no such binding,
    /// [`UpdateError::Syntax`]/[`UpdateError::Type`] if the replacement
    /// does not parse or typecheck. The program is rolled back on error.
    pub fn update_binding(&mut self, name: &str, rhs_src: &str) -> Result<&Analysis, UpdateError> {
        let sym = Symbol::intern(name);
        let Some(idx) = self
            .analysis
            .program
            .bindings
            .iter()
            .position(|b| b.name == sym)
        else {
            return Err(UpdateError::UnknownBinding(name.to_string()));
        };
        let names: Vec<Symbol> = self.graph.names.clone();
        let mut expr = parse_expr_in_scope(rhs_src, &names)?;
        let off = self.analysis.program.next_node_id;
        self.analysis.program.next_node_id = offset_node_ids(&mut expr, off);

        let old_expr = std::mem::replace(&mut self.analysis.program.bindings[idx].expr, expr);

        // Refresh this binding's call-graph row; a changed row (the edit
        // calls different functions) forces a re-condensation.
        let name_index: BTreeMap<Symbol, usize> =
            names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let fv = free_vars(&self.analysis.program.bindings[idx].expr);
        let mut new_row: Vec<usize> = fv
            .iter()
            .filter_map(|v| name_index.get(v).copied())
            .collect();
        new_row.sort_unstable();
        new_row.dedup();
        let row_changed = new_row != self.graph.deps[idx];
        let topo_backup = if row_changed {
            let backup = (
                std::mem::replace(&mut self.graph.deps[idx], new_row),
                self.dag.clone(),
                self.members.clone(),
                self.scc_hashes.clone(),
            );
            self.recondense();
            Some(backup)
        } else {
            None
        };

        match self.refresh(&[idx], false, row_changed) {
            Ok(()) => Ok(&self.analysis),
            Err(e) => {
                self.analysis.program.bindings[idx].expr = old_expr;
                if let Some((row, dag, members, hashes)) = topo_backup {
                    self.graph.deps[idx] = row;
                    self.dag = dag;
                    self.members = members;
                    self.scc_hashes = hashes;
                }
                Err(UpdateError::Type(e))
            }
        }
    }

    /// Replaces the whole program with the parse of `src`, reusing the old
    /// AST (and therefore node ids, hashes, and retained state) for every
    /// binding whose text is unchanged. This is the file-watch entry
    /// point: the watcher re-reads the file and hands the full text here.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Syntax`]/[`UpdateError::Type`] as for
    /// [`update_binding`](Incremental::update_binding); rolled back on
    /// error.
    pub fn update_source(&mut self, src: &str) -> Result<&Analysis, UpdateError> {
        let new_prog = parse_program(src)?;

        // Full snapshot: this path may rewrite arbitrarily much of the
        // program, so rollback restores wholesale. (The slot/retained
        // state is only touched by `solve`, after the fallible steps.)
        let backup = (
            self.analysis.program.clone(),
            self.graph.clone(),
            self.dag.clone(),
            self.members.clone(),
            self.binding_hashes.clone(),
            self.scc_hashes.clone(),
            self.top_env.clone(),
            self.spines.clone(),
        );

        let old_names: HashSet<Symbol> = self
            .analysis
            .program
            .bindings
            .iter()
            .map(|b| b.name)
            .collect();
        let new_names: HashSet<Symbol> = new_prog.bindings.iter().map(|b| b.name).collect();
        let removed: HashSet<Symbol> = old_names.difference(&new_names).copied().collect();
        let old_by_name: HashMap<Symbol, usize> = self
            .analysis
            .program
            .bindings
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name, i))
            .collect();

        let off = self.analysis.program.next_node_id;
        let mut next = off;
        let mut grafted: Vec<usize> = Vec::new();
        let mut bindings: Vec<Binding> = Vec::with_capacity(new_prog.bindings.len());
        let mut hashes: Vec<u64> = Vec::with_capacity(new_prog.bindings.len());
        let mut spine_maxima: Vec<u32> = Vec::with_capacity(new_prog.bindings.len());
        for (i, nb) in new_prog.bindings.into_iter().enumerate() {
            // A binding is kept (old AST, old ids, old hash) only when its
            // text *and* free-variable set are unchanged: the text alone
            // cannot distinguish a variable from the primitive constant it
            // prints as, and a dropped binding un-shadows primitives.
            let kept = old_by_name.get(&nb.name).copied().filter(|&oi| {
                let old = &self.analysis.program.bindings[oi];
                pretty_expr(&old.expr) == pretty_expr(&nb.expr)
                    && free_vars(&old.expr) == free_vars(&nb.expr)
                    && !free_vars(&old.expr).iter().any(|v| removed.contains(v))
            });
            match kept {
                Some(oi) => {
                    bindings.push(self.analysis.program.bindings[oi].clone());
                    hashes.push(self.binding_hashes[oi]);
                    spine_maxima.push(self.spines.bindings[oi]);
                }
                None => {
                    let mut b = nb;
                    next = next.max(offset_node_ids(&mut b.expr, off));
                    grafted.push(i);
                    bindings.push(b);
                    // Both settled by `refresh` after re-inference.
                    hashes.push(0);
                    spine_maxima.push(0);
                }
            }
        }
        let body_changed = pretty_expr(&new_prog.body) != pretty_expr(&self.analysis.program.body);
        let body = if body_changed {
            let mut b = new_prog.body;
            next = next.max(offset_node_ids(&mut b, off));
            // The body's root id names every top-level RecKey; pinning it
            // keeps retained slot values and the top environment valid.
            b.id = self.analysis.program.body.id;
            b
        } else {
            self.analysis.program.body.clone()
        };

        for name in &removed {
            self.analysis.summaries.remove(name);
        }
        self.analysis.program.bindings = bindings;
        self.analysis.program.body = body;
        self.analysis.program.span = new_prog.span;
        self.analysis.program.next_node_id = next;
        self.binding_hashes = hashes;
        self.spines.bindings = spine_maxima;
        self.graph = CallGraph::build(&self.analysis.program);
        self.recondense();
        if old_names != new_names {
            self.top_env = build_top_env(&self.analysis.program);
        }

        match self.refresh(&grafted, body_changed, true) {
            Ok(()) => Ok(&self.analysis),
            Err(e) => {
                let (program, graph, dag, members, binding_hashes, scc_hashes, top_env, spines) =
                    backup;
                self.analysis.program = program;
                self.graph = graph;
                self.dag = dag;
                self.members = members;
                self.binding_hashes = binding_hashes;
                self.scc_hashes = scc_hashes;
                self.top_env = top_env;
                self.spines = spines;
                Err(UpdateError::Type(e))
            }
        }
    }

    /// Rebuilds the condensation and per-SCC member names from `graph`.
    fn recondense(&mut self) {
        self.dag = self.graph.condense();
        self.members = (0..self.dag.len())
            .map(|id| self.dag.member_names(&self.graph, id))
            .collect();
    }

    /// The fallible tail of every update: re-infer the dirty cone, settle
    /// hashes, purge invalidated contributions, and re-solve. Fails (and
    /// mutates neither `info` nor any solver state) only at re-inference;
    /// AST and topology rollback is the caller's job.
    fn refresh(
        &mut self,
        grafted: &[usize],
        reinfer_body: bool,
        topology_changed: bool,
    ) -> Result<(), TypeError> {
        let n = self.dag.len();

        // Dirty cone at SCC granularity: edited components plus every
        // transitive dependent. Dependencies have smaller ids, so one
        // forward sweep closes the set.
        let mut changed = vec![false; n];
        for &g in grafted {
            changed[self.dag.scc_of[g]] = true;
        }
        for id in 0..n {
            if !changed[id] && self.dag.sccs[id].deps.iter().any(|&d| changed[d]) {
                changed[id] = true;
            }
        }

        let mut dirty_names: BTreeSet<Symbol> = BTreeSet::new();
        for (members, &is_dirty) in self.members.iter().zip(&changed) {
            if is_dirty {
                dirty_names.extend(members.iter().copied());
            }
        }
        let old_sigs: BTreeMap<Symbol, Option<String>> = dirty_names
            .iter()
            .map(|name| (*name, self.analysis.info.sig(*name).map(|t| t.to_string())))
            .collect();
        if !dirty_names.is_empty() || reinfer_body {
            reinfer_program(
                &self.analysis.program,
                &mut self.analysis.info,
                &dirty_names,
                reinfer_body,
                &mut self.spines,
            )?;
        }

        // Per-binding hashes: every grafted binding, plus any re-inferred
        // binding whose signature moved (the signature is part of the
        // hash).
        let grafted_set: HashSet<usize> = grafted.iter().copied().collect();
        for (i, b) in self.analysis.program.bindings.iter().enumerate() {
            if !dirty_names.contains(&b.name) {
                continue;
            }
            let sig_moved = old_sigs.get(&b.name).is_some_and(|old| {
                old.as_deref()
                    != self
                        .analysis
                        .info
                        .sig(b.name)
                        .map(|t| t.to_string())
                        .as_deref()
            });
            if grafted_set.contains(&i) || sig_moved {
                self.binding_hashes[i] = binding_hash(b, &self.analysis.info);
            }
        }

        // Transitive SCC hashes. A salt change (the domain bound `d`
        // moved) or a topology change invalidates the whole vector;
        // otherwise only the cone is recomputed.
        let salt = config_salt(&self.analysis.info, &self.config);
        if salt != self.salt || topology_changed {
            self.salt = salt;
            self.scc_hashes = combine_scc_hashes(&self.salt, &self.dag, &self.binding_hashes);
        } else {
            update_scc_hashes(
                &self.salt,
                &self.dag,
                &self.binding_hashes,
                &mut self.scc_hashes,
                &changed,
            );
        }

        // Re-solve everything whose hash has no precise retained entry:
        // the dirty cone, every component degraded last round, and (after
        // a salt change) everything.
        let dirty: Vec<bool> = (0..n)
            .map(|id| {
                !self
                    .retained
                    .get(&self.scc_hashes[id])
                    .is_some_and(|r| r.precise)
            })
            .collect();

        // Purge retained entries that no clean component claims: old
        // versions of edited components, everything imprecise, and
        // contributions orphaned by binding removal. Slot entries drop at
        // refcount zero; duplicated contributions (a dependent
        // materialized a callee's slot) keep theirs alive exactly as long
        // as a live contributor remains.
        let live: HashSet<u64> = (0..n)
            .filter(|&id| !dirty[id])
            .map(|id| self.scc_hashes[id])
            .collect();
        let stale: Vec<u64> = self
            .retained
            .keys()
            .filter(|h| !live.contains(h))
            .copied()
            .collect();
        if !stale.is_empty() {
            let mut slots = self.shared.write().unwrap_or_else(|e| e.into_inner());
            for h in stale {
                let r = self.retained.remove(&h).expect("stale key just listed");
                for k in r.keys {
                    match self.refcnt.get_mut(&k) {
                        Some(c) if *c > 1 => *c -= 1,
                        Some(_) => {
                            self.refcnt.remove(&k);
                            slots.remove(&k);
                        }
                        None => unreachable!("contributed key has no refcount"),
                    }
                }
            }
        }

        self.solve(&dirty);
        Ok(())
    }

    /// Solves every flagged SCC in ascending id order against the shared
    /// slot map, merging summaries/degradations/taint exactly like the
    /// scheduled driver's deterministic merge, and retains each outcome
    /// under its content hash.
    fn solve(&mut self, dirty: &[bool]) {
        let n = self.dag.len();
        let solved_count = dirty.iter().filter(|d| **d).count();

        // The engine index only needs the components being solved plus
        // everything they can reach (closures of transitive callees flow
        // into a solve through slot values); indexing that cone instead of
        // the program keeps tiny updates proportional to the edit.
        let mut need = dirty.to_vec();
        for id in (0..n).rev() {
            if need[id] {
                for &d in &self.dag.sccs[id].deps {
                    need[d] = true;
                }
            }
        }
        let mut positions: Vec<usize> = (0..n)
            .filter(|&id| need[id])
            .flat_map(|id| self.dag.sccs[id].members.iter().copied())
            .collect();
        positions.sort_unstable();

        let Analysis {
            program,
            info,
            summaries,
            stats,
            degradations,
            schedule,
        } = &mut self.analysis;
        let program: &Program = program;
        let info: &TypeInfo = info;
        degradations.clear();

        let index = Arc::new(ProgramIndex::build_subset(program, Some(&positions)));
        let started = Instant::now();
        let share = self.budget.apportion(solved_count.max(1));
        let mut taint: Vec<Option<Symbol>> = vec![None; n];
        for id in 0..n {
            if !dirty[id] {
                continue;
            }
            let governor = Governor::with_start(share, started);
            let mut o = solve_scc(
                id,
                program,
                info,
                &self.config,
                Arc::clone(&index),
                self.top_env.clone(),
                governor,
                &self.members[id],
                &self.shared,
                true,
            );
            let keys: Vec<RecKey> = o.slots.keys().cloned().collect();
            merge_into_shared(&self.shared, std::mem::take(&mut o.slots));
            for k in &keys {
                *self.refcnt.entry(k.clone()).or_insert(0) += 1;
            }

            let inherited = self.dag.sccs[id].deps.iter().find_map(|&d| taint[d]);
            merge_stats(stats, &o.stats);
            taint[id] = o.taint.or(inherited);
            let precise = o.taint.is_none() && inherited.is_none() && o.degradations.is_empty();
            let own: BTreeSet<Symbol> = o.degradations.iter().map(|d| d.function).collect();
            for s in &o.summaries {
                summaries.insert(s.name, s.clone());
            }
            degradations.extend(o.degradations);
            if o.taint.is_none() {
                if let Some(origin) = inherited {
                    for s in &o.summaries {
                        if !own.contains(&s.name) {
                            degradations.push(Degradation {
                                function: s.name,
                                reason: DegradeReason::Transitive { origin },
                            });
                        }
                    }
                }
            }
            self.retained
                .insert(self.scc_hashes[id], Retained { keys, precise });
        }

        *schedule = ScheduleReport {
            scc_count: n,
            wave_count: self.dag.wave_count(),
            sccs_solved: solved_count,
            sccs_reused: n - solved_count,
            jobs: 1,
            ..ScheduleReport::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_source_scheduled, PolyMode};
    use crate::modular::ScheduleOptions;

    const BASE: &str = "letrec
        append = lambda(x, y). if (null x) then y
                 else cons (car x) (append (cdr x) y);
        rot = lambda(l). if (null l) then nil
              else append (rot (cdr l)) (cons (car l) nil);
        use = lambda(l). car (append l l)
     in use [1, 2] + car (rot [3])";

    fn scratch(src: &str) -> Analysis {
        analyze_source_scheduled(
            src,
            PolyMode::SimplestInstance,
            EngineConfig::default(),
            Budget::unlimited(),
            &ScheduleOptions::default(),
        )
        .expect("scratch")
    }

    fn assert_matches_scratch(inc: &Incremental, src: &str) {
        let fresh = scratch(src);
        assert_eq!(
            inc.analysis().summaries,
            fresh.summaries,
            "incremental and scratch summaries diverge"
        );
        assert!(fresh.degradations.is_empty());
        assert!(inc.analysis().degradations.is_empty());
    }

    #[test]
    fn cold_start_matches_scheduled() {
        let inc = Incremental::from_source(BASE).unwrap();
        assert_matches_scratch(&inc, BASE);
        let n = inc.analysis().schedule.scc_count;
        assert_eq!(inc.analysis().schedule.sccs_solved, n);
        assert_eq!(inc.analysis().schedule.sccs_reused, 0);
    }

    #[test]
    fn update_binding_resolves_only_the_dirty_cone() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        // `use` is a leaf of the dependent order: editing it dirties only
        // its own component.
        inc.update_binding("use", "lambda(l). car (append (cdr l) l)")
            .unwrap();
        assert_eq!(inc.analysis().schedule.sccs_solved, 1);
        assert_eq!(inc.analysis().schedule.sccs_reused, 2);
        let edited = "letrec
        append = lambda(x, y). if (null x) then y
                 else cons (car x) (append (cdr x) y);
        rot = lambda(l). if (null l) then nil
              else append (rot (cdr l)) (cons (car l) nil);
        use = lambda(l). car (append (cdr l) l)
     in use [1, 2] + car (rot [3])";
        assert_matches_scratch(&inc, edited);
    }

    #[test]
    fn textually_identical_edit_is_a_no_op() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        inc.update_binding(
            "append",
            "lambda(x, y). if (null x) then y else cons (car x) (append (cdr x) y)",
        )
        .unwrap();
        // Same text, same hash: nothing to re-solve.
        assert_eq!(inc.analysis().schedule.sccs_solved, 0);
        assert_eq!(inc.analysis().schedule.sccs_reused, 3);
        assert_matches_scratch(&inc, BASE);
    }

    #[test]
    fn editing_a_dependency_dirties_dependents() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        // `append` is a dependency of both `rot` and `use`; a genuinely
        // new text dirties all three components.
        inc.update_binding(
            "append",
            "lambda(x, y). if (null x) then append nil y
             else cons (car x) (append (cdr x) y)",
        )
        .unwrap();
        assert_eq!(inc.analysis().schedule.sccs_solved, 3);
        assert_eq!(inc.analysis().schedule.sccs_reused, 0);
        let edited = "letrec
        append = lambda(x, y). if (null x) then append nil y
                 else cons (car x) (append (cdr x) y);
        rot = lambda(l). if (null l) then nil
              else append (rot (cdr l)) (cons (car l) nil);
        use = lambda(l). car (append l l)
     in use [1, 2] + car (rot [3])";
        assert_matches_scratch(&inc, edited);
    }

    #[test]
    fn update_changing_topology_recondenses() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        // `use` stops calling `append` entirely.
        inc.update_binding("use", "lambda(l). car l").unwrap();
        let edited = "letrec
        append = lambda(x, y). if (null x) then y
                 else cons (car x) (append (cdr x) y);
        rot = lambda(l). if (null l) then nil
              else append (rot (cdr l)) (cons (car l) nil);
        use = lambda(l). car l
     in use [1, 2] + car (rot [3])";
        assert_matches_scratch(&inc, edited);
        assert_eq!(inc.analysis().schedule.sccs_solved, 1);
    }

    #[test]
    fn type_error_rolls_back() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        let before = inc.analysis().summaries.clone();
        let err = inc
            .update_binding("use", "lambda(l). car (append l 1)")
            .unwrap_err();
        assert!(matches!(err, UpdateError::Type(_)));
        assert_eq!(inc.analysis().summaries, before);
        // The rolled-back state still updates cleanly.
        inc.update_binding("use", "lambda(l). car (append l l)")
            .unwrap();
        assert_matches_scratch(&inc, BASE);
    }

    #[test]
    fn unknown_binding_is_reported() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        assert!(matches!(
            inc.update_binding("nope", "lambda(x). x"),
            Err(UpdateError::UnknownBinding(_))
        ));
    }

    #[test]
    fn update_source_keeps_unchanged_bindings() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        let edited = "letrec
        append = lambda(x, y). if (null x) then y
                 else cons (car x) (append (cdr x) y);
        rot = lambda(l). if (null l) then nil
              else append (rot (cdr l)) (cons (car l) nil);
        use = lambda(l). car (append l (cons 7 l))
     in use [1, 2] + car (rot [3])";
        inc.update_source(edited).unwrap();
        assert_eq!(inc.analysis().schedule.sccs_solved, 1);
        assert_eq!(inc.analysis().schedule.sccs_reused, 2);
        assert_matches_scratch(&inc, edited);
    }

    #[test]
    fn update_source_adds_and_removes_bindings() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        let edited = "letrec
        append = lambda(x, y). if (null x) then y
                 else cons (car x) (append (cdr x) y);
        twice = lambda(l). append l l
     in car (twice [1, 2])";
        inc.update_source(edited).unwrap();
        assert_matches_scratch(&inc, edited);
        assert!(inc
            .analysis()
            .summaries
            .contains_key(&Symbol::intern("twice")));
        assert!(!inc
            .analysis()
            .summaries
            .contains_key(&Symbol::intern("rot")));
        // `append` untouched: reused.
        assert_eq!(inc.analysis().schedule.sccs_reused, 1);
    }

    #[test]
    fn repeated_updates_stay_consistent() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        for k in 0..4 {
            let rhs = format!("lambda(l). car (append l (cons {k} l))");
            inc.update_binding("use", &rhs).unwrap();
            assert_eq!(inc.analysis().schedule.sccs_solved, 1);
        }
        let last = "letrec
        append = lambda(x, y). if (null x) then y
                 else cons (car x) (append (cdr x) y);
        rot = lambda(l). if (null l) then nil
              else append (rot (cdr l)) (cons (car l) nil);
        use = lambda(l). car (append l (cons 3 l))
     in use [1, 2] + car (rot [3])";
        assert_matches_scratch(&inc, last);
    }

    #[test]
    fn body_only_update_resolves_nothing() {
        let mut inc = Incremental::from_source(BASE).unwrap();
        let edited = BASE.replace("use [1, 2] + car (rot [3])", "use [9] + car (rot [8, 7])");
        inc.update_source(&edited).unwrap();
        assert_eq!(inc.analysis().schedule.sccs_solved, 0);
        assert_eq!(inc.analysis().schedule.sccs_reused, 3);
        assert_matches_scratch(&inc, &edited);
    }
}
