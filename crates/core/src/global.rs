//! The global escape test `G(f, i, env_e)` (paper §4.1).
//!
//! Global escape analysis characterizes a function over *every possible
//! application*: the interesting parameter is set to `⟨⟨1, s_i⟩, W^{τ_i}⟩`
//! (its whole value, behaving as badly as possible), every other parameter
//! to `⟨⟨0,0⟩, W^{τ_j}⟩`, and the abstract value of `f x₁ … xₙ` is read
//! off. The basic part of the answer is interpreted as:
//!
//! - `⟨0,0⟩` — no part of the i-th argument ever escapes `f`;
//! - `⟨1,k⟩` — the bottom `k` spines could escape; the **top `s_i − k`
//!   spines never do** (and those are what stack allocation / reuse / block
//!   reclamation can exploit).

use crate::absval::AbsVal;
use crate::be::Be;
use crate::engine::{worst_value, Engine};
use crate::error::EscapeError;
use nml_syntax::Symbol;
use nml_types::Ty;
use std::fmt;

/// The escape behaviour of one parameter, as established by the global
/// test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamEscape {
    /// 0-based parameter position.
    pub index: usize,
    /// The parameter's type.
    pub ty: Ty,
    /// `s_i`: number of spines of the parameter type.
    pub spines: u32,
    /// The raw result `G(f, i, env_e) ∈ B_e`.
    pub verdict: Be,
}

impl ParamEscape {
    /// Whether any part of the parameter may escape.
    pub fn escapes(&self) -> bool {
        self.verdict.escapes()
    }

    /// `esc_i`: the number of *spines* of the parameter that may escape
    /// (0 for `⟨0,0⟩` and for `⟨1,0⟩`, where only elements escape).
    pub fn escaping_spines(&self) -> u32 {
        if self.verdict.escapes() {
            self.verdict.spines()
        } else {
            0
        }
    }

    /// The number of **top** spines guaranteed not to escape — the spines
    /// eligible for stack allocation, in-place reuse, or block
    /// reclamation.
    pub fn retained_spines(&self) -> u32 {
        self.spines - self.escaping_spines().min(self.spines)
    }
}

impl fmt::Display for ParamEscape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "param {}: {} (s={}): G = {}",
            self.index + 1,
            self.ty,
            self.spines,
            self.verdict
        )
    }
}

/// Global escape information for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeSummary {
    /// The function's name.
    pub name: Symbol,
    /// Its (ground, simplest-instance) parameter types.
    pub param_tys: Vec<Ty>,
    /// Its result type.
    pub result_ty: Ty,
    /// Per-parameter verdicts.
    pub params: Vec<ParamEscape>,
}

impl EscapeSummary {
    /// The verdict for the (0-based) i-th parameter.
    pub fn param(&self, i: usize) -> &ParamEscape {
        &self.params[i]
    }

    /// The function's arity.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for EscapeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for p in &self.params {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

/// Runs the global escape test for parameter `i` (0-based) of top-level
/// function `name`.
///
/// # Errors
///
/// - [`EscapeError::UnknownFunction`] if `name` is not a top-level binding;
/// - [`EscapeError::BadParameterIndex`] if `i` is out of range;
/// - [`EscapeError::FixpointDiverged`] if the engine's pass budget is
///   exhausted.
pub fn global_escape_param(
    engine: &mut Engine<'_>,
    name: Symbol,
    i: usize,
) -> Result<ParamEscape, EscapeError> {
    let sig = engine
        .info()
        .sig(name)
        .ok_or_else(|| EscapeError::UnknownFunction {
            name: name.to_string(),
        })?
        .clone();
    let (params, _ret) = sig.uncurry();
    if i >= params.len() {
        return Err(EscapeError::BadParameterIndex {
            index: i,
            arity: params.len(),
        });
    }
    let args: Vec<AbsVal> = params
        .iter()
        .enumerate()
        .map(|(j, ty)| {
            let be = if i == j {
                Be::escaping(ty.spines())
            } else {
                Be::bottom()
            };
            worst_value(ty, be)
        })
        .collect();
    let verdict = engine.run(|en| {
        let f = en.top_value(name);
        en.apply_n(&f, &args).be
    })?;
    Ok(ParamEscape {
        index: i,
        ty: params[i].clone(),
        spines: params[i].spines(),
        verdict,
    })
}

/// The worst-case summary for a function of signature `sig`: every
/// parameter is reported fully escaping (`⟨1, s_i⟩`). This is the sound
/// degradation target when the real test cannot run (budget exhausted,
/// engine fault): for any parameter, the true verdict is `⊑ ⟨1, s_i⟩` by
/// construction of the chain, so every consumer of the summary
/// (stack allocation, reuse, block reclamation) simply finds nothing to
/// optimize — never an unsound optimization.
pub fn worst_case_summary(name: Symbol, sig: &Ty) -> EscapeSummary {
    let (param_tys, result_ty) = sig.uncurry();
    let params = param_tys
        .iter()
        .enumerate()
        .map(|(i, ty)| ParamEscape {
            index: i,
            ty: ty.clone(),
            spines: ty.spines(),
            verdict: Be::escaping(ty.spines()),
        })
        .collect();
    EscapeSummary {
        name,
        param_tys,
        result_ty,
        params,
    }
}

/// Runs the global escape test for every parameter of `name`.
///
/// # Errors
///
/// See [`global_escape_param`].
pub fn global_escape(engine: &mut Engine<'_>, name: Symbol) -> Result<EscapeSummary, EscapeError> {
    let sig = engine
        .info()
        .sig(name)
        .ok_or_else(|| EscapeError::UnknownFunction {
            name: name.to_string(),
        })?
        .clone();
    let (param_tys, result_ty) = sig.uncurry();
    let mut params = Vec::with_capacity(param_tys.len());
    for i in 0..param_tys.len() {
        params.push(global_escape_param(engine, name, i)?);
    }
    Ok(EscapeSummary {
        name,
        param_tys,
        result_ty,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn summary(src: &str, f: &str) -> EscapeSummary {
        let program = parse_program(src).expect("parse");
        let info = infer_program(&program).expect("infer");
        let mut engine = Engine::new(&program, &info);
        global_escape(&mut engine, Symbol::intern(f)).expect("analysis")
    }

    const APPEND: &str = "letrec append x y = if (null x) then y
                                              else cons (car x) (append (cdr x) y)
                          in append [1] [2]";

    #[test]
    fn paper_append_param1() {
        // G(APPEND, 1) = ⟨1,0⟩: all but the top spine of x escapes.
        let s = summary(APPEND, "append");
        assert_eq!(s.param(0).verdict, Be::escaping(0));
        assert_eq!(s.param(0).spines, 1);
        assert_eq!(s.param(0).escaping_spines(), 0);
        assert_eq!(s.param(0).retained_spines(), 1);
    }

    #[test]
    fn paper_append_param2() {
        // G(APPEND, 2) = ⟨1,1⟩: all of y escapes.
        let s = summary(APPEND, "append");
        assert_eq!(s.param(1).verdict, Be::escaping(1));
        assert_eq!(s.param(1).retained_spines(), 0);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let program = parse_program(APPEND).unwrap();
        let info = infer_program(&program).unwrap();
        let mut engine = Engine::new(&program, &info);
        let err = global_escape(&mut engine, Symbol::intern("missing")).unwrap_err();
        assert!(matches!(err, EscapeError::UnknownFunction { .. }));
    }

    #[test]
    fn bad_parameter_index_is_an_error() {
        let program = parse_program(APPEND).unwrap();
        let info = infer_program(&program).unwrap();
        let mut engine = Engine::new(&program, &info);
        let err = global_escape_param(&mut engine, Symbol::intern("append"), 2).unwrap_err();
        assert!(matches!(
            err,
            EscapeError::BadParameterIndex { index: 2, arity: 2 }
        ));
    }

    #[test]
    fn nonescaping_parameter() {
        // sum consumes its list without returning any part of it.
        let s = summary(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
             in sum [1, 2]",
            "sum",
        );
        assert_eq!(s.param(0).verdict, Be::bottom());
        assert_eq!(s.param(0).retained_spines(), 1);
    }

    #[test]
    fn fully_escaping_parameter() {
        let s = summary("letrec id l = l in id [1]", "id");
        // Simplest instance: 'a = int, so id : int -> int; whole argument
        // escapes: ⟨1,0⟩ at spines 0.
        assert_eq!(s.param(0).verdict, Be::escaping(0));
        assert_eq!(s.param(0).spines, 0);
    }

    #[test]
    fn rev_all_but_top_spine_escapes() {
        let s = summary(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y);
                    rev l = if (null l) then nil
                            else append (rev (cdr l)) (cons (car l) nil)
             in rev [1, 2, 3]",
            "rev",
        );
        assert_eq!(s.param(0).verdict, Be::escaping(0));
        assert_eq!(s.param(0).retained_spines(), 1);
    }

    #[test]
    fn higher_order_parameter_uses_worst_case() {
        // apply f x = f x: with f unknown (worst), x escapes through it.
        let s = summary("letrec apply f x = f x in apply (lambda(y). y) 1", "apply");
        // x (param 2, base type at simplest instance): ⟨1,0⟩ — it escapes
        // through the unknown function, which W models by joining the
        // basic parts of everything applied to it.
        assert_eq!(s.param(1).verdict, Be::escaping(0));
        // f itself does not escape: `apply` returns f's *result*, never
        // the closure f. (A function cannot return itself in nml's type
        // system — that would need a recursive type — so W soundly omits
        // its own basic part from its results.)
        assert_eq!(s.param(0).verdict, Be::bottom());
    }
}
