//! Polymorphic invariance (paper §5, Theorem 1).
//!
//! For any two monotype instances `f'`, `f''` of a polymorphic function
//! `f`, the global escape test agrees up to the spine offset:
//! either both are `⟨0,0⟩`, or both are `⟨1,k'⟩`/`⟨1,k''⟩` with
//! `s'_i − k' = s''_i − k''` — the number of **retained top spines** is
//! the invariant. Hence it suffices to analyze the simplest instance and
//! *transfer* the result to any other instance, which this module
//! implements (and the test suite verifies against direct analysis of the
//! larger instances).

use crate::be::Be;
use crate::global::{EscapeSummary, ParamEscape};
use nml_types::Ty;

/// Transfers a verdict established at a parameter with `from_spines` to an
/// instance of the same parameter with `to_spines`, using Theorem 1:
/// retained top spines are invariant.
///
/// Non-escaping verdicts transfer unchanged. For an escaping verdict
/// `⟨1,k⟩`, the transferred verdict is `⟨1, k + (to − from)⟩` — the same
/// number of top spines is retained.
///
/// # Panics
///
/// Panics if `to_spines < from_spines − k` (the target instance cannot
/// retain more spines than it has); that situation cannot arise between
/// genuine instances of one polymorphic function.
///
/// ```
/// use nml_escape::{transfer_verdict, Be};
///
/// // append at int list: ⟨1,0⟩ retains 1 top spine; at int list list it
/// // must be ⟨1,1⟩ (still retaining exactly one).
/// assert_eq!(transfer_verdict(Be::escaping(0), 1, 2), Be::escaping(1));
/// assert_eq!(transfer_verdict(Be::bottom(), 1, 3), Be::bottom());
/// ```
#[must_use]
pub fn transfer_verdict(verdict: Be, from_spines: u32, to_spines: u32) -> Be {
    if !verdict.escapes() {
        return verdict;
    }
    let k = verdict.spines();
    let retained = from_spines - k.min(from_spines);
    assert!(
        to_spines >= retained,
        "target instance has {to_spines} spines but must retain {retained}"
    );
    Be::escaping(to_spines - retained)
}

/// Transfers a whole parameter verdict to a new parameter type.
#[must_use]
pub fn transfer_param(p: &ParamEscape, to_ty: &Ty) -> ParamEscape {
    let to_spines = to_ty.spines();
    ParamEscape {
        index: p.index,
        ty: to_ty.clone(),
        spines: to_spines,
        verdict: transfer_verdict(p.verdict, p.spines, to_spines),
    }
}

/// Checks Theorem 1 between two summaries of instances of the same
/// polymorphic function: every parameter pair must either both not escape
/// or retain the same number of top spines.
pub fn invariance_holds(a: &EscapeSummary, b: &EscapeSummary) -> bool {
    a.params.len() == b.params.len()
        && a.params.iter().zip(&b.params).all(|(pa, pb)| {
            match (pa.verdict.escapes(), pb.verdict.escapes()) {
                (false, false) => true,
                (true, true) => pa.retained_spines() == pb.retained_spines(),
                _ => false,
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::global::global_escape;
    use nml_syntax::{parse_program, Symbol};
    use nml_types::infer_program;

    fn summary_of(src: &str, name: &str) -> EscapeSummary {
        let p = parse_program(src).expect("parse");
        let info = infer_program(&p).expect("infer");
        let mut en = Engine::new(&p, &info);
        global_escape(&mut en, Symbol::intern(name)).expect("global test")
    }

    #[test]
    fn transfer_keeps_nonescape() {
        assert_eq!(transfer_verdict(Be::bottom(), 1, 3), Be::bottom());
    }

    #[test]
    fn transfer_shifts_spines() {
        // append at int list: ⟨1,0⟩ with s=1 retains 1 top spine.
        // At int list list (s=2) it must be ⟨1,1⟩ (retain 1).
        assert_eq!(transfer_verdict(Be::escaping(0), 1, 2), Be::escaping(1));
        assert_eq!(transfer_verdict(Be::escaping(1), 1, 2), Be::escaping(2));
        assert_eq!(transfer_verdict(Be::escaping(2), 2, 1), Be::escaping(1));
    }

    #[test]
    #[should_panic(expected = "must retain")]
    fn transfer_rejects_impossible_targets() {
        // Retaining 2 spines cannot fit a 1-spine instance.
        let _ = transfer_verdict(Be::escaping(0), 2, 1);
    }

    /// Directly analyzes a *pinned* monotype instance of a function by
    /// monomorphizing the program and testing the specialized copy.
    fn instance_summary(src: &str, specialized: &str) -> EscapeSummary {
        let p = parse_program(src).expect("parse");
        let m = nml_types::infer_and_monomorphize(&p).expect("mono");
        let mut en = Engine::new(&m.program, &m.info);
        global_escape(&mut en, Symbol::intern(specialized)).expect("global test")
    }

    /// append instantiated at `int list` vs `int list list`: analyzing
    /// both directly must satisfy Theorem 1 and match `transfer_verdict`.
    #[test]
    fn append_instances_are_invariant() {
        let flat = instance_summary(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
            "append__i",
        );
        let nested = instance_summary(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [[1]] [[2]]",
            "append__iL",
        );
        assert!(invariance_holds(&flat, &nested));
        // flat: ⟨1,0⟩ at s=1; nested: ⟨1,1⟩ at s=2.
        assert_eq!(flat.param(0).verdict, Be::escaping(0));
        assert_eq!(nested.param(0).verdict, Be::escaping(1));
        assert_eq!(
            transfer_verdict(flat.param(0).verdict, 1, 2),
            nested.param(0).verdict
        );
        assert_eq!(
            transfer_verdict(flat.param(1).verdict, 1, 2),
            nested.param(1).verdict
        );
    }

    #[test]
    fn length_instances_are_invariant() {
        let flat = summary_of(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l) in len [1]",
            "len",
        );
        let nested = summary_of(
            "letrec len l = if (null l) then 0 else 1 + len (cdr l) in len [[1]]",
            "len",
        );
        assert!(invariance_holds(&flat, &nested));
        assert_eq!(flat.param(0).verdict, Be::bottom());
        assert_eq!(nested.param(0).verdict, Be::bottom());
    }

    #[test]
    fn transfer_param_rebuilds_type_info() {
        let flat = summary_of(
            "letrec append x y = if (null x) then y
                                 else cons (car x) (append (cdr x) y)
             in append [1] [2]",
            "append",
        );
        let to_ty = Ty::list(Ty::list(Ty::Int));
        let p = transfer_param(flat.param(0), &to_ty);
        assert_eq!(p.spines, 2);
        assert_eq!(p.verdict, Be::escaping(1));
        assert_eq!(p.retained_spines(), 1);
    }
}
