//! The abstract escape interpreter and its fixpoint engine (paper §3.4,
//! §3.5).
//!
//! The engine evaluates nml expressions in the abstract domain
//! [`AbsVal`]. Conditionals take both branches and join; `letrec` bindings
//! live in *slots* that grow monotonically toward the fixpoint; closure
//! applications are memoized per `(lambda, environment, argument)` and
//! re-evaluated pass by pass until no cached result and no slot changes —
//! the naive Kleene iteration whose per-function trace is exactly the
//! `append⁽⁰⁾, append⁽¹⁾, append⁽²⁾` sequence of the paper's appendix.
//!
//! Termination (paper §3.5) rests on the finiteness of the abstract
//! domain. Our symbolic function representation can in principle nest
//! closure environments without bound on adversarial higher-order
//! programs, so the engine applies a *widening* safeguard: any value whose
//! structural depth exceeds a threshold is replaced by the worst-case
//! function `W` with the same basic part, which is always an
//! over-approximation (Definition 2 is the top of the behaviour order used
//! by the escape tests).

use crate::absval::{AbsEnv, AbsVal, EnvEntry, FunVal, RecKey};
use crate::be::Be;
use crate::budget::{Budget, Governor, Resource};
use crate::error::EscapeError;
use nml_syntax::ast::{Const, Expr, ExprKind, Prim, Program};
use nml_syntax::visit::{free_vars, walk_exprs};
use nml_syntax::{NodeId, Symbol};
use nml_types::{Ty, TypeInfo};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Tuning knobs for the fixpoint engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of outer fixpoint passes before giving up.
    pub max_passes: u32,
    /// Structural depth beyond which values are widened to `W`.
    pub widen_depth: u32,
    /// `remaining` arity given to widened worst-case functions. Any value
    /// at least the maximal curried arity in the program is sound; larger
    /// is also sound (extra applications keep joining).
    pub widen_arity: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_passes: 10_000,
            widen_depth: 24,
            widen_arity: 64,
        }
    }
}

/// Counters describing one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Outer fixpoint passes executed.
    pub passes: u32,
    /// Number of distinct memoized applications.
    pub memo_entries: usize,
    /// Per top-level binding: how many times a memoized application result
    /// belonging to it changed. `changes + 1` is the Kleene iteration
    /// count of the appendix (`+1` for the final confirming pass).
    pub updates_per_binding: BTreeMap<Symbol, u32>,
    /// How many values were widened.
    pub widenings: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    lambda: NodeId,
    env: AbsEnv,
    arg: AbsVal,
}

#[derive(Debug, Clone)]
struct MemoEntry {
    value: AbsVal,
    epoch: u32,
    in_progress: bool,
}

/// Lambda tables shared by every engine over one program: node id to
/// (parameter, body), cached free-variable sets, and owning top-level
/// binding. Building this once per analysis — instead of once per
/// SCC-scoped engine — is what keeps modular scheduling O(program)
/// instead of O(program · sccs).
pub struct ProgramIndex<'a> {
    /// lambda node -> (parameter, body pointer).
    lambdas: HashMap<NodeId, (Symbol, &'a Expr)>,
    /// lambda node -> cached free identifiers.
    lambda_free: HashMap<NodeId, BTreeSet<Symbol>>,
    /// lambda node -> top-level binding it belongs to (for stats).
    lambda_owner: HashMap<NodeId, Symbol>,
    /// binding name -> position in `program.bindings` (always complete,
    /// even for subset indexes — it is cheap and lets scoped engines
    /// refresh only their members).
    binding_pos: HashMap<Symbol, usize>,
}

impl<'a> ProgramIndex<'a> {
    /// Indexes every binding and the program body.
    pub fn build(program: &'a Program) -> Self {
        Self::build_subset(program, None)
    }

    /// Indexes only the bindings whose position is in `members` (plus the
    /// program body when `members` is `None`). The incremental scheduler
    /// uses this to index a dirty cone instead of the whole program.
    pub fn build_subset(program: &'a Program, members: Option<&[usize]>) -> Self {
        let mut idx = ProgramIndex {
            lambdas: HashMap::new(),
            lambda_free: HashMap::new(),
            lambda_owner: HashMap::new(),
            binding_pos: program
                .bindings
                .iter()
                .enumerate()
                .map(|(i, b)| (b.name, i))
                .collect(),
        };
        match members {
            Some(members) => {
                for &i in members {
                    if let Some(b) = program.bindings.get(i) {
                        idx.index_expr(&b.expr, Some(b.name));
                    }
                }
            }
            None => {
                for b in &program.bindings {
                    idx.index_expr(&b.expr, Some(b.name));
                }
                idx.index_expr(&program.body, None);
            }
        }
        idx
    }

    fn index_expr(&mut self, e: &'a Expr, owner: Option<Symbol>) {
        walk_exprs(e, &mut |node| {
            if let ExprKind::Lambda(param, body) = &node.kind {
                self.lambdas.insert(node.id, (*param, body.as_ref()));
                self.lambda_free.insert(node.id, free_vars(node));
                if let Some(o) = owner {
                    self.lambda_owner.insert(node.id, o);
                }
            }
        });
    }
}

/// Converged slot values shared across engines: consulted lazily on a
/// local miss instead of being cloned wholesale into every engine.
pub type SharedSlots = Arc<std::sync::RwLock<HashMap<RecKey, AbsVal>>>;

/// The abstract escape interpreter over one (monomorphically typed)
/// program.
pub struct Engine<'a> {
    program: &'a Program,
    info: &'a TypeInfo,
    config: EngineConfig,
    /// Shared lambda tables (possibly shared with sibling engines).
    index: Arc<ProgramIndex<'a>>,
    /// `letrec` binding slots, grown monotonically.
    rec_slots: HashMap<RecKey, AbsVal>,
    /// Fallback slot values consulted (and materialized locally) when a
    /// key misses `rec_slots` — the converged exports of already-solved
    /// SCCs. Reading through instead of eagerly seeding keeps per-SCC
    /// setup proportional to what the SCC actually touches.
    base_slots: Option<SharedSlots>,
    /// The top-level environment, built once per engine (or injected and
    /// shared across sibling engines — it only depends on the program).
    top_env_cache: std::cell::OnceCell<AbsEnv>,
    /// When set, only these top-level bindings are refreshed each pass;
    /// the rest are treated as already-converged (their slots come from
    /// [`Engine::seed_slots`]). This is what makes the engine *modular*:
    /// an SCC's engine scopes to the SCC's members and pins every callee.
    scope: Option<BTreeSet<Symbol>>,
    memo: HashMap<MemoKey, MemoEntry>,
    dirty: bool,
    pass: u32,
    /// Meters cumulative resource usage across every query on this engine.
    governor: Governor,
    /// First internal inconsistency observed during evaluation; surfaced
    /// as a typed error by [`Engine::run`] instead of a panic.
    pending_error: Option<EscapeError>,
    /// Statistics for the current/most recent run.
    pub stats: EngineStats,
}

impl<'a> Engine<'a> {
    /// Creates an engine over `program` with type information `info`
    /// (which must come from inference over this exact program).
    pub fn new(program: &'a Program, info: &'a TypeInfo) -> Self {
        Engine::with_config(program, info, EngineConfig::default())
    }

    /// Creates an engine with explicit configuration, building a private
    /// [`ProgramIndex`].
    pub fn with_config(program: &'a Program, info: &'a TypeInfo, config: EngineConfig) -> Self {
        Engine::with_index(
            program,
            info,
            config,
            Arc::new(ProgramIndex::build(program)),
        )
    }

    /// Creates an engine over pre-built (shared) lambda tables. The index
    /// must cover every lambda this engine will apply; lambdas outside it
    /// degrade soundly to the worst-case function.
    pub fn with_index(
        program: &'a Program,
        info: &'a TypeInfo,
        config: EngineConfig,
        index: Arc<ProgramIndex<'a>>,
    ) -> Self {
        Engine {
            program,
            info,
            config,
            index,
            rec_slots: HashMap::new(),
            base_slots: None,
            top_env_cache: std::cell::OnceCell::new(),
            scope: None,
            memo: HashMap::new(),
            dirty: false,
            pass: 0,
            governor: Governor::default(),
            pending_error: None,
            stats: EngineStats::default(),
        }
    }

    /// Starts metering this engine against `budget` (from now).
    pub fn set_budget(&mut self, budget: Budget) {
        self.governor = Governor::new(budget);
    }

    /// The governor metering this engine.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// Replaces the governor, keeping its accumulated usage. Used by the
    /// driver to carry one budget across engine rebuilds (e.g. after a
    /// quarantined panic).
    pub fn set_governor(&mut self, governor: Governor) {
        self.governor = governor;
    }

    /// Restricts the per-pass refresh to the given top-level bindings
    /// (`None` restores whole-program refresh). Bindings outside the scope
    /// keep whatever slot values were seeded — the modular scheduler seeds
    /// them with the *converged* values of already-solved callee SCCs, so
    /// pinning them is exact, not an approximation.
    pub fn set_scope(&mut self, scope: Option<BTreeSet<Symbol>>) {
        self.scope = scope;
    }

    /// Installs a shared fallback slot map. Keys missing from this
    /// engine's local slots are read (and cached) from here; the values
    /// must be *converged* exports of already-finalized components, so
    /// reading through is exact.
    pub fn set_base_slots(&mut self, base: Option<SharedSlots>) {
        self.base_slots = base;
    }

    /// Local slot value for `k`, falling back to (and materializing from)
    /// the shared base map, then `⊥`.
    fn slot_value(&mut self, k: &RecKey) -> AbsVal {
        if let Some(v) = self.rec_slots.get(k) {
            return v.clone();
        }
        if let Some(base) = &self.base_slots {
            let hit = base
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(k)
                .cloned();
            if let Some(v) = hit {
                self.rec_slots.insert(k.clone(), v.clone());
                return v;
            }
        }
        AbsVal::bottom()
    }

    /// Pulls `k`'s base value into the local slots (without reading it),
    /// so a following join starts from the converged value instead of `⊥`.
    fn materialize_base(&mut self, k: &RecKey) {
        if self.base_slots.is_some() && !self.rec_slots.contains_key(k) {
            let _ = self.slot_value(k);
        }
    }

    /// A snapshot of every `letrec` slot (top-level *and* inner). The full
    /// map matters: a converged top-level value can embed references to
    /// inner-`letrec` slots inside captured closure environments, and a
    /// dependent engine resolving such a reference against an empty slot
    /// would silently read `⊥` — an under-approximation. Exporting the
    /// whole map keeps every reachable reference meaningful.
    pub fn export_slots(&self) -> HashMap<RecKey, AbsVal> {
        self.rec_slots.clone()
    }

    /// Joins previously exported slot values into this engine. Used by the
    /// modular scheduler to seed an SCC's engine with the finalized values
    /// of every callee SCC before its local fixpoint starts.
    pub fn seed_slots(&mut self, slots: &HashMap<RecKey, AbsVal>) {
        for (k, v) in slots {
            let entry = self.rec_slots.entry(k.clone()).or_default();
            let joined = entry.join(v);
            if joined != *entry {
                *entry = joined;
            }
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The type information in use.
    pub fn info(&self) -> &'a TypeInfo {
        self.info
    }

    /// The environment of the program's top-level `letrec`: every binding
    /// is a stable slot reference.
    pub fn top_env(&self) -> AbsEnv {
        self.top_env_cache
            .get_or_init(|| build_top_env(self.program))
            .clone()
    }

    /// Injects a pre-built top-level environment (see [`build_top_env`]);
    /// the modular scheduler shares one across every SCC engine instead
    /// of rebuilding an `O(bindings)` map per engine per pass.
    pub fn set_top_env(&mut self, env: AbsEnv) {
        let _ = self.top_env_cache.set(env);
    }

    /// Runs `query` to a fixpoint: repeatedly refreshes the top-level
    /// bindings and re-executes the query until neither the memo tables
    /// nor the query result change.
    ///
    /// # Errors
    ///
    /// - [`EscapeError::FixpointDiverged`] if `max_passes` is exceeded
    ///   (indicating a widening threshold too high for the program);
    /// - [`EscapeError::BudgetExhausted`] if the engine's [`Budget`] ran
    ///   out (callers may soundly fall back to the worst-case summary);
    /// - [`EscapeError::MissingSpineAnnotation`] /
    ///   [`EscapeError::UnknownLambda`] if evaluation met an inconsistent
    ///   AST (the returned value side stays sound; the error reports it).
    pub fn run<T: Eq + Clone>(
        &mut self,
        mut query: impl FnMut(&mut Self) -> T,
    ) -> Result<T, EscapeError> {
        let mut last: Option<T> = None;
        loop {
            if let Some(r) = self.governor.charge_pass() {
                return Err(self.budget_error(r));
            }
            self.pass += 1;
            if self.pass > self.config.max_passes {
                return Err(EscapeError::FixpointDiverged {
                    passes: self.pass - 1,
                });
            }
            self.stats.passes = self.pass;
            self.dirty = false;
            self.refresh_top_bindings();
            let r = query(self);
            self.stats.memo_entries = self.memo.len();
            if let Some(e) = self.pending_error.take() {
                return Err(e);
            }
            if let Some(res) = self.governor.exhausted() {
                return Err(self.budget_error(res));
            }
            if !self.dirty && last.as_ref() == Some(&r) {
                return Ok(r);
            }
            last = Some(r);
        }
    }

    fn budget_error(&self, r: Resource) -> EscapeError {
        EscapeError::BudgetExhausted {
            resource: r,
            used: self.governor.used_of(r),
            limit: self.governor.limit_of(r),
        }
    }

    /// Records the first internal inconsistency; evaluation continues with
    /// a sound over-approximation and [`Engine::run`] reports the error.
    fn note_error(&mut self, e: EscapeError) {
        if self.pending_error.is_none() {
            self.pending_error = Some(e);
        }
    }

    /// Like [`Engine::run`], but also returns the query's value at every
    /// pass — the Kleene iteration trace the paper's appendix writes as
    /// `append⁽⁰⁾, append⁽¹⁾, append⁽²⁾`. The final element equals the
    /// converged result (the confirming pass).
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_traced<T: Eq + Clone>(
        &mut self,
        mut query: impl FnMut(&mut Self) -> T,
    ) -> Result<(T, Vec<T>), EscapeError> {
        let mut trace = Vec::new();
        let result = self.run(|en| {
            let v = query(en);
            trace.push(v.clone());
            v
        })?;
        Ok((result, trace))
    }

    /// Re-evaluates every top-level binding into its slot (only the
    /// scoped members when a scope is set — in program order, exactly as
    /// the unscoped sweep would visit them).
    fn refresh_top_bindings(&mut self) {
        let program = self.program;
        let env = self.top_env();
        let empty: AbsEnv = Arc::new(BTreeMap::new());
        let positions: Vec<usize> = match &self.scope {
            Some(scope) => {
                let mut ids: Vec<usize> = scope
                    .iter()
                    .filter_map(|n| self.index.binding_pos.get(n).copied())
                    .collect();
                ids.sort_unstable();
                ids
            }
            None => (0..program.bindings.len()).collect(),
        };
        for i in positions {
            let b = &program.bindings[i];
            let key = RecKey {
                letrec: program.body.id,
                name: b.name,
                outer: empty.clone(),
            };
            let v = self.eval(&b.expr, &env);
            self.update_slot(key, v);
        }
    }

    /// Current abstract value of a top-level binding. Call inside
    /// [`Engine::run`] for a converged answer.
    pub fn top_value(&mut self, name: Symbol) -> AbsVal {
        let env = self.top_env();
        match env.get(&name) {
            Some(EnvEntry::Rec(k)) => {
                let k = k.clone();
                self.slot_value(&k)
            }
            _ => AbsVal::bottom(),
        }
    }

    fn update_slot(&mut self, key: RecKey, v: AbsVal) {
        let v = self.maybe_widen(v);
        // Join must start from the converged base value (if any), not ⊥:
        // a locally-absent key may still have a finalized value from an
        // earlier component, and losing it would under-approximate.
        self.materialize_base(&key);
        let entry = self.rec_slots.entry(key).or_default();
        let joined = entry.join(&v);
        if joined != *entry {
            *entry = joined;
            self.dirty = true;
        }
    }

    fn maybe_widen(&mut self, v: AbsVal) -> AbsVal {
        let depth = v.depth();
        self.governor.charge_nodes(u64::from(depth));
        // Once the budget is gone, collapse aggressively: every structured
        // value becomes `W` (sound — Definition 2 tops the behaviour
        // order), which keeps the in-flight pass cheap while `run`
        // surfaces the exhaustion as a typed error.
        let threshold = if self.governor.exhausted().is_some() {
            1
        } else {
            self.config.widen_depth
        };
        if depth > threshold {
            self.stats.widenings += 1;
            v.widen(self.config.widen_arity)
        } else {
            v
        }
    }

    /// Abstract evaluation `E⟦e⟧env` (paper §3.4).
    ///
    /// `e` should consist of nodes of the engine's program (same node
    /// ids): lambda bodies are resolved through tables built at
    /// construction. Unknown `lambda` or `car` nodes do not panic — they
    /// evaluate to sound over-approximations (worst-case function,
    /// identity `car`) and [`Engine::run`] reports a typed error.
    pub fn eval(&mut self, e: &Expr, env: &AbsEnv) -> AbsVal {
        match &e.kind {
            ExprKind::Const(c) => self.const_val(e.id, *c),
            ExprKind::Var(x) => match env.get(x) {
                Some(EnvEntry::Val(v)) => v.clone(),
                Some(EnvEntry::Rec(k)) => {
                    let k = k.clone();
                    self.slot_value(&k)
                }
                // nullenv_e maps unknowns to the least element.
                None => AbsVal::bottom(),
            },
            ExprKind::App(f, a) => {
                let fv = self.eval(f, env);
                let av = self.eval(a, env);
                self.apply(&fv, &av)
            }
            ExprKind::Lambda(_, _) => self.make_closure(e, env),
            // Both branches may be taken at compile time; the condition's
            // value cannot reach the result (it is a bool), so it is not
            // evaluated.
            ExprKind::If(_c, t, f) => {
                let tv = self.eval(t, env);
                let fv = self.eval(f, env);
                tv.join(&fv)
            }
            ExprKind::Letrec(bs, body) => {
                let mut inner = (**env).clone();
                let keys: Vec<RecKey> = bs
                    .iter()
                    .map(|b| RecKey {
                        letrec: e.id,
                        name: b.name,
                        outer: env.clone(),
                    })
                    .collect();
                for (b, k) in bs.iter().zip(&keys) {
                    inner.insert(b.name, EnvEntry::Rec(k.clone()));
                }
                let inner: AbsEnv = Arc::new(inner);
                for (b, k) in bs.iter().zip(&keys) {
                    let v = self.eval(&b.expr, &inner);
                    self.update_slot(k.clone(), v);
                }
                self.eval(body, &inner)
            }
            ExprKind::Annot(innr, _) => self.eval(innr, env),
        }
    }

    /// `E⟦lambda(x).e⟧env = ⟨V, λy.E⟦e⟧env[x ↦ y]⟩` with
    /// `V = ⟨0,0⟩ ⊔ ⊔_{z ∈ F} (env⟦z⟧)₍₁₎` over all free identifiers `F`.
    fn make_closure(&mut self, lam: &Expr, env: &AbsEnv) -> AbsVal {
        // Lambdas outside the indexed program (foreign ASTs spliced in by
        // scaffolding) have no cached free-variable set; computing it on
        // the fly keeps the capture analysis exact. Their *application*
        // still degrades to worst-case in `apply_closure`, because the
        // body pointer cannot be stored.
        let index = Arc::clone(&self.index);
        let computed;
        let free = match index.lambda_free.get(&lam.id) {
            Some(f) => f,
            None => {
                computed = free_vars(lam);
                &computed
            }
        };
        let mut captured = BTreeMap::new();
        let mut v = Be::bottom();
        for z in free {
            if let Some(entry) = env.get(z) {
                let be = match entry {
                    EnvEntry::Val(val) => val.be,
                    EnvEntry::Rec(k) => {
                        let k = k.clone();
                        self.slot_value(&k).be
                    }
                };
                v = v.join(be);
                captured.insert(*z, entry.clone());
            }
        }
        self.maybe_widen(AbsVal {
            be: v,
            fun: FunVal::Closure {
                lambda: lam.id,
                env: Arc::new(captured),
            },
        })
    }

    /// The abstract constant semantics `C⟦c⟧` (paper §3.4).
    fn const_val(&mut self, node: NodeId, c: Const) -> AbsVal {
        match c {
            Const::Int(_) | Const::Bool(_) | Const::Nil => AbsVal::bottom(),
            Const::Prim(p) => {
                let fun = match p {
                    Prim::Cons => FunVal::Cons0,
                    Prim::Car => FunVal::Car {
                        s: self.car_spine_of(node),
                    },
                    Prim::Cdr => FunVal::Cdr,
                    Prim::Null => FunVal::Null,
                    // The tuple extension (paper §1): the abstract domain
                    // collapses D^{τ1×τ2} to the join of the components,
                    // exactly as D^{τ list} collapses to D^τ. `pair` then
                    // behaves like `cons` (capture, then join), and the
                    // projections are the identity (sound: the pair's
                    // value dominates each component).
                    Prim::MkPair => FunVal::Cons0,
                    Prim::Fst | Prim::Snd => FunVal::Cdr,
                    Prim::Add
                    | Prim::Sub
                    | Prim::Mul
                    | Prim::Div
                    | Prim::Eq
                    | Prim::Ne
                    | Prim::Lt
                    | Prim::Le
                    | Prim::Gt
                    | Prim::Ge => FunVal::Arith0,
                };
                AbsVal {
                    be: Be::bottom(),
                    fun,
                }
            }
        }
    }

    fn car_spine_of(&mut self, node: NodeId) -> u32 {
        if let Some(&s) = self.info.car_spines.get(&node) {
            return s;
        }
        // Synthetic car nodes (from escape-test scaffolding) fall back to
        // the node's type if present.
        if let Some(Ty::Fun(dom, _)) = self.info.node_ty.get(&node) {
            return dom.spines();
        }
        // No annotation at all: treat the car as `sub^0`. `sub^s` is
        // reductive for every `s` (a.sub(s) ⊑ a), so passing the argument
        // through unreduced over-approximates any true spine count — the
        // result stays sound while the typed error reports the broken AST.
        self.note_error(EscapeError::MissingSpineAnnotation { node });
        0
    }

    /// Abstract application: dispatches on the function component.
    pub fn apply(&mut self, f: &AbsVal, arg: &AbsVal) -> AbsVal {
        let result = match &f.fun {
            // err can never be applied in a well-typed program; ⊥ is the
            // robust answer for ill-typed scaffolding.
            FunVal::Err => AbsVal::bottom(),
            FunVal::Worst { remaining, acc } => {
                let acc2 = acc.join(arg.be);
                if *remaining <= 1 {
                    AbsVal::base(acc2)
                } else {
                    AbsVal {
                        be: acc2,
                        fun: FunVal::Worst {
                            remaining: remaining - 1,
                            acc: acc2,
                        },
                    }
                }
            }
            // C⟦cons⟧ = ⟨⟨0,0⟩, λx.⟨x₍₁₎, λy. x ⊔ y⟩⟩
            FunVal::Cons0 => AbsVal {
                be: arg.be,
                fun: FunVal::Cons1(Arc::new(arg.clone())),
            },
            FunVal::Cons1(x) => x.join(arg),
            // C⟦car^s⟧ = ⟨⟨0,0⟩, λx. sub^s(x)⟩
            FunVal::Car { s } => arg.sub(*s),
            // Abstract cdr is the identity: D^{τ list} = D^τ.
            FunVal::Cdr => arg.clone(),
            FunVal::Null => AbsVal::bottom(),
            // C⟦+⟧ = ⟨⟨0,0⟩, λx.⟨x₍₁₎, λy.⟨⟨0,0⟩, err⟩⟩⟩
            FunVal::Arith0 => AbsVal {
                be: arg.be,
                fun: FunVal::Arith1,
            },
            FunVal::Arith1 => AbsVal::bottom(),
            FunVal::Closure { lambda, env } => {
                let (lambda, env) = (*lambda, env.clone());
                self.apply_closure(lambda, env, arg.clone())
            }
            FunVal::Join(parts) => {
                let parts = parts.clone();
                let mut acc = AbsVal::bottom();
                for p in parts.iter() {
                    let pf = AbsVal {
                        be: f.be,
                        fun: p.clone(),
                    };
                    let r = self.apply(&pf, arg);
                    acc = acc.join(&r);
                }
                acc
            }
        };
        self.maybe_widen(result)
    }

    fn apply_closure(&mut self, lambda: NodeId, env: AbsEnv, arg: AbsVal) -> AbsVal {
        let Some(&(param, body)) = self.index.lambdas.get(&lambda) else {
            // A closure over a lambda the engine never indexed: its body
            // is unknown, so answer with the worst-case function — it
            // dominates every possible behaviour (Definition 2) — and
            // report the inconsistency as a typed error.
            self.note_error(EscapeError::UnknownLambda { node: lambda });
            return AbsVal {
                be: arg.be,
                fun: FunVal::Worst {
                    remaining: self.config.widen_arity,
                    acc: arg.be,
                },
            };
        };
        let key = MemoKey {
            lambda,
            env: env.clone(),
            arg: arg.clone(),
        };
        if let Some(entry) = self.memo.get_mut(&key) {
            if entry.in_progress || entry.epoch == self.pass {
                return entry.value.clone();
            }
            entry.in_progress = true;
            entry.epoch = self.pass;
        } else {
            self.memo.insert(
                key.clone(),
                MemoEntry {
                    value: AbsVal::bottom(),
                    epoch: self.pass,
                    in_progress: true,
                },
            );
        }

        let mut inner = (*env).clone();
        inner.insert(param, EnvEntry::Val(arg));
        let result = self.eval(body, &Arc::new(inner));
        let result = self.maybe_widen(result);

        let owner = self.index.lambda_owner.get(&lambda).copied();
        // The entry was inserted above and eval never removes entries, but
        // re-inserting on a (impossible) miss is cheaper than a panic path.
        let pass = self.pass;
        let entry = self.memo.entry(key).or_insert_with(|| MemoEntry {
            value: AbsVal::bottom(),
            epoch: pass,
            in_progress: false,
        });
        let joined = entry.value.join(&result);
        if joined != entry.value {
            entry.value = joined;
            self.dirty = true;
            if let Some(owner) = owner {
                *self.stats.updates_per_binding.entry(owner).or_default() += 1;
            }
        }
        entry.in_progress = false;
        entry.value.clone()
    }

    /// Applies `f` to `args` left to right.
    pub fn apply_n(&mut self, f: &AbsVal, args: &[AbsVal]) -> AbsVal {
        let mut cur = f.clone();
        for a in args {
            cur = self.apply(&cur, a);
        }
        cur
    }
}

/// The top-level environment of `program`: every binding as a stable
/// slot reference. Engines build this lazily themselves; the modular
/// scheduler builds it once and injects it into every SCC engine via
/// [`Engine::set_top_env`].
pub fn build_top_env(program: &Program) -> AbsEnv {
    let empty: AbsEnv = Arc::new(BTreeMap::new());
    let mut map = BTreeMap::new();
    for b in &program.bindings {
        map.insert(
            b.name,
            EnvEntry::Rec(RecKey {
                letrec: program.body.id,
                name: b.name,
                outer: empty.clone(),
            }),
        );
    }
    Arc::new(map)
}

/// Builds the worst-case abstract value for a parameter of type `ty` with
/// basic part `be`: `⟨be, W^τ⟩` (paper Definition 2). `W^τ` is `err` when
/// the type accepts no arguments.
pub fn worst_value(ty: &Ty, be: Be) -> AbsVal {
    let arity = ty.worst_case_arity() as u32;
    let fun = if arity == 0 {
        FunVal::Err
    } else {
        FunVal::Worst {
            remaining: arity,
            acc: Be::bottom(),
        }
    };
    AbsVal { be, fun }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_syntax::parse_program;
    use nml_types::infer_program;

    fn with_engine<T: Eq + Clone>(src: &str, f: impl FnMut(&mut Engine<'_>) -> T) -> T {
        let program = parse_program(src).expect("parse");
        let info = infer_program(&program).expect("infer");
        let mut engine = Engine::new(&program, &info);
        engine.run(f).expect("fixpoint")
    }

    /// Evaluates the program body to its abstract value.
    fn eval_body(src: &str) -> AbsVal {
        let program = parse_program(src).expect("parse");
        let info = infer_program(&program).expect("infer");
        let mut engine = Engine::new(&program, &info);
        engine
            .run(|en| {
                let env = en.top_env();
                en.eval(&en.program().body, &env)
            })
            .expect("fixpoint")
    }

    #[test]
    fn constants_are_bottom() {
        assert_eq!(eval_body("42"), AbsVal::bottom());
        assert_eq!(eval_body("true"), AbsVal::bottom());
        assert_eq!(eval_body("nil"), AbsVal::bottom());
        assert_eq!(eval_body("[1, 2, 3]"), AbsVal::bottom());
    }

    #[test]
    fn arithmetic_result_contains_nothing() {
        assert_eq!(eval_body("1 + 2 * 3"), AbsVal::bottom());
    }

    #[test]
    fn identity_returns_its_argument_value() {
        // Apply id to an interesting base value.
        let v = with_engine("letrec id x = x in id 0", |en| {
            let id = en.top_value(Symbol::intern("id"));
            en.apply(&id, &AbsVal::base(Be::escaping(0)))
        });
        assert_eq!(v.be, Be::escaping(0));
    }

    #[test]
    fn constant_function_drops_its_argument() {
        let v = with_engine("letrec k x = 7 in k 0", |en| {
            let k = en.top_value(Symbol::intern("k"));
            en.apply(&k, &AbsVal::base(Be::escaping(0)))
        });
        assert_eq!(v, AbsVal::bottom());
    }

    #[test]
    fn cons_joins_element_and_tail() {
        // cons captures the head; the full application joins head & tail.
        let v = with_engine("letrec f x y = cons x y in 0", |en| {
            let f = en.top_value(Symbol::intern("f"));
            let head = AbsVal::base(Be::escaping(0));
            let tail = AbsVal::base(Be::escaping(1));
            en.apply_n(&f, &[head, tail])
        });
        assert_eq!(v.be, Be::escaping(1));
    }

    #[test]
    fn car_strips_one_spine_at_matching_depth() {
        // first l = car l with l : int list (car^1)
        let v = with_engine("letrec first l = car l in first [1]", |en| {
            let f = en.top_value(Symbol::intern("first"));
            en.apply(&f, &AbsVal::base(Be::escaping(1)))
        });
        assert_eq!(v.be, Be::escaping(0));
    }

    #[test]
    fn cdr_preserves_escape_value() {
        let v = with_engine("letrec rest l = cdr l in rest [1]", |en| {
            let f = en.top_value(Symbol::intern("rest"));
            en.apply(&f, &AbsVal::base(Be::escaping(1)))
        });
        assert_eq!(v.be, Be::escaping(1));
    }

    #[test]
    fn both_if_branches_join() {
        let v = with_engine("letrec pick b x y = if b then x else y in 0", |en| {
            let f = en.top_value(Symbol::intern("pick"));
            en.apply_n(
                &f,
                &[
                    AbsVal::bottom(),
                    AbsVal::base(Be::escaping(0)),
                    AbsVal::bottom(),
                ],
            )
        });
        assert_eq!(v.be, Be::escaping(0));
    }

    #[test]
    fn recursive_append_converges() {
        // The paper's APPEND: append x y returns y ⊔ sub¹(x).
        let src = "letrec append x y = if (null x) then y
                                       else cons (car x) (append (cdr x) y)
                   in append [1] [2]";
        let (vx, vy) = with_engine(src, |en| {
            let f = en.top_value(Symbol::intern("append"));
            let x_interesting = en.apply_n(&f, &[AbsVal::base(Be::escaping(1)), AbsVal::bottom()]);
            let y_interesting = en.apply_n(&f, &[AbsVal::bottom(), AbsVal::base(Be::escaping(1))]);
            (x_interesting.be, y_interesting.be)
        });
        // All but the top spine of x escapes: sub¹⟨1,1⟩ = ⟨1,0⟩.
        assert_eq!(vx, Be::escaping(0));
        // All of y escapes.
        assert_eq!(vy, Be::escaping(1));
    }

    #[test]
    fn worst_value_construction() {
        // int -> int -> int: W of arity 2.
        let t = Ty::fun_n([Ty::Int, Ty::Int], Ty::Int);
        let w = worst_value(&t, Be::bottom());
        assert!(matches!(w.fun, FunVal::Worst { remaining: 2, .. }));
        // int list: W^{τ list} = W^τ = err for m = 0.
        let l = Ty::list(Ty::Int);
        assert_eq!(worst_value(&l, Be::escaping(1)).fun, FunVal::Err);
    }

    #[test]
    fn worst_function_escapes_all_arguments() {
        let t = Ty::fun_n([Ty::Int, Ty::Int], Ty::Int);
        let program = parse_program("0").unwrap();
        let info = infer_program(&program).unwrap();
        let mut en = Engine::new(&program, &info);
        let w = worst_value(&t, Be::bottom());
        let r = en.apply_n(&w, &[AbsVal::base(Be::escaping(0)), AbsVal::bottom()]);
        assert_eq!(r.be, Be::escaping(0));
        assert_eq!(r.fun, FunVal::Err);
    }

    #[test]
    fn higher_order_map_propagates_through_unknown_function() {
        // map f l where f is worst-case: elements of l escape through f.
        let src = "letrec map f l = if (null l) then nil
                                    else cons (f (car l)) (map f (cdr l))
                   in 0";
        let be = with_engine(src, |en| {
            let m = en.top_value(Symbol::intern("map"));
            let f_worst = worst_value(&Ty::fun(Ty::Int, Ty::Int), Be::bottom());
            let l = AbsVal::base(Be::escaping(1));
            en.apply_n(&m, &[f_worst, l]).be
        });
        // Elements (⟨1,0⟩ after car^1) escape through f into the result,
        // but the spine does not: ⟨1,0⟩.
        assert_eq!(be, Be::escaping(0));
    }

    #[test]
    fn map_with_identity_function_does_not_leak_spine() {
        let src = "letrec map f l = if (null l) then nil
                                    else cons (f (car l)) (map f (cdr l));
                          id x = x
                   in 0";
        let be = with_engine(src, |en| {
            let m = en.top_value(Symbol::intern("map"));
            let id = en.top_value(Symbol::intern("id"));
            let l = AbsVal::base(Be::escaping(1));
            en.apply_n(&m, &[id, l]).be
        });
        assert_eq!(be, Be::escaping(0));
    }

    #[test]
    fn closure_capture_contributes_to_v() {
        // The closure returned by (make x) contains x, so its be is x's.
        let src = "letrec make x = lambda(y). x in 0";
        let v = with_engine(src, |en| {
            let f = en.top_value(Symbol::intern("make"));
            en.apply(&f, &AbsVal::base(Be::escaping(0)))
        });
        assert_eq!(
            v.be,
            Be::escaping(0),
            "captured interesting value shows in V"
        );
    }

    #[test]
    fn inner_letrec_evaluates() {
        let src = "letrec f x = letrec g y = cons y nil in g x in 0";
        let v = with_engine(src, |en| {
            let f = en.top_value(Symbol::intern("f"));
            en.apply(&f, &AbsVal::base(Be::escaping(0)))
        });
        assert_eq!(v.be, Be::escaping(0));
    }

    #[test]
    fn stats_track_iterations() {
        let src = "letrec append x y = if (null x) then y
                                       else cons (car x) (append (cdr x) y)
                   in append [1] [2]";
        let program = parse_program(src).unwrap();
        let info = infer_program(&program).unwrap();
        let mut en = Engine::new(&program, &info);
        en.run(|en| {
            let f = en.top_value(Symbol::intern("append"));
            en.apply_n(&f, &[AbsVal::base(Be::escaping(1)), AbsVal::bottom()])
        })
        .unwrap();
        assert!(en.stats.passes >= 2, "needs at least a confirming pass");
        let updates = en.stats.updates_per_binding[&Symbol::intern("append")];
        assert!(updates >= 1, "append's cache must have grown at least once");
    }

    #[test]
    fn tuple_extension_escape_semantics() {
        // The §1 tuple extension: a pair joins its components; fst/snd
        // are sound identities.
        let src = "letrec
          wrap x y = (x, y);
          first p = fst p;
          through l = fst (l, 0)
        in 0";
        let (wrap_be, first_be, through_be) = with_engine(src, |en| {
            let wrap = en.top_value(Symbol::intern("wrap"));
            let w = en.apply_n(&wrap, &[AbsVal::base(Be::escaping(1)), AbsVal::bottom()]);
            let first = en.top_value(Symbol::intern("first"));
            let f = en.apply(&first, &AbsVal::base(Be::escaping(1)));
            let through = en.top_value(Symbol::intern("through"));
            let t = en.apply(&through, &AbsVal::base(Be::escaping(1)));
            (w.be, f.be, t.be)
        });
        // The pair contains the escaping list.
        assert_eq!(wrap_be, Be::escaping(1));
        // fst of an (abstract) pair value passes the contents through.
        assert_eq!(first_be, Be::escaping(1));
        // Putting l in a pair and projecting: l escapes through the pair.
        assert_eq!(through_be, Be::escaping(1));
    }

    #[test]
    fn split_returning_a_tuple_matches_list_encoding() {
        // The appendix's SPLIT returns (cons l (cons h nil)); with tuples
        // it returns (l, h). The escape verdicts must agree: p does not
        // escape, x loses its top spine, l and h escape fully.
        let src = "letrec
          split2 p x l h =
            if (null x) then (l, h)
            else if (car x) < p
                 then split2 p (cdr x) (cons (car x) l) h
                 else split2 p (cdr x) l (cons (car x) h)
        in split2 3 [1, 2] nil nil";
        let program = parse_program(src).unwrap();
        let info = infer_program(&program).unwrap();
        let mut en = Engine::new(&program, &info);
        let name = Symbol::intern("split2");
        let summary = crate::global::global_escape(&mut en, name).expect("global test");
        assert_eq!(summary.param(0).verdict, Be::bottom(), "p");
        assert_eq!(summary.param(1).verdict, Be::escaping(0), "x");
        assert_eq!(summary.param(2).verdict, Be::escaping(1), "l");
        assert_eq!(summary.param(3).verdict, Be::escaping(1), "h");
    }

    #[test]
    fn run_traced_records_per_pass_values_ending_converged() {
        let src = "letrec append x y = if (null x) then y
                                       else cons (car x) (append (cdr x) y)
                   in append [1] [2]";
        let program = parse_program(src).unwrap();
        let info = infer_program(&program).unwrap();
        let mut en = Engine::new(&program, &info);
        let (result, trace) = en
            .run_traced(|en| {
                let f = en.top_value(Symbol::intern("append"));
                en.apply_n(&f, &[AbsVal::base(Be::escaping(1)), AbsVal::bottom()])
                    .be
            })
            .unwrap();
        assert!(!trace.is_empty());
        assert_eq!(*trace.last().unwrap(), result);
        // Monotone across passes.
        for w in trace.windows(2) {
            assert!(w[0].le(w[1]), "trace not monotone: {trace:?}");
        }
    }

    #[test]
    fn deep_widening_terminates_adversarial_nesting() {
        // Build ever-deeper closures: selfapp-style chains would otherwise
        // nest environments. The engine must terminate (by widening).
        let src = "letrec twice f x = f (f x);
                          wrap x = lambda(y). x
                   in 0";
        let program = parse_program(src).unwrap();
        let info = infer_program(&program).unwrap();
        let mut en = Engine::with_config(
            &program,
            &info,
            EngineConfig {
                max_passes: 1000,
                widen_depth: 3,
                widen_arity: 8,
            },
        );
        let r = en.run(|en| {
            let twice = en.top_value(Symbol::intern("twice"));
            let wrap = en.top_value(Symbol::intern("wrap"));
            en.apply_n(&twice, &[wrap, AbsVal::base(Be::escaping(0))])
        });
        assert!(r.is_ok());
    }
}
