//! Abstract escape values: the domain `D_e` of the abstract escape
//! semantics (paper §3.4).
//!
//! A value has two components (following Hudak & Young's two-component
//! construction for higher-order analyses): a basic escape pair in `B_e`
//! describing *what is contained in the value*, and a function over
//! abstract values describing *its behavior when applied*.
//!
//! The function component is represented **symbolically** — as a closure
//! over an abstract environment, a partially applied primitive, the
//! worst-case function `W^τ`, or a normalized join of those — rather than
//! as an extensional table. Application of closures is resolved by the
//! fixpoint engine ([`crate::engine`]).

use crate::be::Be;
use nml_syntax::{NodeId, Symbol};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An abstract escape environment: maps identifiers to abstract values.
///
/// Environments are immutable and shared (`Rc`), and participate in memo
/// keys and closure identity, so they are ordered maps with full
/// `Eq + Ord + Hash`.
pub type AbsEnv = Arc<BTreeMap<Symbol, EnvEntry>>;

/// An environment entry.
///
/// `letrec`-bound names are stored as *stable references* into the
/// engine's slot table rather than as values: a recursive closure would
/// otherwise have to contain itself. The indirection also keeps closure
/// identity (and therefore memo keys) unchanged while the engine grows the
/// slot's value toward the fixpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnvEntry {
    /// An ordinary value binding (lambda parameter).
    Val(AbsVal),
    /// A reference to a `letrec` binding slot in the engine.
    Rec(RecKey),
}

/// Identifies one `letrec` binding slot: the `letrec` node, the bound
/// name, and the (outer) environment the `letrec` was evaluated in.
///
/// Including the outer environment distinguishes instantiations of an
/// inner `letrec` reached under different bindings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecKey {
    /// The `letrec` expression node (or the program's implicit top-level
    /// `letrec`, which uses the program body's node id).
    pub letrec: NodeId,
    /// The bound name.
    pub name: Symbol,
    /// The environment surrounding the `letrec`.
    pub outer: AbsEnv,
}

/// The function component of an abstract value.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunVal {
    /// The `err` function: never applicable (value of base type). Applying
    /// it yields ⊥, which is safe because well-typed programs never do.
    #[default]
    Err,
    /// The worst-case function `W^τ` (paper Definition 2): joins the basic
    /// escape parts of everything it is applied to into its results.
    Worst {
        /// How many further arguments it accepts before returning a
        /// primitive value (then the function component becomes `Err`).
        remaining: u32,
        /// Join of the basic parts of arguments received so far.
        acc: Be,
    },
    /// `cons` awaiting its first argument.
    Cons0,
    /// `cons x`: the partial application capturing the element value.
    Cons1(Arc<AbsVal>),
    /// `car^s` awaiting its argument (abstract `sub^s`).
    Car {
        /// Static spine count of the argument type.
        s: u32,
    },
    /// `cdr` awaiting its argument (abstract identity: `D^{τ list} = D^τ`).
    Cdr,
    /// `null` awaiting its argument (result contains nothing).
    Null,
    /// A two-argument arithmetic/comparison primitive awaiting its first
    /// argument: `λx.⟨x₍₁₎, λy.⟨⟨0,0⟩, err⟩⟩`.
    Arith0,
    /// The same primitive having received one argument; the final result
    /// contains no part of any interesting object.
    Arith1,
    /// A user closure: `lambda` node plus captured abstract environment
    /// (restricted to the lambda's free identifiers).
    Closure {
        /// The `lambda` expression node.
        lambda: NodeId,
        /// Captured environment.
        env: AbsEnv,
    },
    /// A normalized join of non-`Join`, non-`Err` components: sorted,
    /// deduplicated, at least two elements.
    Join(Arc<Vec<FunVal>>),
}

impl FunVal {
    /// Joins two function components, normalizing.
    #[must_use]
    pub fn join(&self, other: &FunVal) -> FunVal {
        if self == other {
            return self.clone();
        }
        let mut parts: Vec<FunVal> = Vec::new();
        collect(self, &mut parts);
        collect(other, &mut parts);
        parts.sort();
        parts.dedup();
        // Merge all worst-case components into one.
        let mut worst: Option<(u32, Be)> = None;
        parts.retain(|p| {
            if let FunVal::Worst { remaining, acc } = p {
                let (r, a) = worst.get_or_insert((*remaining, Be::bottom()));
                *r = (*r).max(*remaining);
                *a = a.join(*acc);
                false
            } else {
                true
            }
        });
        if let Some((remaining, acc)) = worst {
            parts.push(FunVal::Worst { remaining, acc });
            parts.sort();
        }
        match parts.len() {
            0 => FunVal::Err,
            1 => parts.pop().expect("len checked"),
            _ => FunVal::Join(Arc::new(parts)),
        }
    }

    /// Structural depth, used by the widening safeguard.
    pub fn depth(&self) -> u32 {
        match self {
            FunVal::Err
            | FunVal::Worst { .. }
            | FunVal::Cons0
            | FunVal::Car { .. }
            | FunVal::Cdr
            | FunVal::Null
            | FunVal::Arith0
            | FunVal::Arith1 => 0,
            FunVal::Cons1(v) => 1 + v.depth(),
            FunVal::Closure { env, .. } => {
                1 + env
                    .values()
                    .map(|e| match e {
                        EnvEntry::Val(v) => v.depth(),
                        EnvEntry::Rec(_) => 0,
                    })
                    .max()
                    .unwrap_or(0)
            }
            FunVal::Join(parts) => 1 + parts.iter().map(FunVal::depth).max().unwrap_or(0),
        }
    }
}

fn collect(f: &FunVal, out: &mut Vec<FunVal>) {
    match f {
        FunVal::Err => {}
        FunVal::Join(parts) => out.extend(parts.iter().cloned()),
        other => out.push(other.clone()),
    }
}

/// An abstract escape value `⟨be, fun⟩ ∈ D_e`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AbsVal {
    /// What the value contains (first component).
    pub be: Be,
    /// How it behaves when applied (second component).
    pub fun: FunVal,
}

impl AbsVal {
    /// `⊥ = ⟨⟨0,0⟩, err⟩`: contains nothing, never applicable. This is
    /// also the abstract value of `nil` and of every non-escaping base
    /// value.
    pub fn bottom() -> AbsVal {
        AbsVal {
            be: Be::bottom(),
            fun: FunVal::Err,
        }
    }

    /// A value with basic part `be` and inapplicable function part.
    pub fn base(be: Be) -> AbsVal {
        AbsVal {
            be,
            fun: FunVal::Err,
        }
    }

    /// Joins componentwise.
    #[must_use]
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            be: self.be.join(other.be),
            fun: self.fun.join(&other.fun),
        }
    }

    /// `sub^s` lifted to whole values (the abstract `car^s`): the basic
    /// part is adjusted, the function component passes through — the
    /// abstract list domain collapses `D^{τ list}` to `D^τ`, so the
    /// element behavior *is* the list's function component.
    #[must_use]
    pub fn sub(&self, s: u32) -> AbsVal {
        AbsVal {
            be: self.be.sub(s),
            fun: self.fun.clone(),
        }
    }

    /// Structural depth (see [`FunVal::depth`]).
    pub fn depth(&self) -> u32 {
        self.fun.depth()
    }

    /// Widens the value to the worst-case function of generous arity,
    /// preserving its basic part. Sound because `W` over-approximates any
    /// function's escape behavior; used only when closure nesting exceeds
    /// the engine's depth threshold.
    #[must_use]
    pub fn widen(&self, arity: u32) -> AbsVal {
        AbsVal {
            be: self.be,
            fun: FunVal::Worst {
                remaining: arity,
                acc: self.be,
            },
        }
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.fun {
            FunVal::Err => write!(f, "<{}, err>", self.be),
            other => write!(f, "<{}, {}>", self.be, other),
        }
    }
}

impl fmt::Display for FunVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunVal::Err => f.write_str("err"),
            FunVal::Worst { remaining, acc } => write!(f, "W[{remaining},{acc}]"),
            FunVal::Cons0 => f.write_str("cons"),
            FunVal::Cons1(v) => write!(f, "cons({v})"),
            FunVal::Car { s } => write!(f, "car^{s}"),
            FunVal::Cdr => f.write_str("cdr"),
            FunVal::Null => f.write_str("null"),
            FunVal::Arith0 => f.write_str("arith"),
            FunVal::Arith1 => f.write_str("arith1"),
            FunVal::Closure { lambda, .. } => write!(f, "clo@{lambda}"),
            FunVal::Join(parts) => {
                let mut first = true;
                for p in parts.iter() {
                    if !first {
                        f.write_str(" | ")?;
                    }
                    first = false;
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(i: u32) -> AbsVal {
        AbsVal::base(Be::escaping(i))
    }

    #[test]
    fn bottom_is_identity_for_join() {
        let v = esc(2);
        assert_eq!(AbsVal::bottom().join(&v), v);
        assert_eq!(v.join(&AbsVal::bottom()), v);
    }

    #[test]
    fn join_is_componentwise() {
        let a = AbsVal {
            be: Be::escaping(1),
            fun: FunVal::Cdr,
        };
        let b = AbsVal {
            be: Be::escaping(2),
            fun: FunVal::Err,
        };
        let j = a.join(&b);
        assert_eq!(j.be, Be::escaping(2));
        assert_eq!(j.fun, FunVal::Cdr);
    }

    #[test]
    fn fun_join_normalizes() {
        let a = FunVal::Cdr;
        let b = FunVal::Null;
        let ab = a.join(&b);
        let ba = b.join(&a);
        assert_eq!(ab, ba, "join commutes after normalization");
        assert_eq!(ab.join(&a), ab, "idempotent under flattening");
        match &ab {
            FunVal::Join(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn err_is_identity_for_fun_join() {
        assert_eq!(FunVal::Err.join(&FunVal::Cdr), FunVal::Cdr);
        assert_eq!(FunVal::Cdr.join(&FunVal::Err), FunVal::Cdr);
        assert_eq!(FunVal::Err.join(&FunVal::Err), FunVal::Err);
    }

    #[test]
    fn worst_components_merge() {
        let w1 = FunVal::Worst {
            remaining: 2,
            acc: Be::escaping(1),
        };
        let w2 = FunVal::Worst {
            remaining: 3,
            acc: Be::escaping(0),
        };
        match w1.join(&w2) {
            FunVal::Worst { remaining, acc } => {
                assert_eq!(remaining, 3);
                assert_eq!(acc, Be::escaping(1));
            }
            other => panic!("expected merged worst, got {other:?}"),
        }
    }

    #[test]
    fn sub_applies_to_basic_part_only() {
        let v = AbsVal {
            be: Be::escaping(2),
            fun: FunVal::Cdr,
        };
        let r = v.sub(2);
        assert_eq!(r.be, Be::escaping(1));
        assert_eq!(r.fun, FunVal::Cdr);
    }

    #[test]
    fn depth_counts_nesting() {
        let v0 = AbsVal::bottom();
        assert_eq!(v0.depth(), 0);
        let v1 = AbsVal {
            be: Be::bottom(),
            fun: FunVal::Cons1(Arc::new(v0)),
        };
        assert_eq!(v1.depth(), 1);
        let v2 = AbsVal {
            be: Be::bottom(),
            fun: FunVal::Cons1(Arc::new(v1)),
        };
        assert_eq!(v2.depth(), 2);
    }

    #[test]
    fn widen_preserves_basic_part() {
        let v = AbsVal {
            be: Be::escaping(1),
            fun: FunVal::Cdr,
        };
        let w = v.widen(8);
        assert_eq!(w.be, Be::escaping(1));
        assert!(matches!(w.fun, FunVal::Worst { remaining: 8, .. }));
    }

    #[test]
    fn display_is_paper_like() {
        assert_eq!(AbsVal::bottom().to_string(), "<<0,0>, err>");
        assert_eq!(esc(1).to_string(), "<<1,1>, err>");
    }

    #[test]
    fn join_flattening_of_nested_joins() {
        let j1 = FunVal::Cdr.join(&FunVal::Null);
        let j2 = FunVal::Cons0.join(&FunVal::Arith0);
        let all = j1.join(&j2);
        match &all {
            FunVal::Join(parts) => {
                assert_eq!(parts.len(), 4);
                let mut sorted = parts.to_vec();
                sorted.sort();
                assert_eq!(*parts.as_ref(), sorted, "parts are sorted");
            }
            other => panic!("expected join, got {other:?}"),
        }
    }
}
