//! Minimal, deterministic, offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to a crate
//! registry, so the real `proptest` cannot be vendored. This shim
//! implements exactly the subset of the API the workspace's property
//! tests use: [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! [`Just`], integer range strategies, tuple strategies, string pattern
//! strategies (character classes and bounded repetition only),
//! [`collection::vec`], [`any`], `prop_oneof!`, the `proptest!` harness
//! macro, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Generation is seeded from the test's module path, name, and attempt
//! index, so every run of a given test binary explores the same inputs
//! and failures reproduce exactly. There is no shrinking: a failing case
//! panics with the generated values available via the assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derives the generator for one attempt of a named test: FNV-1a over
    /// the name, mixed with the attempt index.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        (self.below(u64::from(den)) as u32) < num
    }
}

/// A reusable recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy {
            sample: Rc::new(move |rng| s.generate(rng)),
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps a strategy for subtrees into a strategy for one more level.
    /// Recursion is capped at `depth` levels; the size hints accepted by
    /// the real proptest are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy {
                sample: Rc::new(move |rng: &mut TestRng| {
                    // Bottom out early 1 time in 4 so sizes stay varied.
                    if rng.ratio(1, 4) {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        cur
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

enum Atom {
    Dot,
    Lit(char),
    Class(Vec<char>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> Option<char> {
        match self {
            Atom::Dot => Some(match rng.below(24) {
                0 => '\n',
                1 => '\t',
                2 => 'λ', // exercise multi-byte UTF-8
                _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
            }),
            Atom::Lit(c) => Some(*c),
            Atom::Class(set) => {
                if set.is_empty() {
                    None
                } else {
                    Some(set[rng.below(set.len() as u64) as usize])
                }
            }
        }
    }
}

/// Generates a string matching a small regex subset: literal characters,
/// `.`, `[...]` classes with ranges, and `{m,n}`/`{n}`/`*`/`+`/`?`
/// repetition of the preceding atom.
fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (c as u32, chars[i + 2] as u32);
                        for x in lo..=hi {
                            if let Some(ch) = char::from_u32(x) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class(set)
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map_or(chars.len(), |p| p + i);
                    let body: String = chars[i + 1..close.min(chars.len())].iter().collect();
                    i = close + 1;
                    if let Some((a, b)) = body.split_once(',') {
                        (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8))
                    } else {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
                '*' => {
                    i += 1;
                    (0usize, 8usize)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max.max(min) - min + 1) as u64) as usize;
        for _ in 0..count {
            if let Some(c) = atom.sample(rng) {
                out.push(c);
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not complete (this shim only rejects via
/// `prop_assume!`; assertion failures panic like ordinary tests).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!`.
    Reject,
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_incl: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_incl.max(self.size.min) - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Uniform choice among the listed strategies (all must generate the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test harness: wraps `fn name(arg in strategy, ...) { body }`
/// items into `#[test]`-able functions that run the body over many
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __ran: u32 = 0;
                let mut __attempt: u64 = 0;
                let __max_attempts: u64 = u64::from(__cfg.cases).saturating_mul(8);
                while __ran < __cfg.cases && __attempt < __max_attempts {
                    __attempt += 1;
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __attempt,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {
                            __ran += 1;
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let s = crate::collection::vec(0i64..100, 0..8);
        let mut r1 = TestRng::for_case("x", 7);
        let mut r2 = TestRng::for_case("x", 7);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (-20i64..20).generate(&mut rng);
            assert!((-20..20).contains(&v));
            let w = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[ -~]{0,120}".generate(&mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn harness_runs_and_rejects(v in crate::collection::vec(0i64..10, 0..4), b in any::<bool>()) {
            prop_assume!(v.len() < 4);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
            prop_assert_eq!(b, b);
        }
    }
}
