//! End-to-end smoke tests for the serve crate: one in-process server
//! per test, a blocking client, and the full protocol surface — ok
//! responses, the typed failure taxonomy, panic quarantine with worker
//! replacement, and a clean drain.

use nml_serve::json::Json;
use nml_serve::{serve, Client, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

const SRC: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
  sum l = if (null l) then 0 else car l + sum (cdr l);
  spin n = spin n;
  down n = if n = 0 then 0 else 1 + down (n - 1)
in rev [1, 2, 3]";

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nml-serve-smoke-{}-{tag}.sock", std::process::id()))
}

/// Runs `body` against a freshly served `SRC`, then drains the server
/// and returns its final report.
fn with_server<F>(tag: &str, cfg: ServeConfig, body: F) -> nml_serve::ServerReport
where
    F: FnOnce(&mut Client),
{
    let path = socket_path(tag);
    let server = {
        let path = path.clone();
        std::thread::spawn(move || serve(SRC, &path, &cfg))
    };
    let mut client = Client::connect_retry(&path, Duration::from_secs(5)).expect("connect");
    body(&mut client);
    let resp = client
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    server
        .join()
        .expect("server thread")
        .expect("server ran cleanly")
}

fn assert_ok(resp: &Json, expect_result: &str) {
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp}"
    );
    assert_eq!(
        resp.get("result").and_then(Json::as_str),
        Some(expect_result),
        "{resp}"
    );
}

fn assert_error(resp: &Json, kind: &str) {
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("error"),
        "{resp}"
    );
    assert_eq!(
        resp.get("kind").and_then(Json::as_str),
        Some(kind),
        "{resp}"
    );
}

#[test]
fn protocol_basics_end_to_end() {
    let report = with_server("basics", ServeConfig::default(), |c| {
        let resp = c.request("{\"op\":\"ping\",\"id\":1}").expect("ping");
        assert_ok(&resp, "pong");

        // The program body.
        let resp = c.request("{\"op\":\"eval\",\"id\":2}").expect("eval body");
        assert_ok(&resp, "[3, 2, 1]");
        assert!(resp.get("steps").and_then(Json::as_int).unwrap() > 0);
        assert_eq!(resp.get("id").and_then(Json::as_int), Some(2));

        // A call with a list argument.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":3,\"call\":\"sum\",\"args\":[[1,2,3,4]]}")
            .expect("call");
        assert_ok(&resp, "10");

        // Unknown function: a typed guest error, not a hang or crash.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":4,\"call\":\"nope\"}")
            .expect("unknown fn");
        assert_error(&resp, "runtime_error");

        // A malformed frame still gets a correlated response.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":5,\"fuel\":-3}")
            .expect("bad");
        assert_error(&resp, "bad_request");
        assert_eq!(resp.get("id").and_then(Json::as_int), Some(5));

        // Unparseable frames correlate as id:null.
        let resp = c.request("{nope").expect("junk");
        assert_error(&resp, "bad_request");
        assert_eq!(resp.get("id"), Some(&Json::Null));

        let resp = c.request("{\"op\":\"stats\",\"id\":6}").expect("stats");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    });
    assert_eq!(report.served_ok, 2, "two evals succeeded");
    assert_eq!(report.guest_errors, 1, "one unknown-function error");
    assert_eq!(report.bad_frames, 2, "two malformed frames");
    assert_eq!(report.panics, 0);
}

#[test]
fn resource_limits_are_typed_per_request() {
    let cfg = ServeConfig {
        max_depth: Some(500),
        ..ServeConfig::default()
    };
    let report = with_server("limits", cfg, |c| {
        // An infinite tail loop, bounded by explicit fuel.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":1,\"call\":\"spin\",\"args\":[0],\"fuel\":20000}")
            .expect("spin");
        assert_error(&resp, "fuel_exhausted");

        // The same loop bounded by a deadline (mapped to fuel).
        let resp = c
            .request("{\"op\":\"eval\",\"id\":2,\"call\":\"spin\",\"args\":[0],\"timeout_ms\":1}")
            .expect("spin deadline");
        assert_error(&resp, "fuel_exhausted");

        // Non-tail recursion past the configured depth limit.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":3,\"call\":\"down\",\"args\":[100000]}")
            .expect("down");
        assert_error(&resp, "stack_overflow");

        // The worker that failed those requests still serves fine.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":4,\"call\":\"down\",\"args\":[100]}")
            .expect("down ok");
        assert_ok(&resp, "100");
    });
    assert_eq!(report.served_ok, 1);
    assert_eq!(report.guest_errors, 3);
}

#[test]
fn hostile_nesting_is_rejected_or_rendered_without_aborting() {
    let report = with_server("nesting", ServeConfig::default(), |c| {
        // Tens of KB of '[': the parser's depth limit must turn this
        // into a bad_request, not a reader-thread stack overflow (which
        // aborts the process — overflow does not unwind).
        let resp = c.request(&"[".repeat(100_000)).expect("deep frame");
        assert_error(&resp, "bad_request");
        assert_eq!(resp.get("id"), Some(&Json::Null));

        // Past-the-limit nesting inside an otherwise well-formed frame.
        let deep_args = format!(
            "{{\"op\":\"eval\",\"id\":1,\"call\":\"sum\",\"args\":[{}1{}]}}",
            "[".repeat(300),
            "]".repeat(300)
        );
        // The whole frame fails to parse, so the id cannot correlate.
        let resp = c.request(&deep_args).expect("deep args");
        assert_error(&resp, "bad_request");
        assert_eq!(resp.get("id"), Some(&Json::Null));

        // The reader thread that absorbed both hostile frames still
        // serves normal requests.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":2,\"call\":\"sum\",\"args\":[[1,2,3]]}")
            .expect("sum after hostile frames");
        assert_ok(&resp, "6");
    });
    assert_eq!(report.served_ok, 1);
    assert_eq!(report.bad_frames, 2);
    assert_eq!(report.panics, 0, "nesting must never reach a panic/abort");
}

#[test]
fn byte_level_frame_handling_survives_timeouts_and_bad_utf8() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let path = socket_path("bytes");
    let cfg = ServeConfig::default();
    let server = {
        let path = path.clone();
        std::thread::spawn(move || serve(SRC, &path, &cfg))
    };
    // Wait for the socket, then talk raw bytes.
    drop(Client::connect_retry(&path, Duration::from_secs(5)).expect("connect"));
    let stream = UnixStream::connect(&path).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        nml_serve::json::parse(line.trim()).expect("response json")
    };

    // An invalid-UTF-8 frame gets a typed bad_request, not a dropped
    // connection or a desynchronized stream.
    stream
        .try_clone()
        .unwrap()
        .write_all(b"{\"op\":\"ping\",\"id\":1,\xff\xfe}\n")
        .expect("write bad utf8");
    assert_error(&recv(), "bad_request");

    // A frame with a multi-byte character split across the server's
    // 50ms read-timeout boundary must survive intact: read_line would
    // discard the partial tail on the timeout (the split byte makes it
    // invalid UTF-8) and silently corrupt the frame.
    let frame = "{\"op\":\"eval\",\"id\":8,\"call\":\"é\"}\n".as_bytes();
    let split = frame.iter().position(|&b| b == 0xC3).unwrap() + 1;
    let mut w = stream.try_clone().unwrap();
    w.write_all(&frame[..split]).expect("first half");
    w.flush().unwrap();
    std::thread::sleep(Duration::from_millis(150));
    w.write_all(&frame[split..]).expect("second half");
    w.flush().unwrap();
    let resp = recv();
    // The é function doesn't exist, but the frame parsed intact: the
    // error is a correlated unbound-name runtime_error, not bad_request.
    assert_error(&resp, "runtime_error");
    assert_eq!(resp.get("id").and_then(Json::as_int), Some(8));

    // The same connection still serves normal requests.
    stream
        .try_clone()
        .unwrap()
        .write_all(b"{\"op\":\"ping\",\"id\":9}\n")
        .expect("ping");
    assert_ok(&recv(), "pong");

    let mut c = Client::connect_retry(&path, Duration::from_secs(5)).expect("connect 2");
    let resp = c
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    drop(c);
    drop(stream);
    let report = server.join().expect("thread").expect("serve");
    assert_eq!(report.bad_frames, 1);
    assert_eq!(report.guest_errors, 1);
}

#[test]
fn worker_panic_is_quarantined_and_the_worker_replaced() {
    // One worker: if the panic killed it without replacement, the next
    // request would hang forever.
    let cfg = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let report = with_server("panic", cfg, |c| {
        let resp = c
            .request(
                "{\"op\":\"eval\",\"id\":1,\"call\":\"rev\",\"args\":[[1,2,3]],\
                 \"fault\":{\"panic_at_alloc\":2}}",
            )
            .expect("panicking request");
        assert_error(&resp, "worker_panicked");

        // The replacement worker serves the identical request.
        let resp = c
            .request("{\"op\":\"eval\",\"id\":2,\"call\":\"rev\",\"args\":[[1,2,3]]}")
            .expect("after panic");
        assert_ok(&resp, "[3, 2, 1]");
    });
    assert_eq!(report.panics, 1);
    assert_eq!(report.served_ok, 1);
}

#[test]
fn checked_violation_recovers_within_the_request() {
    // Deliberately wrong stack claims on every cons site: the body's
    // result reaches stack-freed cells, so a checked run must hit a
    // soundness violation, quarantine the site, recompile, and retry —
    // all inside the request.
    let cfg = ServeConfig {
        workers: 2,
        checked: true,
        sabotage: nml_opt::SabotagePlan::stack((0..32).map(nml_opt::SiteId)),
        ..ServeConfig::default()
    };
    let report = with_server("checked", cfg, |c| {
        for id in 1..=3 {
            let resp = c
                .request(&format!("{{\"op\":\"eval\",\"id\":{id}}}"))
                .expect("checked eval");
            assert_ok(&resp, "[3, 2, 1]");
            assert_eq!(
                resp.get("degraded"),
                Some(&Json::Bool(true)),
                "recovery marks the response degraded: {resp}"
            );
        }
    });
    assert!(report.quarantined_sites >= 1, "{report:?}");
    assert_eq!(report.degraded, 3, "{report:?}");
    assert_eq!(report.served_ok, 3, "{report:?}");
    assert_eq!(report.panics, 0, "violations are not panics");
}

#[test]
fn eval_after_shutdown_is_shed_with_a_typed_response() {
    let path = socket_path("shed");
    let cfg = ServeConfig::default();
    let server = {
        let path = path.clone();
        std::thread::spawn(move || serve(SRC, &path, &cfg))
    };
    let mut c = Client::connect_retry(&path, Duration::from_secs(5)).expect("connect");
    let resp = c
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let resp = c.request("{\"op\":\"eval\",\"id\":9}").expect("late eval");
    assert_error(&resp, "shutting_down");
    drop(c);
    let report = server.join().expect("thread").expect("serve");
    assert_eq!(report.shed, 1);
}
