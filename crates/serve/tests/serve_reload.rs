//! End-to-end tests for hot reload: versioned epoch swaps, broken-edit
//! rejection, quarantine carryover across epochs, and the self-healing
//! client retrying through transient overload.

use nml_serve::json::Json;
use nml_serve::{serve, Client, RetryPolicy, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nml-serve-reload-{}-{tag}.sock",
        std::process::id()
    ))
}

/// Serves `src`, runs `body`, drains, and returns the final report.
fn with_server<F>(
    tag: &str,
    src: &'static str,
    cfg: ServeConfig,
    body: F,
) -> nml_serve::ServerReport
where
    F: FnOnce(&mut Client),
{
    let path = socket_path(tag);
    let server = {
        let path = path.clone();
        std::thread::spawn(move || serve(src, &path, &cfg))
    };
    let mut client = Client::connect_retry(&path, Duration::from_secs(5)).expect("connect");
    body(&mut client);
    let resp = client
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    server
        .join()
        .expect("server thread")
        .expect("server ran cleanly")
}

fn reload_request(id: i64, src: &str) -> String {
    Json::Obj(vec![
        ("op".to_owned(), Json::Str("reload".to_owned())),
        ("id".to_owned(), Json::Int(id)),
        ("src".to_owned(), Json::Str(src.to_owned())),
    ])
    .to_string()
}

fn assert_ok(resp: &Json, expect_result: &str) {
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp}"
    );
    assert_eq!(
        resp.get("result").and_then(Json::as_str),
        Some(expect_result),
        "{resp}"
    );
}

const V1: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1)); \
                  sum l = if (null l) then 0 else car l + sum (cdr l) \
                  in sum (mk 4)";
const V2: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1)); \
                  sum l = if (null l) then 0 else car l + sum (cdr l) \
                  in sum (mk 5)";

#[test]
fn reload_swaps_epochs_and_rejects_broken_edits() {
    let report = with_server("swap", V1, ServeConfig::default(), |c| {
        // Epoch 1 serves the boot program; worker responses carry it.
        let resp = c.request("{\"op\":\"eval\",\"id\":1}").expect("eval v1");
        assert_ok(&resp, "10");
        assert_eq!(resp.get("epoch").and_then(Json::as_int), Some(1), "{resp}");

        // healthz is answered inline and names the live epoch.
        let resp = c.request("{\"op\":\"healthz\",\"id\":2}").expect("healthz");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let health = resp.get("result").and_then(Json::as_str).unwrap();
        assert!(health.contains("epoch=1"), "{health}");

        // A valid reload swaps in epoch 2...
        let resp = c.request(&reload_request(3, V2)).expect("reload");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{resp}"
        );
        let desc = resp.get("result").and_then(Json::as_str).unwrap();
        assert!(desc.contains("epoch 2"), "{desc}");

        // ...and the very first eval admitted after the reload response
        // already runs the new program on the new epoch.
        let resp = c.request("{\"op\":\"eval\",\"id\":4}").expect("eval v2");
        assert_ok(&resp, "15");
        assert_eq!(resp.get("epoch").and_then(Json::as_int), Some(2), "{resp}");

        // A broken edit is rejected as a typed compile_error and the
        // live epoch stays untouched.
        let resp = c
            .request(&reload_request(5, "letrec oops = in oops"))
            .expect("broken reload");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("error"),
            "{resp}"
        );
        assert_eq!(
            resp.get("kind").and_then(Json::as_str),
            Some("compile_error"),
            "{resp}"
        );
        let resp = c.request("{\"op\":\"eval\",\"id\":6}").expect("eval after");
        assert_ok(&resp, "15");
        assert_eq!(resp.get("epoch").and_then(Json::as_int), Some(2), "{resp}");
    });
    assert_eq!(report.reloads_ok, 1, "{report:?}");
    assert_eq!(report.reloads_failed, 1, "{report:?}");
    assert_eq!(report.epochs_retired, 1, "epoch 1 drained: {report:?}");
    assert_eq!(report.epoch_leaks, 0, "{report:?}");
    assert_eq!(report.served_ok, 3, "{report:?}");
}

// Three revisions of one program: B edits only `pad` (the quarantined
// site's owner `mk` is untouched), C edits `mk` itself.
const SRC_A: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1)); \
                     pad n = n + 0 in mk 3";
const SRC_B: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1)); \
                     pad n = n + 1 in mk 3";
const SRC_C: &str = "letrec mk n = if n = 0 then nil else cons (n + 0) (mk (n - 1)); \
                     pad n = n + 1 in mk 3";

#[test]
fn quarantine_carries_across_epochs_keyed_by_content() {
    // Deliberately wrong stack claims on every site: the body's result
    // reaches stack-freed cells, so the first checked eval must trip a
    // violation and quarantine the culprit site in `mk`.
    let cfg = ServeConfig {
        workers: 1,
        checked: true,
        sabotage: nml_opt::SabotagePlan::stack((0..32).map(nml_opt::SiteId)),
        ..ServeConfig::default()
    };
    let report = with_server("carry", SRC_A, cfg, |c| {
        // Epoch 1: the violation is caught and recovered in-request.
        let resp = c.request("{\"op\":\"eval\",\"id\":1}").expect("eval a");
        assert_ok(&resp, "[3, 2, 1]");
        assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)), "{resp}");

        // Epoch 2 edits only `pad`: `mk` is byte-identical, so its
        // quarantined site carries over and the same eval no longer
        // needs the in-request recovery.
        let resp = c.request(&reload_request(2, SRC_B)).expect("reload b");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let desc = resp.get("result").and_then(Json::as_str).unwrap();
        let carried: u64 = desc
            .split("carried_quarantine ")
            .nth(1)
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        assert!(carried >= 1, "quarantine must carry over: {desc}");
        let resp = c.request("{\"op\":\"eval\",\"id\":3}").expect("eval b");
        assert_ok(&resp, "[3, 2, 1]");
        assert_ne!(
            resp.get("degraded"),
            Some(&Json::Bool(true)),
            "carried quarantine must pre-empt the violation: {resp}"
        );

        // Epoch 3 edits `mk` itself: the stale quarantine is dropped,
        // the sabotage bites again, and checked mode re-learns it.
        let resp = c.request(&reload_request(4, SRC_C)).expect("reload c");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let resp = c.request("{\"op\":\"eval\",\"id\":5}").expect("eval c");
        assert_ok(&resp, "[3, 2, 1]");
        assert_eq!(
            resp.get("degraded"),
            Some(&Json::Bool(true)),
            "changed owner must be re-tried: {resp}"
        );
    });
    assert_eq!(report.reloads_ok, 2, "{report:?}");
    assert!(report.quarantined_sites >= 2, "{report:?}");
    assert_eq!(report.epoch_leaks, 0, "{report:?}");
}

#[test]
fn client_retries_through_transient_overload() {
    // One worker, queue of one: two pipelined slow requests keep both
    // slots busy, so a third connection's eval is shed `overloaded` —
    // a retryable kind the self-healing client must ride out.
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let path = socket_path("retry");
    let server = {
        let path = path.clone();
        let cfg = cfg.clone();
        std::thread::spawn(move || serve("letrec spin n = spin n in spin 0", &path, &cfg))
    };
    let mut blocker = Client::connect_retry(&path, Duration::from_secs(5)).expect("connect");
    blocker
        .send_line("{\"op\":\"eval\",\"id\":1,\"call\":\"spin\",\"args\":[0],\"fuel\":5000000}")
        .expect("slow 1");
    blocker
        .send_line("{\"op\":\"eval\",\"id\":2,\"call\":\"spin\",\"args\":[0],\"fuel\":5000000}")
        .expect("slow 2");

    let mut healer = Client::connect_retry(&path, Duration::from_secs(5)).expect("connect 2");
    // Effectively deadline-bounded: retries are cheap (the server sheds
    // at admission), so let the 60s deadline be the only real limit and
    // keep the test robust across debug/release VM speeds.
    healer.set_retry_policy(RetryPolicy {
        max_retries: 1000,
        retry_budget: 1000,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        deadline: Some(Duration::from_secs(60)),
        ..RetryPolicy::default()
    });
    // Give the admission path a moment to pop the first slow job and
    // enqueue the second, so the eval below actually gets shed at
    // least once before the fuel runs out.
    std::thread::sleep(Duration::from_millis(5));
    let resp = healer
        .call_retry("{\"op\":\"eval\",\"id\":3,\"call\":\"spin\",\"args\":[0],\"fuel\":10}")
        .expect("healed call");
    assert_eq!(
        resp.get("kind").and_then(Json::as_str),
        Some("fuel_exhausted"),
        "the healed call must eventually reach a worker: {resp}"
    );

    // Drain the pipelined responses, then shut down.
    assert!(blocker.recv_line().expect("resp 1").is_some());
    assert!(blocker.recv_line().expect("resp 2").is_some());
    let resp = healer
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    drop(healer);
    drop(blocker);
    let report = server.join().expect("thread").expect("serve");
    assert!(report.shed >= 1, "{report:?}");
}
