//! A minimal JSON value, parser, and renderer — just enough for the
//! newline-delimited request/response protocol, with no dependencies.
//!
//! Only integers are supported as numbers (the protocol never carries
//! floats), and parse failures return a message rather than panicking:
//! a malformed frame from a client must become a structured
//! `bad_request` response, never a server-side error.

use std::fmt;

/// Maximum container-nesting depth the parser accepts. The parser is
/// recursive-descent, so unbounded nesting would overflow the reader
/// thread's stack — and a stack overflow aborts the process rather
/// than unwinding, defeating crash isolation. 128 is far beyond any
/// legitimate protocol frame.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol has no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A one-line description of the first syntax problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_owned()),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    /// Runs a container parse one nesting level deeper, rejecting
    /// frames past [`MAX_DEPTH`] before recursing.
    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, String>,
    ) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (the protocol carries integers only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad utf-8")?;
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for src in [
            "null",
            "true",
            "-42",
            "\"a\\\"b\\nc\"",
            "[1,[2,3],[]]",
            "{\"op\":\"eval\",\"args\":[1,true,null]}",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "round trip of {src}");
        }
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for src in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\"}",
            "tru",
            "1.5",
            "1e9",
            "[}",
            "nul",
            "--1",
            "\u{1}",
            "{\"a\":}",
            "9999999999999999999999",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn nesting_is_depth_limited_not_a_stack_overflow() {
        // Well under the limit: fine.
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        // Just past the limit: a parse error.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
        // A hostile frame of tens of KB of '[' must error, not abort
        // the process (stack overflow does not unwind).
        assert!(parse(&"[".repeat(100_000)).is_err());
        let objs = format!("{}{}", "{\"k\":".repeat(100_000), "}".repeat(100_000));
        assert!(parse(&objs).is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse("{\"id\":7,\"name\":\"x\",\"args\":[1,2]}").unwrap();
        assert_eq!(v.get("id").and_then(Json::as_int), Some(7));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("args").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }
}
