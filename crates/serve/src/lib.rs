//! A persistent compile-once/run-many execution server.
//!
//! `nmlc serve` compiles a program once — through the full governed,
//! SCC-scheduled escape analysis and the optimization pass manager —
//! and then executes many eval requests against it over a
//! newline-delimited JSON protocol on a local Unix socket. Worker
//! threads share the immutable compiled program but each owns a
//! private heap, so a failing request can only ever damage its own
//! worker, and the damage is bounded by design:
//!
//! - guest failures (type errors, fuel exhaustion, depth overflow,
//!   injected faults) are typed responses, not server events;
//! - a worker panic is caught, answered as `worker_panicked`, recorded
//!   as a replayable crash bundle ([`bundle`]), and the worker's
//!   machine rebuilt from the shared program (crash-only);
//! - overload is shed at admission with a typed `overloaded` response
//!   instead of queue growth or silent drops;
//! - in checked mode, a soundness violation quarantines the site and
//!   recompiles *within the failing request*, leaving other workers
//!   undisturbed — and the quarantine survives hot reloads of
//!   unchanged code;
//! - the program itself can be **hot-reloaded** (`{"op":"reload"}` or
//!   `--watch`): the new source is re-analyzed incrementally off the
//!   worker threads and swapped in as a versioned epoch; broken edits
//!   never evict the live program, and in-flight requests finish on
//!   the epoch they were admitted under.
//!
//! The protocol lives in [`proto`], the JSON layer in [`json`], the
//! server in [`server`], crash capture and deterministic re-execution
//! in [`bundle`] and [`replay`], file-change detection in [`watch`],
//! and a small self-healing blocking client in [`client`].

#![warn(missing_docs)]

pub mod bundle;
pub mod client;
mod epoch;
pub mod json;
pub mod proto;
pub mod replay;
pub mod server;
pub mod watch;

pub use bundle::{BundleConfig, BundleRing, CrashBundle};
pub use client::{BreakerState, CircuitBreaker, Client, RetryPolicy};
pub use replay::{minimize, render_report, replay, Minimized, ReplayReport};
pub use server::{
    compile_program, serve, ServeConfig, ServeError, ServerReport, DEFAULT_STEPS_PER_MS,
};
pub use watch::{fnv64, FileWatch};
