//! A persistent compile-once/run-many execution server.
//!
//! `nmlc serve` compiles a program once — through the full governed,
//! SCC-scheduled escape analysis and the optimization pass manager —
//! and then executes many eval requests against it over a
//! newline-delimited JSON protocol on a local Unix socket. Worker
//! threads share the immutable compiled program but each owns a
//! private heap, so a failing request can only ever damage its own
//! worker, and the damage is bounded by design:
//!
//! - guest failures (type errors, fuel exhaustion, depth overflow,
//!   injected faults) are typed responses, not server events;
//! - a worker panic is caught, answered as `worker_panicked`, and the
//!   worker's machine rebuilt from the shared program (crash-only);
//! - overload is shed at admission with a typed `overloaded` response
//!   instead of queue growth or silent drops;
//! - in checked mode, a soundness violation quarantines the site and
//!   recompiles *within the failing request*, leaving other workers
//!   undisturbed.
//!
//! The protocol lives in [`proto`], the JSON layer in [`json`], the
//! server in [`server`], and a small blocking client in [`client`].

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::Client;
pub use server::{
    compile_program, serve, ServeConfig, ServeError, ServerReport, DEFAULT_STEPS_PER_MS,
};
