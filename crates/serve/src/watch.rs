//! Change detection for watched source files.
//!
//! Both `nmlc analyze --watch` and `nmlc serve --watch` poll a source file
//! for edits. An mtime-only poll has a granularity bug: two saves landing
//! within the same mtime tick (coarse filesystem clocks report whole
//! seconds) are invisible, so the second edit is silently dropped. The
//! [`FileWatch`] helper therefore treats mtime only as a cheap hint and
//! always falls back to comparing an FNV-1a content hash, so a changed
//! file is detected even when its mtime did not move.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// FNV-1a 64-bit hash of a byte string.
///
/// Used for cheap content-change detection and for fingerprinting program
/// sources across reload epochs. Not cryptographic.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Polling change detector for a single source file.
///
/// Each [`FileWatch::poll`] call stats the file and, whenever the file is
/// readable, compares an FNV-1a hash of its contents against the last
/// seen hash. The mtime is recorded purely as a debugging aid; detection
/// never relies on it, which fixes the same-mtime-tick miss. Transient
/// read errors (editor rename-in-place windows) are treated as "no
/// change" and retried on the next poll.
#[derive(Debug)]
pub struct FileWatch {
    path: PathBuf,
    last_hash: u64,
    last_mtime: Option<SystemTime>,
}

impl FileWatch {
    /// Creates a watcher whose baseline is the file's current contents
    /// (or an empty baseline if the file is unreadable right now).
    pub fn new(path: impl Into<PathBuf>) -> FileWatch {
        let path = path.into();
        let (last_hash, last_mtime) = match fs::read(&path) {
            Ok(bytes) => (fnv64(&bytes), mtime_of(&path)),
            Err(_) => (fnv64(b""), None),
        };
        FileWatch {
            path,
            last_hash,
            last_mtime,
        }
    }

    /// Creates a watcher whose baseline is `content`, for callers that
    /// already loaded the file (avoids reporting the boot contents as a
    /// spurious first change).
    pub fn seeded(path: impl Into<PathBuf>, content: &str) -> FileWatch {
        let path = path.into();
        let last_mtime = mtime_of(&path);
        FileWatch {
            path,
            last_hash: fnv64(content.as_bytes()),
            last_mtime,
        }
    }

    /// The watched path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Checks the file once. Returns the new contents iff they differ
    /// from the last seen contents, even when the mtime is unchanged.
    pub fn poll(&mut self) -> Option<String> {
        let mtime = mtime_of(&self.path);
        let bytes = match fs::read(&self.path) {
            Ok(b) => b,
            // Transient: file mid-rename or momentarily missing.
            Err(_) => return None,
        };
        let hash = fnv64(&bytes);
        self.last_mtime = mtime;
        if hash == self.last_hash {
            return None;
        }
        let text = String::from_utf8(bytes).ok()?;
        self.last_hash = hash;
        Some(text)
    }
}

fn mtime_of(path: &Path) -> Option<SystemTime> {
    fs::metadata(path).and_then(|m| m.modified()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nml-watch-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn fnv_is_stable_and_discriminates() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b"letrec"), fnv64(b"letrec"));
    }

    #[test]
    fn detects_content_change_even_with_same_mtime() {
        let p = tmp("same-tick.nml");
        fs::write(&p, "one").unwrap();
        let mut w = FileWatch::new(&p);
        assert!(w.poll().is_none(), "baseline must not fire");
        // Rewrite and force the mtime back to its previous value, so an
        // mtime-based poll would miss the edit entirely.
        let meta = fs::metadata(&p).unwrap();
        let mtime = meta.modified().unwrap();
        fs::write(&p, "two").unwrap();
        let _ = filetime_set(&p, mtime);
        assert_eq!(w.poll().as_deref(), Some("two"));
        assert!(w.poll().is_none(), "change reported once");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn seeded_baseline_suppresses_boot_contents() {
        let p = tmp("seeded.nml");
        fs::write(&p, "boot").unwrap();
        let mut w = FileWatch::seeded(&p, "boot");
        assert!(w.poll().is_none());
        fs::write(&p, "edited").unwrap();
        assert_eq!(w.poll().as_deref(), Some("edited"));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn missing_file_is_transient() {
        let p = tmp("missing.nml");
        let _ = fs::remove_file(&p);
        let mut w = FileWatch::new(&p);
        assert!(w.poll().is_none());
        fs::write(&p, "appeared").unwrap();
        assert_eq!(w.poll().as_deref(), Some("appeared"));
        let _ = fs::remove_file(&p);
    }

    /// Best-effort mtime restore without external crates: copy the
    /// file's own times from a reference handle via `fs::File::set_times`
    /// when available; otherwise the test still passes because detection
    /// does not depend on mtime at all.
    fn filetime_set(path: &Path, to: std::time::SystemTime) -> std::io::Result<()> {
        let f = fs::OpenOptions::new().append(true).open(path)?;
        let times = fs::FileTimes::new().set_modified(to);
        f.set_times(times)
    }
}
