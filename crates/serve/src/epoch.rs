//! Versioned program epochs for hot reload.
//!
//! A running server holds one *current* [`Epoch`] — an immutable compiled
//! program plus its bookkeeping — behind an `RwLock<Arc<Epoch>>`. Each
//! admitted request pins the `Arc` of the epoch it was admitted under, so
//! a reload swaps the current slot without disturbing in-flight work:
//! old requests finish on their admission epoch, new admissions land on
//! the new one, and a retired epoch is reclaimed exactly when its last
//! pinned `Arc` drops (its drain point).
//!
//! ## Quarantine carryover
//!
//! Checked-mode quarantine decisions must survive reloads — but only for
//! sites whose defining code is unchanged. Raw [`SiteId`]s cannot be the
//! carry key: lowering numbers sites as one global sequence, so editing
//! an early binding shifts every later binding's ids. Instead each site
//! is keyed by `(owner, ordinal, owner_hash)`:
//!
//! - `owner` — the top-level binding name owning the site (`""` for the
//!   program body);
//! - `ordinal` — the site's index in a deterministic pre-order walk of
//!   that owner's body;
//! - `owner_hash` — an FNV-1a fingerprint of the owner's IR (node tags,
//!   names, constants, allocation modes, with sites replaced by their
//!   per-owner ordinals).
//!
//! Fingerprints are computed after optimization and sabotage but *before*
//! quarantine is applied, so quarantining a site does not change the
//! fingerprint that re-identifies it in the next epoch. A carried entry
//! projects onto a new epoch's concrete `SiteId` only when the owner
//! fingerprint still matches — a changed binding drops its carried
//! quarantines and gets re-tried, exactly as the paper's soundness story
//! requires for re-analyzed code.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nml_escape::Analysis;
use nml_opt::{
    apply_quarantine, lower_program, optimize, sabotage_stack, walk_ir, AllocMode, IrExpr,
    IrProgram, OptOptions, QuarantineSet, RegionKind, SiteId,
};

use crate::server::{lock, ServeConfig, Stats};
use crate::watch::fnv64;

/// Carryable quarantine state, independent of any epoch's site numbering.
///
/// Entries are `(owner, ordinal, owner_hash)` triples (see the module
/// docs). The map only grows during a server's lifetime; stale entries
/// (owners whose hash never matches again) are harmless.
#[derive(Debug, Default, Clone)]
pub(crate) struct CarryMap {
    entries: BTreeSet<(String, u32, u64)>,
}

impl CarryMap {
    pub(crate) fn new() -> CarryMap {
        CarryMap::default()
    }

    /// Records a quarantined site by its stable key. Returns `true` if new.
    pub(crate) fn insert(&mut self, owner: &str, ordinal: u32, owner_hash: u64) -> bool {
        self.entries.insert((owner.to_owned(), ordinal, owner_hash))
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    fn iter(&self) -> impl Iterator<Item = &(String, u32, u64)> {
        self.entries.iter()
    }
}

/// One immutable compiled program version.
///
/// Built off the worker threads, then installed by an atomic `Arc` swap.
pub(crate) struct Epoch {
    /// Monotone epoch number (the boot program is epoch 1).
    pub(crate) id: u64,
    /// The compiled program this epoch serves.
    pub(crate) program: IrProgram,
    /// The source text the program was compiled from.
    pub(crate) src: String,
    /// FNV-1a hash of `src`; identifies the program in crash bundles.
    pub(crate) program_hash: u64,
    /// Sites quarantined *in this epoch* (checked-mode recovery may add
    /// to it after the epoch is built; recompiles snapshot it).
    quarantine: Mutex<QuarantineSet>,
    /// Concrete site → stable carry key.
    site_keys: HashMap<SiteId, (String, u32)>,
    /// Per-owner IR fingerprints (pre-quarantine).
    owner_hashes: HashMap<String, u64>,
    /// Requests admitted under this epoch and not yet responded to.
    pub(crate) inflight: AtomicU64,
    /// Set when a newer epoch replaced this one.
    retired: AtomicBool,
    /// Server stats, so `Drop` can record retirement/leak accounting.
    stats: Arc<Stats>,
}

impl Epoch {
    /// Compiles `analysis` into a new epoch.
    ///
    /// Carried quarantine entries in `qmap` whose owner fingerprint still
    /// matches are projected onto this epoch's concrete sites and applied
    /// to the IR before the epoch goes live.
    pub(crate) fn build(
        id: u64,
        analysis: &Analysis,
        src: &str,
        cfg: &ServeConfig,
        qmap: &CarryMap,
        stats: Arc<Stats>,
    ) -> Epoch {
        let mut ir = lower_program(&analysis.program, &analysis.info);
        if cfg.optimize {
            optimize(&mut ir, analysis, &OptOptions::default());
        }
        sabotage_stack(&mut ir, &cfg.sabotage);

        // Fingerprint the pre-quarantine IR: quarantining a site must not
        // change the key under which it is carried forward.
        let mut site_keys = HashMap::new();
        let mut site_at = HashMap::new();
        let mut owner_hashes = HashMap::new();
        index_owner(
            "",
            &[],
            &ir.body,
            &mut site_keys,
            &mut site_at,
            &mut owner_hashes,
        );
        for f in &ir.funcs {
            let params: Vec<&str> = f.params.iter().map(|p| p.as_str()).collect();
            index_owner(
                f.name.as_str(),
                &params,
                &f.body,
                &mut site_keys,
                &mut site_at,
                &mut owner_hashes,
            );
        }

        let mut qset = QuarantineSet::new();
        for (owner, ordinal, hash) in qmap.iter() {
            if owner_hashes.get(owner) == Some(hash) {
                if let Some(site) = site_at.get(&(owner.clone(), *ordinal)) {
                    qset.insert(*site);
                }
            }
        }
        if !qset.is_empty() {
            apply_quarantine(&mut ir, &qset);
        }

        Epoch {
            id,
            program: ir,
            src: src.to_owned(),
            program_hash: fnv64(src.as_bytes()),
            quarantine: Mutex::new(qset),
            site_keys,
            owner_hashes,
            inflight: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            stats,
        }
    }

    /// Snapshot of this epoch's quarantine set (for recompiles).
    pub(crate) fn quarantine_snapshot(&self) -> QuarantineSet {
        lock(&self.quarantine).clone()
    }

    /// Number of sites quarantined in this epoch.
    pub(crate) fn quarantine_len(&self) -> usize {
        lock(&self.quarantine).len()
    }

    /// Quarantines `site` in this epoch and records its stable key in the
    /// carry map so the decision survives reloads of unchanged code.
    /// Returns `true` if the site was not already quarantined here.
    pub(crate) fn record_quarantine(&self, site: SiteId, qmap: &mut CarryMap) -> bool {
        let fresh = lock(&self.quarantine).insert(site);
        if let Some((owner, ordinal)) = self.site_keys.get(&site) {
            if let Some(hash) = self.owner_hashes.get(owner) {
                qmap.insert(owner, *ordinal, *hash);
            }
        }
        fresh
    }

    /// Stable human-readable label for a site (`owner#ordinal`), used in
    /// crash signatures so the same defect in consecutive epochs counts
    /// as one signature even though its raw id moved.
    pub(crate) fn site_label(&self, site: SiteId) -> String {
        match self.site_keys.get(&site) {
            Some((owner, ordinal)) if owner.is_empty() => format!("<body>#{ordinal}"),
            Some((owner, ordinal)) => format!("{owner}#{ordinal}"),
            None => format!("site{}", site.0),
        }
    }

    /// Marks the epoch as replaced by a newer one. Accounting only; the
    /// epoch keeps serving its pinned in-flight requests until drained.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
    }
}

impl Drop for Epoch {
    fn drop(&mut self) {
        // The last Arc dropped *is* the drain point: every pinned request
        // holds a clone, so reaching Drop means no in-flight work remains.
        if self.retired.load(Ordering::SeqCst) {
            self.stats.epochs_retired.fetch_add(1, Ordering::Relaxed);
        }
        // `inflight` is decremented after each response is written; a
        // nonzero count here means a request vanished without responding.
        if self.inflight.load(Ordering::SeqCst) != 0 {
            self.stats.epoch_leaks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Walks one owner's body, assigning pre-order ordinals to its sites and
/// folding an FNV-1a fingerprint over the structure.
fn index_owner(
    owner: &str,
    params: &[&str],
    body: &IrExpr,
    site_keys: &mut HashMap<SiteId, (String, u32)>,
    site_at: &mut HashMap<(String, u32), SiteId>,
    owner_hashes: &mut HashMap<String, u64>,
) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |bytes: &[u8], h: &mut u64| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        *h ^= 0xff; // separator so "ab","c" != "a","bc"
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for p in params {
        mix(p.as_bytes(), &mut h);
    }
    let mut ordinal: u32 = 0;
    let mut claim = |site: SiteId, ordinal: &mut u32| {
        site_keys.insert(site, (owner.to_owned(), *ordinal));
        site_at.insert((owner.to_owned(), *ordinal), site);
        let o = *ordinal;
        *ordinal += 1;
        o
    };
    walk_ir(body, &mut |e| match e {
        IrExpr::Const(c) => mix(format!("C{c:?}").as_bytes(), &mut h),
        IrExpr::Var(v) => mix(format!("V{}", v.as_str()).as_bytes(), &mut h),
        IrExpr::App(_, _) => mix(b"A", &mut h),
        IrExpr::Lambda { param, site, .. } => {
            let o = claim(*site, &mut ordinal);
            mix(format!("L{}@{o}", param.as_str()).as_bytes(), &mut h);
        }
        IrExpr::If(_, _, _) => mix(b"I", &mut h),
        IrExpr::Letrec(binds, _) => {
            let names: Vec<&str> = binds.iter().map(|(n, _)| n.as_str()).collect();
            mix(format!("R{}", names.join(",")).as_bytes(), &mut h);
        }
        IrExpr::Cons { alloc, site, .. } => {
            let o = claim(*site, &mut ordinal);
            mix(format!("K{}@{o}", mode_tag(*alloc)).as_bytes(), &mut h);
        }
        IrExpr::Dcons { reused, site, .. } => {
            let o = claim(*site, &mut ordinal);
            mix(format!("D{}@{o}", reused.as_str()).as_bytes(), &mut h);
        }
        IrExpr::Prim1(p, _) => mix(format!("1{p:?}").as_bytes(), &mut h),
        IrExpr::Prim2(p, _, _) => mix(format!("2{p:?}").as_bytes(), &mut h),
        IrExpr::Region { kind, site, .. } => {
            let o = claim(*site, &mut ordinal);
            let k = match kind {
                RegionKind::Stack => "s",
                RegionKind::Block => "b",
            };
            mix(format!("G{k}@{o}").as_bytes(), &mut h);
        }
    });
    owner_hashes.insert(owner.to_owned(), h);
}

fn mode_tag(mode: AllocMode) -> &'static str {
    match mode {
        AllocMode::Heap => "h",
        AllocMode::Stack => "s",
        AllocMode::Block => "b",
        AllocMode::Pretenured => "p",
        AllocMode::Elided => "e",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nml_escape::analyze_source;

    const SRC_A: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1));\n\
                         pad n = n + 0\n\
                         in mk 3";
    // Same `mk`, edited `pad`.
    const SRC_B: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1));\n\
                         pad n = n + 7\n\
                         in mk 3";
    // Edited `mk` (extra arithmetic), same `pad`.
    const SRC_C: &str = "letrec mk n = if n = 0 then nil else cons (n + 1) (mk (n - 1));\n\
                         pad n = n + 0\n\
                         in mk 3";

    fn build(src: &str, qmap: &CarryMap) -> Epoch {
        let analysis = analyze_source(src).expect("analyzes");
        let cfg = ServeConfig {
            optimize: false,
            ..ServeConfig::default()
        };
        Epoch::build(1, &analysis, src, &cfg, qmap, Arc::new(Stats::default()))
    }

    fn cons_site_of(ep: &Epoch, owner: &str) -> SiteId {
        let f = ep
            .program
            .funcs
            .iter()
            .find(|f| f.name.as_str() == owner)
            .expect("owner exists");
        let mut found = None;
        walk_ir(&f.body, &mut |e| {
            if let IrExpr::Cons { site, .. } = e {
                found.get_or_insert(*site);
            }
        });
        found.expect("owner has a cons site")
    }

    #[test]
    fn quarantine_carries_over_unchanged_owner() {
        let mut qmap = CarryMap::new();
        let ep1 = build(SRC_A, &qmap);
        let site = cons_site_of(&ep1, "mk");
        assert!(ep1.record_quarantine(site, &mut qmap));
        assert_eq!(qmap.len(), 1);

        // `pad` changed, `mk` did not: the quarantine must survive.
        let ep2 = build(SRC_B, &qmap);
        let site2 = cons_site_of(&ep2, "mk");
        assert!(
            ep2.quarantine_snapshot().contains(site2),
            "carried across epochs"
        );

        // `mk` itself changed: the site is re-tried (not quarantined).
        let ep3 = build(SRC_C, &qmap);
        assert_eq!(ep3.quarantine_len(), 0, "changed owner is re-tried");
    }

    #[test]
    fn drop_accounting_counts_retirement_and_leaks() {
        let stats = Arc::new(Stats::default());
        let analysis = analyze_source(SRC_A).expect("analyzes");
        let cfg = ServeConfig {
            optimize: false,
            ..ServeConfig::default()
        };
        let ep = Epoch::build(1, &analysis, SRC_A, &cfg, &CarryMap::new(), stats.clone());
        ep.retire();
        ep.inflight.store(1, Ordering::SeqCst); // simulate a vanished request
        drop(ep);
        assert_eq!(stats.epochs_retired.load(Ordering::Relaxed), 1);
        assert_eq!(stats.epoch_leaks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn site_labels_are_stable_across_epochs() {
        let qmap = CarryMap::new();
        let ep1 = build(SRC_A, &qmap);
        let ep2 = build(SRC_B, &qmap);
        let s1 = cons_site_of(&ep1, "mk");
        let s2 = cons_site_of(&ep2, "mk");
        assert_eq!(ep1.site_label(s1), ep2.site_label(s2));
    }
}
